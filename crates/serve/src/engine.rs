//! The shard-per-worker serving engine.
//!
//! [`ShardedEngine`] decomposes a built [`BandanaStore`] into shards, each
//! owning a **disjoint set of tables** plus its own replica of the
//! simulated NVM device, behind a tenant-aware
//! [`WeightedQueue`] (one bounded lane per
//! registered tenant, strict priority across classes, deficit
//! round-robin within a class) drained by a dedicated worker thread. A
//! dispatcher splits every incoming [`Request`] into per-shard parts
//! (one per table query), coalesces duplicate vector ids inside each
//! query so a repeated id costs one lookup, and merges the shard results
//! back in request order. Callers reach the engine through per-tenant
//! [`Client`] sessions whose submissions return
//! [`ResponseTicket`](crate::ResponseTicket) futures; the legacy
//! [`serve`](ShardedEngine::serve)/[`submit`](ShardedEngine::submit)
//! wrappers delegate to the default tenant.
//!
//! Latency is accounted per shard with mergeable
//! [`LatencyHistogram`]s — queue wait, per-shard service time, and
//! end-to-end request latency — so [`ShardedEngine::metrics`] can report
//! p50/p95/p99/p999 across the whole engine without any shared hot-path
//! lock. Overload behaviour is explicit: bounded queues plus a
//! [`ShedPolicy`] and an optional admission deadline give drop/timeout
//! counters instead of unbounded queueing.
//!
//! Table-to-shard placement is static (greedy balance by training-time
//! lookup mass). Feedback is centralized in the
//! [control plane](crate::control): a metrics-bus thread rotates the
//! per-tenant recent-latency windows, snapshots the engine each tick, and
//! runs the registered [`Controller`]s — the online
//! [tuner](crate::tuner) hot-swapping admission thresholds, the
//! [`SloController`] shedding tenants whose recent-window p99 blows their
//! budget, and any caller-supplied controllers
//! ([`ShardedEngine::new_with_controllers`]).

use crate::budget::{BudgetInputs, BudgetSample, CacheBudgetController, CacheBudgetSettings};
use crate::control::{
    Action, ControlConfig, Controller, EngineSnapshot, ShardSnapshot, SloController,
    SloControllerConfig, TableCachePartition, TenantSnapshot,
};
use crate::hist::{LatencyBreakdown, LatencyHistogram, LatencySummary, WindowedHistogram};
use crate::obs::{
    AuditEvent, AuditLog, RequestTrace, TraceConfig, TraceEvent, TraceEventKind, TraceRecorder,
    DEFAULT_AUDIT_CAPACITY,
};
use crate::queue::{LaneSpec, Pop, Push, ShedPolicy, WeightedQueue};
use crate::relayout::{CoAccessSample, ReLayoutController, ReLayoutInputs, ReLayoutSettings};
use crate::tenant::{
    Client, PriorityClass, Response, ResponseStatus, ShedBreakdown, TenantId, TenantMetrics,
    TenantSpec,
};
use crate::tuner::{OnlineTunerSettings, TunerController, TunerTable};
use bandana_cache::{AdmissionPolicy, CacheMetrics};
use bandana_core::{BandanaError, BandanaStore, BatchScratch, TableStore};
use bandana_partition::BlockLayout;
use bandana_persist::{
    KeyOrigin, PersistConfig, Persistence, SnapshotData, TableSnapshot, WalRecord,
};
use bandana_trace::{EmbeddingTable, Request};
use bytes::Bytes;
use nvm_sim::{
    BlockBufPool, BlockDevice, DepthStats, PoolStats, QueueDepthTracker, RebasedDevice,
    SparseDevice,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Capacity of the shard → tuner sample channel; overflow samples are
/// dropped (sampling is lossy by design).
const SAMPLE_CHANNEL_CAPACITY: usize = 1 << 16;

/// How long a worker sleeps on an empty queue before re-checking for
/// shutdown and tuner commands.
const IDLE_POLL: Duration = Duration::from_millis(2);

/// Configuration of a [`ShardedEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shard worker threads (tables are spread across them).
    pub num_shards: usize,
    /// Capacity of each **tenant lane** in each shard's queue, in
    /// requests — a shard can queue up to `tenants × queue_capacity`
    /// total, so one tenant's backlog never crowds out another's
    /// admission.
    pub queue_capacity: usize,
    /// What a full shard queue does with new work.
    pub shed_policy: ShedPolicy,
    /// If set, a request that has not *started* serving on a shard within
    /// this budget after submission is abandoned and counted as timed out.
    pub request_timeout: Option<Duration>,
    /// How long a shard keeps a micro-batch open after its first request,
    /// absorbing later arrivals so lookups from *different* requests merge
    /// into one deduplicated device submission. Zero (the default)
    /// disables cross-request batching.
    pub batch_window: Duration,
    /// Most requests merged into one micro-batch (1 = the single-read
    /// path: every request is its own device submission).
    pub max_batch: usize,
    /// When set, each shard charges its block reads through the device's
    /// [`QueueModel`](nvm_sim::QueueModel) with at most this many reads in
    /// flight (io_uring-style bounded submission), and the simulated
    /// device time actually elapses — latency histograms then reflect NVM
    /// queueing, not just host-side queueing. `None` (the default) keeps
    /// reads free, as before this knob existed.
    pub device_queue: Option<u32>,
    /// Enables the background admission-threshold tuner (re-homed as the
    /// first [`Controller`] on the engine's metrics bus).
    pub tuner: Option<OnlineTunerSettings>,
    /// Enables the online DRAM [cache budget controller](crate::budget):
    /// shard workers tee sampled cache probes onto the metrics bus, which
    /// maintains per-table hit-rate curves and periodically re-solves the
    /// DRAM split across tables against the fixed total budget, applying
    /// [`Action::SetCachePartition`] moves that clear a hysteresis bar.
    /// `None` (the default) keeps the build-time partition fixed.
    pub cache_budget: Option<CacheBudgetSettings>,
    /// Enables the online hot-block [re-layout controller](crate::relayout):
    /// shard workers tee sampled co-access records onto the metrics bus,
    /// which accumulates a windowed co-access hypergraph per table and,
    /// when observed blocks-per-request degrades past the configured
    /// threshold of the window's ideal, refines the hottest blocks'
    /// placement and applies it atomically ([`Action::ApplyLayout`]).
    /// `None` (the default) keeps the build-time layout fixed.
    pub relayout: Option<ReLayoutSettings>,
    /// Registered tenants beyond the always-present default tenant
    /// ([`TenantId::DEFAULT`]); see [`ServeConfig::with_tenant`].
    pub tenants: Vec<(TenantId, TenantSpec)>,
    /// Cadence and window geometry of the metrics bus (always running;
    /// the defaults suit most deployments).
    pub control: ControlConfig,
    /// Enables the [`SloController`]: tenants with a
    /// [`TenantSpec::slo_p99`] budget are shed at admission while their
    /// recent-window p99 is blown. `None` (the default) reports windowed
    /// latencies without acting on them.
    pub slo: Option<SloControllerConfig>,
    /// Flight-recorder request tracing: when enabled, one request in
    /// [`TraceConfig::sample_every`] has its lifecycle events recorded
    /// in preallocated per-shard rings, exportable with
    /// [`ShardedEngine::dump_trace`] /
    /// [`ShardedEngine::request_traces`]. Off by default.
    pub trace: TraceConfig,
    /// Crash-safe durability and warm restart: when set, the engine
    /// journals the table catalog and every tenant registration
    /// (build-time and live) to a write-ahead log in
    /// [`PersistConfig::dir`], and the metrics bus periodically installs
    /// snapshots of the warm state (cache keys, admission policies,
    /// per-shard endurance). Restart with [`ShardedEngine::recover`] to
    /// get the warm state back. `None` (the default) keeps the engine
    /// fully in-memory, exactly as before this knob existed.
    pub persist: Option<PersistConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            num_shards: 4,
            queue_capacity: 1024,
            shed_policy: ShedPolicy::Block,
            request_timeout: None,
            batch_window: Duration::ZERO,
            max_batch: 1,
            device_queue: None,
            tuner: None,
            cache_budget: None,
            relayout: None,
            tenants: Vec::new(),
            control: ControlConfig::default(),
            slo: None,
            trace: TraceConfig::default(),
            persist: None,
        }
    }
}

impl ServeConfig {
    /// Sets the shard count.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.num_shards = n;
        self
    }

    /// Sets the capacity of each per-tenant lane in each shard's queue
    /// (a shard can hold up to `tenants × n` queued requests).
    pub fn with_queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Sets the overload policy.
    pub fn with_shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed_policy = policy;
        self
    }

    /// Sets the admission deadline.
    pub fn with_request_timeout(mut self, timeout: Duration) -> Self {
        self.request_timeout = Some(timeout);
        self
    }

    /// Sets the micro-batching window (zero disables cross-request
    /// batching).
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Sets the most requests merged into one micro-batch.
    pub fn with_max_batch(mut self, max: usize) -> Self {
        self.max_batch = max;
        self
    }

    /// Enables device-queue charging with the given in-flight read bound.
    pub fn with_device_queue(mut self, max_inflight: u32) -> Self {
        self.device_queue = Some(max_inflight);
        self
    }

    /// Enables online threshold re-tuning.
    pub fn with_tuner(mut self, settings: OnlineTunerSettings) -> Self {
        self.tuner = Some(settings);
        self
    }

    /// Enables the online DRAM cache budget controller (closed-loop
    /// re-partitioning of the fixed total cache budget across tables).
    pub fn with_cache_budget(mut self, settings: CacheBudgetSettings) -> Self {
        self.cache_budget = Some(settings);
        self
    }

    /// Enables the online hot-block re-layout controller (closed-loop
    /// incremental SHP refinement against live co-access traffic).
    pub fn with_relayout(mut self, settings: ReLayoutSettings) -> Self {
        self.relayout = Some(settings);
        self
    }

    /// Sets the metrics bus cadence and recent-window geometry.
    pub fn with_control(mut self, control: ControlConfig) -> Self {
        self.control = control;
        self
    }

    /// Enables SLO enforcement: registers an [`SloController`] on the
    /// metrics bus, which sheds any tenant at admission
    /// ([`ServeError::SloShed`]) while its recent-window p99 exceeds its
    /// [`TenantSpec::slo_p99`] budget.
    pub fn with_slo_controller(mut self, config: SloControllerConfig) -> Self {
        self.slo = Some(config);
        self
    }

    /// Enables flight-recorder request tracing (sampled per-request
    /// lifecycle events in preallocated per-shard rings; see
    /// [`TraceConfig`]).
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Enables crash-safe durability: WAL journaling of catalog and
    /// tenant-registry mutations plus periodic warm-state snapshots in
    /// [`PersistConfig::dir`]. Pair with [`ShardedEngine::recover`] for a
    /// warm restart.
    pub fn with_persist(mut self, persist: PersistConfig) -> Self {
        self.persist = Some(persist);
        self
    }

    /// Registers a tenant and its QoS contract. Each shard gives every
    /// tenant its own bounded queue lane, scheduled by strict priority
    /// across [`PriorityClass`]es and deficit round-robin on
    /// [`TenantSpec::weight`] within a class. Registering
    /// [`TenantId::DEFAULT`] overrides the default tenant's spec
    /// (weight 1, normal class, no quota) instead of adding a tenant.
    pub fn with_tenant(mut self, id: TenantId, spec: TenantSpec) -> Self {
        self.tenants.push((id, spec));
        self
    }

    fn validate(&self) -> Result<(), String> {
        if self.num_shards == 0 {
            return Err("need at least one shard".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be non-zero".into());
        }
        if self.max_batch == 0 {
            return Err("max batch must be at least 1".into());
        }
        if self.device_queue == Some(0) {
            return Err("device queue depth must be at least 1".into());
        }
        for (i, (id, spec)) in self.tenants.iter().enumerate() {
            spec.validate()?;
            if self.tenants[..i].iter().any(|(other, _)| other == id) {
                return Err(format!("{id} registered twice"));
            }
        }
        if let Some(t) = &self.tuner {
            t.validate()?;
        }
        if let Some(b) = &self.cache_budget {
            b.validate()?;
        }
        if let Some(r) = &self.relayout {
            r.validate()?;
        }
        self.control.validate()?;
        if let Some(s) = &self.slo {
            s.validate()?;
        }
        self.trace.validate()?;
        Ok(())
    }
}

/// Errors surfaced by the serving API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request was shed at admission (a shard queue was full under
    /// [`ShedPolicy::DropNewest`]).
    Rejected,
    /// The request was shed at admission because its tenant reached its
    /// [`admission quota`](TenantSpec::admission_quota).
    QuotaExceeded,
    /// The request was shed at admission by the
    /// [`SloController`]: the tenant's
    /// recent-window p99 currently exceeds its
    /// [`slo_p99`](TenantSpec::slo_p99) budget, so new work is refused
    /// early instead of queueing toward a latency that would violate the
    /// SLO anyway.
    SloShed,
    /// The request missed its deadline ([`ServeConfig::request_timeout`]
    /// or the per-request override).
    TimedOut,
    /// The engine is shutting down.
    ShuttingDown,
    /// The tenant was never registered with
    /// [`ServeConfig::with_tenant`].
    UnknownTenant(TenantId),
    /// The ticket's response was already taken
    /// (see [`ResponseTicket`](crate::ResponseTicket)).
    TicketTaken,
    /// A live tenant registration
    /// ([`ShardedEngine::register_tenant`]) was refused: the id is
    /// already registered or the spec is invalid.
    InvalidTenant(String),
    /// The durability subsystem failed (WAL append, snapshot install, or
    /// persistence not configured for the requested operation).
    Persist(String),
    /// A table/vector reference was invalid or the device failed.
    Store(BandanaError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected => write!(f, "request shed: shard queue full"),
            ServeError::QuotaExceeded => {
                write!(f, "request shed: tenant admission quota exhausted")
            }
            ServeError::SloShed => {
                write!(f, "request shed: tenant over its recent-window p99 SLO budget")
            }
            ServeError::TimedOut => write!(f, "request timed out before serving started"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::UnknownTenant(id) => write!(f, "{id} is not registered with the engine"),
            ServeError::TicketTaken => write!(f, "response already taken from this ticket"),
            ServeError::InvalidTenant(why) => write!(f, "tenant registration refused: {why}"),
            ServeError::Persist(why) => write!(f, "persistence error: {why}"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BandanaError> for ServeError {
    fn from(e: BandanaError) -> Self {
        ServeError::Store(e)
    }
}

/// A command hot-swapped into a shard between micro-batches — the
/// write side of the control plane: [`Action`]s a controller returns are
/// translated into these and applied by the worker at a safe point.
#[derive(Debug)]
pub(crate) enum ShardCommand {
    /// Replace one table's admission policy.
    SetPolicy {
        /// Table id (owned by the receiving shard).
        table: usize,
        /// The new policy.
        policy: AdmissionPolicy,
        /// Shadow-cache multiplier for policies that need one.
        shadow_multiplier: f64,
    },
    /// Retune the worker's cross-request micro-batch window.
    SetBatchWindow {
        /// The new window (zero disables cross-request batching).
        window: Duration,
    },
    /// Re-size one table's DRAM cache to its newly solved budget share
    /// (grow admits immediately; shrink evicts coldest-first).
    SetCachePartition {
        /// Table id (owned by the receiving shard).
        table: usize,
        /// The new cache capacity in entries.
        entries: usize,
    },
    /// Capture the shard's warm state (cache keys, policies, endurance)
    /// for a persistence snapshot, between micro-batches so the capture
    /// is internally consistent per shard.
    CollectSnapshot {
        /// Where the shard sends its captured parts.
        reply: mpsc::Sender<ShardSnapshotParts>,
    },
    /// Rewrite one table's embeddings on the shard's device — §2.2
    /// retraining, the deliberate drive-write source charged to the
    /// shard's endurance meter.
    Retrain {
        /// Table id (owned by the receiving shard).
        table: usize,
        /// The freshly trained embeddings.
        embeddings: Arc<EmbeddingTable>,
        /// Completion/err channel back to the caller.
        reply: mpsc::Sender<Result<(), BandanaError>>,
    },
    /// Atomically remap one table onto a refined block layout, between
    /// micro-batches. Rewritten blocks are real device writes charged to
    /// the shard's endurance meter; cached entries survive the remap.
    ApplyLayout {
        /// Table id (owned by the receiving shard).
        table: usize,
        /// The full placement order: `order[position] = vector id`.
        order: Vec<u32>,
    },
}

/// One shard's contribution to a persistence snapshot.
#[derive(Debug)]
pub(crate) struct ShardSnapshotParts {
    shard: usize,
    /// Cumulative bytes written to the shard's dense device.
    endurance_bytes: u64,
    tables: Vec<TableSnapshot>,
}

/// The slice of a recovered snapshot one shard applies before it starts
/// draining its queue (cache rehydration happens before admission opens).
struct ShardRecovered {
    /// Restored endurance counter, when the snapshot's shard geometry
    /// matches the engine's (sharding is deterministic, so it normally
    /// does).
    endurance_bytes: Option<u64>,
    /// The snapshot's tables owned by this shard.
    tables: Vec<TableSnapshot>,
}

/// The per-shard slice of one request: one entry per table query routed to
/// that shard, with duplicate ids coalesced.
#[derive(Debug)]
struct Part {
    /// Index of the originating query inside the request.
    query_index: usize,
    /// The table this part reads.
    table: usize,
    /// Distinct ids, first-occurrence order.
    unique_ids: Vec<u32>,
    /// For each original id position, its index into `unique_ids`.
    expand: Vec<usize>,
}

#[derive(Debug)]
pub(crate) struct JobState {
    /// Per-query payloads (only filled when the submitter asked for them).
    pub(crate) results: Vec<Option<Vec<Bytes>>>,
    /// First store error hit by any shard.
    pub(crate) error: Option<BandanaError>,
    pub(crate) done: bool,
    /// Submission → completion, set when the job finishes.
    pub(crate) e2e: Duration,
    /// Host queue wait of the slowest involved shard.
    pub(crate) queue_wait: Duration,
    /// Simulated device seconds charged by the slowest involved shard.
    pub(crate) device_s: f64,
    /// Service time of the slowest involved shard.
    pub(crate) service: Duration,
}

/// One in-flight request (the completion state a
/// [`ResponseTicket`](crate::ResponseTicket) polls).
pub(crate) struct Job {
    arrival: Instant,
    deadline: Option<Instant>,
    /// Index into [`Shared::tenants`].
    tenant: usize,
    /// Flight-recorder trace id assigned at admission (`0` = unsampled).
    trace: u64,
    parts_by_shard: Vec<Vec<Part>>,
    /// Parts not yet finished (counts enqueued shards).
    remaining: AtomicUsize,
    cancelled: AtomicBool,
    timed_out: AtomicBool,
    want_payloads: bool,
    pub(crate) state: Mutex<JobState>,
    pub(crate) done_cv: Condvar,
}

/// Drains a finished job's state into a typed [`Response`]; payloads are
/// moved out, so this runs at most once per job (the ticket enforces it).
pub(crate) fn take_response(job: &Job) -> Response {
    let mut st = job.state.lock().expect("job lock");
    debug_assert!(st.done, "take_response on an unfinished job");
    let status = if job.timed_out.load(Ordering::Acquire) {
        ResponseStatus::TimedOut
    } else if let Some(e) = st.error.clone() {
        ResponseStatus::Failed(e)
    } else {
        ResponseStatus::Ok
    };
    let parts = if status.is_ok() {
        st.results.iter_mut().map(|slot| slot.take().unwrap_or_default()).collect()
    } else {
        Vec::new()
    };
    Response {
        parts,
        status,
        e2e: st.e2e,
        queue_wait: st.queue_wait,
        device: Duration::from_secs_f64(st.device_s),
        service: st.service,
    }
}

struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    lookups_served: AtomicU64,
    tuner_swaps: AtomicU64,
    control_ticks: AtomicU64,
    control_actions: AtomicU64,
    /// Budget-controller re-solves of the DRAM partition (each one
    /// re-runs `allocate_dram` against fresh online curves).
    rebudget_solves: AtomicU64,
    /// [`Action::SetCachePartition`]s actually routed to a shard (solves
    /// whose targets cleared the hysteresis bar).
    rebudget_applied: AtomicU64,
    /// Re-layout controller refinement solves (windows whose observed
    /// blocks-per-request cleared the degradation bar).
    relayout_solves: AtomicU64,
    /// [`Action::ApplyLayout`]s actually routed to a shard (solves whose
    /// refinement moved at least one vector).
    relayout_applied: AtomicU64,
    /// Blocks rewritten on-device by applied re-layouts.
    relayout_rewritten_blocks: AtomicU64,
    /// Freshest completed window's observed blocks-per-request, stored
    /// as [`f64::to_bits`].
    relayout_observed_bpr_bits: AtomicU64,
    /// Freshest completed window's ideal blocks-per-request, as bits.
    relayout_ideal_bpr_bits: AtomicU64,
}

impl Counters {
    fn new() -> Self {
        Counters {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            lookups_served: AtomicU64::new(0),
            tuner_swaps: AtomicU64::new(0),
            control_ticks: AtomicU64::new(0),
            control_actions: AtomicU64::new(0),
            rebudget_solves: AtomicU64::new(0),
            rebudget_applied: AtomicU64::new(0),
            relayout_solves: AtomicU64::new(0),
            relayout_applied: AtomicU64::new(0),
            relayout_rewritten_blocks: AtomicU64::new(0),
            relayout_observed_bpr_bits: AtomicU64::new(0),
            relayout_ideal_bpr_bits: AtomicU64::new(0),
        }
    }
}

/// Shard-thread statistics, read by [`ShardedEngine::metrics`].
#[derive(Debug, Default)]
struct ShardStats {
    served_requests: u64,
    lookups: u64,
    queue_wait: LatencyHistogram,
    service: LatencyHistogram,
    /// Simulated device time charged to each served request's batch.
    device: LatencyHistogram,
    /// End-to-end latency of requests whose *last* part finished on this
    /// shard; merging across shards gives the full distribution.
    e2e: LatencyHistogram,
    cache: CacheMetrics,
    device_reads: u64,
    /// Micro-batches that served at least one request.
    batches: u64,
    /// Requests served across those batches.
    batched_requests: u64,
    /// Most requests ever merged into one batch.
    largest_batch: u64,
    /// Device submission accounting (zeros when no device queue is
    /// configured).
    depth: DepthStats,
    /// Dense rebased device capacity in blocks (static per shard).
    capacity_blocks: u64,
    /// Bytes written to the shard's dense device (endurance accounting).
    bytes_written: u64,
    /// Cumulative full rewrites of the shard's dense device.
    drive_writes: f64,
    /// Block-buffer pool accounting for the shard's read path.
    pool: PoolStats,
}

/// One registered tenant's runtime state: its spec plus lock-free
/// admission counters (aggregate shed and the per-reason breakdown) and
/// two end-to-end latency histograms — cumulative and recent-window (the
/// latter rotated by the metrics bus).
pub(crate) struct TenantRuntime {
    id: TenantId,
    spec: TenantSpec,
    outstanding: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    shed_lane_full: AtomicU64,
    shed_quota: AtomicU64,
    shed_slo: AtomicU64,
    reclaimed: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    /// Set by the SLO controller: while true, new submissions are shed at
    /// admission with [`ServeError::SloShed`].
    slo_shed: AtomicBool,
    e2e: Mutex<LatencyHistogram>,
    recent: Mutex<WindowedHistogram>,
}

impl TenantRuntime {
    fn new(id: TenantId, spec: TenantSpec, window_slots: usize) -> Self {
        TenantRuntime {
            id,
            spec,
            outstanding: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            shed_lane_full: AtomicU64::new(0),
            shed_quota: AtomicU64::new(0),
            shed_slo: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            slo_shed: AtomicBool::new(false),
            e2e: Mutex::new(LatencyHistogram::new()),
            recent: Mutex::new(WindowedHistogram::new(window_slots)),
        }
    }

    /// The tenant's shed breakdown from the lock-free counters.
    fn shed_breakdown(&self) -> ShedBreakdown {
        ShedBreakdown {
            lane_full: self.shed_lane_full.load(Ordering::Relaxed),
            quota: self.shed_quota.load(Ordering::Relaxed),
            slo: self.shed_slo.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
        }
    }
}

pub(crate) struct Shared {
    queues: Vec<WeightedQueue<Arc<Job>>>,
    /// `table_shard[t]` = shard owning table `t`.
    table_shard: Vec<usize>,
    shard_tables: Vec<Vec<usize>>,
    counters: Counters,
    /// Registered tenants; index 0 is always the default tenant. The
    /// list is append-only (tenant indices are stable for the engine's
    /// lifetime), behind a `RwLock` so the admin plane can register
    /// tenants live ([`ShardedEngine::register_tenant`]) while the hot
    /// path clones one `Arc` out of a brief read lock.
    tenants: RwLock<Vec<Arc<TenantRuntime>>>,
    outstanding: AtomicU64,
    idle: (Mutex<()>, Condvar),
    shard_stats: Vec<Mutex<ShardStats>>,
    shed_policy: ShedPolicy,
    request_timeout: Option<Duration>,
    /// When the engine started (snapshot uptimes are relative to this).
    started: Instant,
    /// The recent-window span ([`ControlConfig::window_span`]), reported
    /// in snapshots so controllers can reason about decay.
    window_span: Duration,
    /// Slots per recent window ([`ControlConfig::window_slots`]), kept
    /// so tenants registered live get the same window shape as
    /// build-time ones.
    window_slots: usize,
    /// The live micro-batch window in nanoseconds, kept in sync with
    /// [`Action::SetBatchWindow`] retunes so snapshots report the truth.
    batch_window_ns: AtomicU64,
    /// The flight recorder: the 1-in-N admission sampler plus one
    /// preallocated trace ring per shard.
    recorder: TraceRecorder,
    /// The live per-table DRAM partition: `capacity_entries` tracks what
    /// each table's cache is actually sized to (updated when a
    /// [`Action::SetCachePartition`] is routed), `target_entries` the
    /// budget controller's latest solve. Initialized from the build-time
    /// partition and always present, so snapshots and gauges report the
    /// split whether or not the controller is enabled.
    cache_partition: Mutex<Vec<TableCachePartition>>,
    /// Bounded ring of control-plane decisions (the bus records every
    /// applied [`Action`] here before applying it).
    audit: AuditLog,
    /// The open persist directory when durability is configured: WAL
    /// appends from the admin plane, periodic snapshot installs from the
    /// metrics bus.
    persistence: Option<Arc<Persistence>>,
    /// Durability and warm-restart accounting (see [`RecoveryMetrics`]).
    recovery: RecoveryStats,
    /// Shard workers that have finished applying recovered state; the
    /// builder blocks on this after a recovery so the caches are warm
    /// before admission opens.
    warm_shards: AtomicUsize,
    shutdown: AtomicBool,
}

/// Lock-free counters behind [`RecoveryMetrics`].
#[derive(Default)]
struct RecoveryStats {
    replayed_records: AtomicU64,
    rehydrated_keys: AtomicU64,
    snapshots_installed: AtomicU64,
    /// Unix milliseconds of the newest installed or recovered snapshot
    /// (0 = no snapshot yet).
    last_snapshot_unix_ms: AtomicU64,
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Maps a persistence failure into the store's config-error channel
/// (build and recovery paths surface [`BandanaError`]).
fn persist_err(e: bandana_persist::PersistError) -> BandanaError {
    BandanaError::Config(format!("persist: {e}"))
}

/// Encodes one tenant registration as its WAL record.
fn tenant_record(id: TenantId, spec: &TenantSpec) -> WalRecord {
    WalRecord::TenantRegistered {
        id: id.0,
        weight: spec.weight,
        class: spec.priority_class.index() as u8,
        quota: spec.admission_quota.map_or(-1, |q| q.min(i64::MAX as u64) as i64),
        slo_p99_ms: spec.slo_p99.map_or(-1, |d| d.as_millis().min(i64::MAX as u128) as i64),
    }
}

/// Decodes a WAL tenant record back into its id and spec.
fn tenant_from_record(
    id: u32,
    weight: u32,
    class: u8,
    quota: i64,
    slo_p99_ms: i64,
) -> (TenantId, TenantSpec) {
    let priority_class = match class {
        0 => PriorityClass::High,
        2 => PriorityClass::Low,
        _ => PriorityClass::Normal,
    };
    (
        TenantId(id),
        TenantSpec {
            weight,
            priority_class,
            admission_quota: (quota >= 0).then_some(quota as u64),
            slo_p99: (slo_p99_ms >= 0).then(|| Duration::from_millis(slo_p99_ms as u64)),
        },
    )
}

/// Index of the always-present default tenant in [`Shared::tenants`].
const DEFAULT_TENANT_INDEX: usize = 0;

impl Shared {
    /// The durability/warm-restart counters as public metrics.
    pub(crate) fn recovery_metrics(&self) -> RecoveryMetrics {
        let last_ms = self.recovery.last_snapshot_unix_ms.load(Ordering::Relaxed);
        let snapshot_age_seconds = if last_ms == 0 {
            -1.0
        } else {
            (unix_ms_now().saturating_sub(last_ms)) as f64 / 1000.0
        };
        RecoveryMetrics {
            replayed_records: self.recovery.replayed_records.load(Ordering::Relaxed),
            rehydrated_keys: self.recovery.rehydrated_keys.load(Ordering::Relaxed),
            snapshots_installed: self.recovery.snapshots_installed.load(Ordering::Relaxed),
            snapshot_age_seconds,
        }
    }

    /// Resolves a tenant id to its index in [`Shared::tenants`].
    pub(crate) fn tenant_index(&self, id: TenantId) -> Option<usize> {
        self.tenants.read().expect("tenant lock").iter().position(|t| t.id == id)
    }

    /// The runtime registered at a tenant index (indices are stable:
    /// the tenant table is append-only).
    pub(crate) fn tenant(&self, index: usize) -> Arc<TenantRuntime> {
        Arc::clone(&self.tenants.read().expect("tenant lock")[index])
    }

    /// Number of registered tenants (including the default tenant).
    pub(crate) fn num_tenants(&self) -> usize {
        self.tenants.read().expect("tenant lock").len()
    }

    /// The id registered at a tenant index.
    pub(crate) fn tenant_id(&self, index: usize) -> TenantId {
        self.tenants.read().expect("tenant lock")[index].id
    }

    /// One tenant's metrics slice (see
    /// [`EngineMetrics::per_tenant`]).
    pub(crate) fn tenant_metrics(&self, index: usize) -> TenantMetrics {
        let t = self.tenant(index);
        let latency = t.e2e.lock().expect("tenant histogram lock").summary();
        let recent = t.recent.lock().expect("tenant window lock").summary();
        TenantMetrics {
            id: t.id,
            weight: t.spec.weight,
            priority_class: t.spec.priority_class,
            admission_quota: t.spec.admission_quota,
            slo_p99: t.spec.slo_p99,
            submitted: t.submitted.load(Ordering::Relaxed),
            shed: t.shed.load(Ordering::Relaxed),
            completed: t.completed.load(Ordering::Relaxed),
            shed_reasons: t.shed_breakdown(),
            timed_out: t.timed_out.load(Ordering::Relaxed),
            failed: t.failed.load(Ordering::Relaxed),
            outstanding: t.outstanding.load(Ordering::Relaxed),
            slo_shedding: t.slo_shed.load(Ordering::Relaxed),
            latency,
            recent,
        }
    }

    /// Nanoseconds since the engine started (flight-recorder timestamps
    /// are relative to [`Shared::started`]).
    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Records the terminal event for a sampled request refused at
    /// admission (SLO breaker or quota) — no job ever existed, so the
    /// normal [`finalize_job`] terminal cannot fire for it.
    fn record_admission_shed(&self, trace: u64, tenant: usize) {
        if trace == 0 {
            return;
        }
        self.recorder.record(
            0,
            TraceEvent {
                request: trace,
                kind: TraceEventKind::Shed,
                at_ns: self.now_ns(),
                dur_ns: 0,
                shard: 0,
                tenant: tenant as u32,
                batch: 0,
            },
        );
    }

    /// Rotates every tenant's recent window by one slot (bus-driven).
    fn rotate_windows(&self) {
        for t in self.tenants.read().expect("tenant lock").iter() {
            t.recent.lock().expect("tenant window lock").rotate();
        }
    }

    /// Assembles the control plane's periodic view of the engine.
    fn snapshot(&self, tick: u64) -> EngineSnapshot {
        let shards: Vec<ShardSnapshot> = self
            .queues
            .iter()
            .enumerate()
            .map(|(shard, q)| {
                let s = self.shard_stats[shard].lock().expect("shard stats lock");
                ShardSnapshot {
                    shard,
                    lane_depths: q.lane_lens(),
                    batches: s.batches,
                    batched_requests: s.batched_requests,
                    depth: s.depth,
                }
            })
            .collect();
        let tenants = self
            .tenants
            .read()
            .expect("tenant lock")
            .iter()
            .enumerate()
            .map(|(i, t)| TenantSnapshot {
                id: t.id,
                priority_class: t.spec.priority_class,
                slo_p99: t.spec.slo_p99,
                outstanding: t.outstanding.load(Ordering::Relaxed),
                submitted: t.submitted.load(Ordering::Relaxed),
                completed: t.completed.load(Ordering::Relaxed),
                // A tenant registered between the shard capture above
                // and this read has lanes the captured depths predate;
                // treat the missing lane as empty rather than panic.
                queued: shards
                    .iter()
                    .map(|s| s.lane_depths.get(i).copied().unwrap_or(0) as u64)
                    .sum(),
                shed: t.shed_breakdown(),
                slo_shedding: t.slo_shed.load(Ordering::Relaxed),
                recent: t.recent.lock().expect("tenant window lock").summary(),
            })
            .collect();
        EngineSnapshot {
            tick,
            uptime: self.started.elapsed(),
            window_span: self.window_span,
            batch_window: Duration::from_nanos(self.batch_window_ns.load(Ordering::Relaxed)),
            shards,
            tenants,
            cache_partition: self.cache_partition.lock().expect("cache partition lock").clone(),
        }
    }

    /// Applies one controller [`Action`] through the shard command
    /// channels and shared admission state.
    fn apply_action(&self, commands: &[mpsc::Sender<ShardCommand>], action: Action) {
        self.counters.control_actions.fetch_add(1, Ordering::Relaxed);
        match action {
            Action::SetPolicy { table, policy, shadow_multiplier } => {
                if let Some(&shard) = self.table_shard.get(table) {
                    if commands[shard]
                        .send(ShardCommand::SetPolicy { table, policy, shadow_multiplier })
                        .is_ok()
                    {
                        self.counters.tuner_swaps.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Action::SetLaneCap { tenant, cap } => {
                if let Some(lane) = self.tenant_index(tenant) {
                    for q in &self.queues {
                        q.set_lane_capacity(lane, cap.max(1));
                    }
                }
            }
            Action::SetBatchWindow { window } => {
                self.batch_window_ns.store(window.as_nanos() as u64, Ordering::Relaxed);
                for tx in commands {
                    let _ = tx.send(ShardCommand::SetBatchWindow { window });
                }
            }
            Action::SetSloShed { tenant, shed } => {
                if let Some(i) = self.tenant_index(tenant) {
                    self.tenant(i).slo_shed.store(shed, Ordering::Release);
                }
            }
            Action::SetCachePartition { table, entries, .. } => {
                if let Some(&shard) = self.table_shard.get(table) {
                    if commands[shard]
                        .send(ShardCommand::SetCachePartition { table, entries })
                        .is_ok()
                    {
                        self.counters.rebudget_applied.fetch_add(1, Ordering::Relaxed);
                        let mut partition =
                            self.cache_partition.lock().expect("cache partition lock");
                        if let Some(p) = partition.iter_mut().find(|p| p.table == table) {
                            p.capacity_entries = entries;
                        }
                    }
                }
            }
            Action::ApplyLayout { table, order, .. } => {
                if let Some(&shard) = self.table_shard.get(table) {
                    if commands[shard].send(ShardCommand::ApplyLayout { table, order }).is_ok() {
                        self.counters.relayout_applied.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // `Action` is non_exhaustive for forward compatibility; an
            // unknown action from a future controller is a no-op rather
            // than a crash.
            #[allow(unreachable_patterns)]
            _ => {}
        }
    }

    /// Splits a request into per-shard parts and allocates its
    /// completion state; `deadline` overrides the engine-wide timeout.
    fn build_job(
        &self,
        request: &Request,
        want_payloads: bool,
        tenant: usize,
        deadline: Option<Duration>,
        trace: u64,
    ) -> Result<(Arc<Job>, Vec<usize>), ServeError> {
        let num_shards = self.queues.len();
        let mut parts_by_shard: Vec<Vec<Part>> = (0..num_shards).map(|_| Vec::new()).collect();
        for (query_index, q) in request.queries.iter().enumerate() {
            let &shard = self.table_shard.get(q.table).ok_or(ServeError::Store(
                BandanaError::NoSuchTable { table: q.table, tables: self.table_shard.len() },
            ))?;
            // Coalesce duplicate ids within the query.
            let mut unique_ids: Vec<u32> = Vec::with_capacity(q.ids.len());
            let mut index_of: HashMap<u32, usize> = HashMap::with_capacity(q.ids.len());
            let mut expand = Vec::with_capacity(q.ids.len());
            for &v in &q.ids {
                let next = unique_ids.len();
                let idx = *index_of.entry(v).or_insert(next);
                if idx == next {
                    unique_ids.push(v);
                }
                expand.push(idx);
            }
            parts_by_shard[shard].push(Part { query_index, table: q.table, unique_ids, expand });
        }
        let involved: Vec<usize> =
            (0..num_shards).filter(|&s| !parts_by_shard[s].is_empty()).collect();
        let arrival = Instant::now();
        let job = Arc::new(Job {
            arrival,
            deadline: deadline.or(self.request_timeout).map(|t| arrival + t),
            tenant,
            trace,
            parts_by_shard,
            remaining: AtomicUsize::new(involved.len()),
            cancelled: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            want_payloads,
            state: Mutex::new(JobState {
                results: vec![None; request.queries.len()],
                error: None,
                done: false,
                e2e: Duration::ZERO,
                queue_wait: Duration::ZERO,
                device_s: 0.0,
                service: Duration::ZERO,
            }),
            done_cv: Condvar::new(),
        });
        Ok((job, involved))
    }

    /// Admits a request for `tenant` (quota, then per-tenant shard
    /// lanes) and dispatches its parts.
    pub(crate) fn enqueue(
        &self,
        request: &Request,
        want_payloads: bool,
        tenant: usize,
        deadline: Option<Duration>,
    ) -> Result<Arc<Job>, ServeError> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let rt = self.tenant(tenant);
        // Draw the flight-recorder sampling decision per admission
        // attempt: shed outcomes are lifecycle events too.
        let trace = self.recorder.sample();
        // SLO breaker first: a tenant currently over its recent-window
        // p99 budget is refused before it can occupy a quota slot or a
        // lane — the whole point is that this work never enters a queue.
        if rt.slo_shed.load(Ordering::Acquire) {
            self.counters.submitted.fetch_add(1, Ordering::Relaxed);
            rt.submitted.fetch_add(1, Ordering::Relaxed);
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            rt.shed.fetch_add(1, Ordering::Relaxed);
            rt.shed_slo.fetch_add(1, Ordering::Relaxed);
            self.record_admission_shed(trace, tenant);
            return Err(ServeError::SloShed);
        }
        // Reserve the tenant's in-flight slot up front so the quota check
        // is race-free under concurrent submitters.
        let reserved = rt.outstanding.fetch_add(1, Ordering::AcqRel);
        if rt.spec.admission_quota.is_some_and(|q| reserved >= q) {
            rt.outstanding.fetch_sub(1, Ordering::AcqRel);
            self.counters.submitted.fetch_add(1, Ordering::Relaxed);
            rt.submitted.fetch_add(1, Ordering::Relaxed);
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            rt.shed.fetch_add(1, Ordering::Relaxed);
            rt.shed_quota.fetch_add(1, Ordering::Relaxed);
            self.record_admission_shed(trace, tenant);
            return Err(ServeError::QuotaExceeded);
        }
        let (job, involved) = match self.build_job(request, want_payloads, tenant, deadline, trace)
        {
            Ok(built) => built,
            Err(e) => {
                // Malformed before admission: not counted as submitted.
                rt.outstanding.fetch_sub(1, Ordering::AcqRel);
                return Err(e);
            }
        };
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        rt.submitted.fetch_add(1, Ordering::Relaxed);
        if job.trace != 0 {
            self.recorder.record(
                0,
                TraceEvent {
                    request: job.trace,
                    kind: TraceEventKind::Admitted,
                    at_ns: self.now_ns(),
                    dur_ns: 0,
                    shard: 0,
                    tenant: tenant as u32,
                    batch: 0,
                },
            );
        }
        if involved.is_empty() {
            // Empty request: trivially complete.
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
            rt.completed.fetch_add(1, Ordering::Relaxed);
            rt.outstanding.fetch_sub(1, Ordering::AcqRel);
            let mut st = job.state.lock().expect("job lock");
            st.done = true;
            drop(st);
            if job.trace != 0 {
                self.recorder.record(
                    0,
                    TraceEvent {
                        request: job.trace,
                        kind: TraceEventKind::Completed,
                        at_ns: self.now_ns(),
                        dur_ns: 0,
                        shard: 0,
                        tenant: tenant as u32,
                        batch: 0,
                    },
                );
            }
            return Ok(job);
        }
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        for (i, &shard) in involved.iter().enumerate() {
            let result = self.queues[shard].push(tenant, Arc::clone(&job), self.shed_policy);
            let reject_error = match result {
                Push::Accepted => {
                    if job.trace != 0 {
                        self.recorder.record(
                            shard,
                            TraceEvent {
                                request: job.trace,
                                kind: TraceEventKind::LaneEnqueued,
                                at_ns: self.now_ns(),
                                dur_ns: 0,
                                shard: shard as u32,
                                tenant: tenant as u32,
                                batch: 0,
                            },
                        );
                    }
                    continue;
                }
                Push::Dropped(_) => ServeError::Rejected,
                Push::Closed(_) => ServeError::ShuttingDown,
            };
            // Shed/abort the whole request. Both rejection causes (full
            // lane, closing queue) count as shed so every submitted
            // request lands in exactly one outcome bucket.
            job.cancelled.store(true, Ordering::Release);
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            rt.shed.fetch_add(1, Ordering::Relaxed);
            // Both rejection causes land in the lane-full reason bucket
            // (a closing queue is indistinguishable from a full one to
            // the submitter, and both are admission-side drops).
            rt.shed_lane_full.fetch_add(1, Ordering::Relaxed);
            // Account for the parts that were never enqueued (this shard
            // and all later ones), then reclaim the parts earlier shards
            // already accepted: left queued, the cancelled work would
            // hold lane slots and burn the tenant's DRR quantum. A part
            // a worker already popped (reclaim misses) is handled by the
            // cancel flag and finishes through the normal worker path.
            let mut finished_parts = involved.len() - i;
            for &prior in &involved[..i] {
                if self.queues[prior].remove_first(tenant, |j| Arc::ptr_eq(j, &job)).is_some() {
                    finished_parts += 1;
                    rt.reclaimed.fetch_add(1, Ordering::Relaxed);
                }
            }
            if job.remaining.fetch_sub(finished_parts, Ordering::AcqRel) == finished_parts {
                finalize_job(self, &job, None);
            }
            return Err(reject_error);
        }
        Ok(job)
    }
}

/// Aggregated engine statistics (see [`ShardedEngine::metrics`]).
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Requests accepted by `submit`/`serve` (includes later sheds).
    pub submitted: u64,
    /// Requests fully served.
    pub completed: u64,
    /// Requests shed at admission (a shard queue was full, or closing
    /// during shutdown).
    pub shed: u64,
    /// Requests abandoned past their deadline.
    pub timed_out: u64,
    /// Requests that hit a store error.
    pub failed: u64,
    /// Requests currently in flight.
    pub outstanding: u64,
    /// Vector lookups served (original request positions, duplicates
    /// included).
    pub lookups: u64,
    /// Admission-policy hot-swaps applied by the background tuner.
    pub tuner_swaps: u64,
    /// Metrics-bus ticks completed (each tick snapshots the engine and
    /// runs every registered controller).
    pub control_ticks: u64,
    /// Controller [`Action`]s applied by the bus across all controllers.
    pub control_actions: u64,
    /// DRAM-budget re-solves by the cache budget controller (each one
    /// re-runs the marginal-gain allocator against fresh online curves).
    pub rebudget_solves: u64,
    /// Cache re-partitions actually applied to shards (solves whose
    /// targets cleared the hysteresis bar).
    pub rebudget_applied: u64,
    /// Re-layout controller refinement solves (windows whose observed
    /// blocks-per-request cleared the degradation bar).
    pub relayout_solves: u64,
    /// Block re-layouts actually applied to shards (solves whose
    /// refinement moved at least one vector).
    pub relayout_applied: u64,
    /// Blocks rewritten on-device by applied re-layouts.
    pub relayout_rewritten_blocks: u64,
    /// Observed blocks-per-request over the freshest completed re-layout
    /// window (`0.0` until a window completes).
    pub blocks_per_request_observed: f64,
    /// The same window's ideal (perfectly packed) blocks-per-request.
    pub blocks_per_request_ideal: f64,
    /// The live per-table DRAM partition: running capacity and the
    /// budget controller's latest target per table (targets equal the
    /// build-time split until a controller solves).
    pub cache_partition: Vec<TableCachePartition>,
    /// End-to-end latency of completed requests.
    pub latency: LatencySummary,
    /// Submission → start-of-service wait.
    pub queue_wait: LatencySummary,
    /// Per-shard service time (dequeue → parts done).
    pub service: LatencySummary,
    /// Simulated device time charged to each served request's micro-batch
    /// (all zeros unless [`ServeConfig::device_queue`] is set).
    pub device_time: LatencySummary,
    /// Queue-wait vs device-time vs service breakdown of served requests.
    pub breakdown: LatencyBreakdown,
    /// Cross-request micro-batching and device submission accounting.
    pub batching: BatchingMetrics,
    /// Block-buffer pool accounting summed across shard workers; a high
    /// [`PoolStats::reuse_rate`] means the steady-state miss path runs
    /// without heap allocation.
    pub pool: PoolStats,
    /// The full end-to-end histogram, for custom quantiles.
    pub e2e_histogram: LatencyHistogram,
    /// DRAM cache counters merged across all tables.
    pub cache: CacheMetrics,
    /// Per-shard breakdown.
    pub per_shard: Vec<ShardMetrics>,
    /// Per-tenant QoS accounting (admission counters, sheds, and each
    /// tenant's own latency distribution); index 0 is the default tenant.
    pub per_tenant: Vec<TenantMetrics>,
    /// The control plane's retained audit events, oldest first: every
    /// [`Action`] the metrics bus applied, with the controller that
    /// authored it and the snapshot evidence behind it (bounded ring;
    /// see [`AuditEvent`]).
    pub audit: Vec<AuditEvent>,
    /// Durability and warm-restart accounting (zeroes on a cold start
    /// with no persist directory configured).
    pub recovery: RecoveryMetrics,
}

/// Durability/warm-restart counters inside [`EngineMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryMetrics {
    /// WAL records replayed by [`ShardedEngine::recover`] (0 on a cold
    /// start).
    pub replayed_records: u64,
    /// Cache entries rehydrated into shard caches from the recovered
    /// snapshot.
    pub rehydrated_keys: u64,
    /// Snapshots installed by *this* engine instance (periodic plus
    /// explicit [`ShardedEngine::snapshot_now`] calls).
    pub snapshots_installed: u64,
    /// Seconds since the newest installed or recovered snapshot was
    /// written, `-1.0` when no snapshot exists yet.
    pub snapshot_age_seconds: f64,
}

/// Micro-batching and device-queue accounting inside [`EngineMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchingMetrics {
    /// Micro-batches that served at least one request.
    pub batches: u64,
    /// Requests served across those batches (mean batch size is
    /// [`BatchingMetrics::mean_batch`]).
    pub batched_requests: u64,
    /// Most requests ever merged into one micro-batch.
    pub largest_batch: u64,
    /// Device submission accounting summed across shards (reads
    /// submitted/completed, peak and mean queue depth, simulated busy
    /// seconds). All zeros when no device queue is configured.
    pub depth: DepthStats,
}

impl BatchingMetrics {
    /// Mean requests per micro-batch (`0.0` before any batch was served).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

/// One shard's statistics inside [`EngineMetrics`].
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Tables owned by the shard.
    pub tables: Vec<usize>,
    /// Requests this shard served at least one part of.
    pub served_requests: u64,
    /// Vector lookups served by this shard.
    pub lookups: u64,
    /// Per-shard service-time distribution.
    pub service: LatencySummary,
    /// Simulated device time charged to this shard's batches.
    pub device_time: LatencySummary,
    /// Cache counters for the shard's tables.
    pub cache: CacheMetrics,
    /// Block reads issued to the shard's device replica.
    pub device_reads: u64,
    /// Micro-batches this shard served.
    pub batches: u64,
    /// Most requests this shard ever merged into one batch.
    pub largest_batch: u64,
    /// This shard's device submission accounting.
    pub depth: DepthStats,
    /// Capacity of the shard's rebased dense device in blocks — exactly
    /// the blocks its tables occupy, so occupancy is always 100% and
    /// capacity checks are per-shard.
    pub capacity_blocks: u64,
    /// Bytes written to the shard's dense device.
    pub bytes_written: u64,
    /// Cumulative full rewrites of the shard's dense device (per-shard
    /// drive-writes endurance, not diluted by other shards' blocks).
    pub drive_writes: f64,
    /// The shard worker's block-buffer pool accounting.
    pub pool: PoolStats,
}

/// A shard-per-worker serving engine over a [`BandanaStore`].
///
/// # Example
///
/// ```
/// use bandana_core::{BandanaConfig, BandanaStore};
/// use bandana_serve::{ServeConfig, ShardedEngine};
/// use bandana_trace::{EmbeddingTable, ModelSpec, TraceGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = ModelSpec::test_small();
/// let mut generator = TraceGenerator::new(&spec, 1);
/// let training = generator.generate_requests(200);
/// let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
///     .map(|t| EmbeddingTable::synthesize(
///         spec.tables[t].num_vectors, spec.dim, generator.topic_model(t), t as u64))
///     .collect();
/// let store = BandanaStore::build(
///     &spec, &embeddings, &training,
///     BandanaConfig::default().with_cache_vectors(256),
/// )?;
///
/// let engine = ShardedEngine::new(store, ServeConfig::default().with_shards(2))?;
/// let eval = generator.generate_requests(50);
/// for request in &eval.requests {
///     engine.serve(request)?;
/// }
/// let m = engine.metrics();
/// assert_eq!(m.completed, 50);
/// assert_eq!(m.lookups as usize, eval.total_lookups());
/// assert!(m.latency.p99_s >= m.latency.p50_s);
/// # Ok(())
/// # }
/// ```
pub struct ShardedEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// The metrics-bus thread (window rotation, snapshots, controllers).
    control: Option<JoinHandle<()>>,
    /// Direct command channels to the shard workers (snapshot collection,
    /// retraining); the control bus holds its own clones.
    commands: Vec<mpsc::Sender<ShardCommand>>,
}

impl ShardedEngine {
    /// Builds the engine from a store: assigns tables to shards (greedy
    /// balance on training-time lookup mass), carves each shard's tables'
    /// block ranges out of the store device ([`SparseDevice::carve`]) and
    /// rebases them onto a dense zero-based [`RebasedDevice`]
    /// (the shard's tables get matching new base blocks), then starts the
    /// worker threads (plus the tuner thread when configured).
    ///
    /// In a real deployment shards would own disjoint NVM namespaces; the
    /// carve-and-rebase gives the simulator the same shape: each shard
    /// holds memory only for its own blocks, addressed from zero, with
    /// per-shard capacity and endurance accounting
    /// ([`ShardMetrics::capacity_blocks`], [`ShardMetrics::drive_writes`])
    /// instead of counters diluted across the parent arena.
    ///
    /// # Errors
    ///
    /// Returns [`BandanaError::Config`] for a degenerate configuration or
    /// a store with no tables.
    pub fn new(store: BandanaStore, config: ServeConfig) -> Result<Self, BandanaError> {
        Self::new_with_controllers(store, config, Vec::new())
    }

    /// As [`ShardedEngine::new`], with additional custom [`Controller`]s
    /// registered on the metrics bus.
    ///
    /// The in-tree controllers configured on `config` (the tuner via
    /// [`ServeConfig::with_tuner`], the SLO controller via
    /// [`ServeConfig::with_slo_controller`]) run first each tick, in that
    /// order, followed by `controllers` in the order given. Actions are
    /// applied as each controller returns them.
    ///
    /// # Errors
    ///
    /// As [`ShardedEngine::new`].
    pub fn new_with_controllers(
        store: BandanaStore,
        config: ServeConfig,
        controllers: Vec<Box<dyn Controller>>,
    ) -> Result<Self, BandanaError> {
        let persistence = match &config.persist {
            Some(pcfg) => {
                // `new*` means cold start: the directory is opened (and a
                // corrupt WAL tail healed) but whatever state it holds is
                // deliberately not applied — use [`ShardedEngine::recover`]
                // for a warm restart.
                let (p, _opened) = Persistence::open(pcfg).map_err(persist_err)?;
                Some(Arc::new(p))
            }
            None => None,
        };
        Self::build(store, config, controllers, persistence, None)
    }

    /// Rebuilds the engine from a persist directory: replays the WAL over
    /// the latest valid snapshot, verifies the journaled table catalog
    /// against `store`, re-registers every journaled tenant (including
    /// live `POST /tenants` registrations from the previous run), and
    /// rehydrates each shard's DRAM cache, admission policy, and
    /// endurance counters *before* admission opens.
    ///
    /// `config.persist` must be set; its directory is the one to recover
    /// from. A directory with no snapshot and an empty WAL recovers to a
    /// cold start.
    ///
    /// # Errors
    ///
    /// [`BandanaError::Config`] when `config.persist` is absent, when the
    /// journaled catalog disagrees with `store` (the WAL belongs to a
    /// different store), or for the same degenerate configurations as
    /// [`ShardedEngine::new`].
    pub fn recover(store: BandanaStore, config: ServeConfig) -> Result<Self, BandanaError> {
        let pcfg = config.persist.as_ref().ok_or_else(|| {
            BandanaError::Config("recover requires ServeConfig::with_persist".into())
        })?;
        let (persistence, opened) = Persistence::open(pcfg).map_err(persist_err)?;

        // Fold the WAL into the catalog-check list and the tenant
        // registry. Replay is idempotent: catalog records dedupe by table
        // id, tenant records keep the first-seen spec.
        let mut config = config;
        let mut seen_tables: HashMap<u32, ()> = HashMap::new();
        let mut seen_tenants: HashMap<u32, ()> = HashMap::new();
        let mut replayed = 0u64;
        for record in &opened.wal.records {
            replayed += 1;
            match *record {
                WalRecord::TableCatalog {
                    table,
                    base_block,
                    num_blocks,
                    num_vectors,
                    vector_bytes,
                } => {
                    if seen_tables.insert(table, ()).is_some() {
                        continue;
                    }
                    let stored = store.table(table as usize).map_err(|_| {
                        BandanaError::Config(format!(
                            "recover: WAL catalogs table {table} which the store does not have"
                        ))
                    })?;
                    let expect = (
                        stored.base_block(),
                        stored.num_blocks(),
                        stored.num_vectors(),
                        store.vector_bytes() as u32,
                    );
                    if expect != (base_block, num_blocks, num_vectors, vector_bytes) {
                        return Err(BandanaError::Config(format!(
                            "recover: WAL catalog for table {table} disagrees with the store \
                             (journaled base={base_block} blocks={num_blocks} vectors={num_vectors} \
                             vector_bytes={vector_bytes}, store has base={} blocks={} vectors={} \
                             vector_bytes={})",
                            expect.0, expect.1, expect.2, expect.3
                        )));
                    }
                }
                WalRecord::TenantRegistered { id, weight, class, quota, slo_p99_ms } => {
                    if seen_tenants.insert(id, ()).is_some() {
                        continue;
                    }
                    // Config-time tenants win over the journal: the journal
                    // re-records them on every boot anyway.
                    if config.tenants.iter().any(|(t, _)| t.0 == id) {
                        continue;
                    }
                    let (tenant, spec) = tenant_from_record(id, weight, class, quota, slo_p99_ms);
                    config = config.with_tenant(tenant, spec);
                }
            }
        }

        let snapshot = opened.snapshot.map(|(_, data)| Arc::new(data));
        let snapshot_written_at = snapshot.as_ref().map(|s| s.written_at_ms);
        let engine = Self::build(store, config, Vec::new(), Some(Arc::new(persistence)), snapshot)?;
        engine.shared.recovery.replayed_records.store(replayed, Ordering::Relaxed);
        if let Some(ms) = snapshot_written_at {
            engine.shared.recovery.last_snapshot_unix_ms.store(ms, Ordering::Relaxed);
        }
        engine.shared.audit.push(AuditEvent {
            tick: 0,
            uptime: engine.shared.started.elapsed(),
            controller: "persist".into(),
            action: "Recover".into(),
            tenant: None,
            cause: format!(
                "replayed {replayed} WAL records over {}, rehydrated {} cache keys",
                if snapshot_written_at.is_some() { "a snapshot" } else { "no snapshot" },
                engine.shared.recovery.rehydrated_keys.load(Ordering::Relaxed),
            ),
        });
        Ok(engine)
    }

    fn build(
        store: BandanaStore,
        config: ServeConfig,
        controllers: Vec<Box<dyn Controller>>,
        persistence: Option<Arc<Persistence>>,
        recovered: Option<Arc<SnapshotData>>,
    ) -> Result<Self, BandanaError> {
        config.validate().map_err(BandanaError::Config)?;
        let parts = store.into_raw_parts();
        let num_tables = parts.tables.len();
        if num_tables == 0 {
            return Err(BandanaError::Config("store has no tables".into()));
        }
        let num_shards = config.num_shards.min(num_tables);
        let shadow_multiplier = parts.config.shadow_multiplier;

        if let Some(p) = &persistence {
            // Journal the table catalog (pre-rebase base blocks — the
            // coordinates `recover` verifies against the parent store) and
            // the config-time tenants. Replay dedupes by id, so
            // re-journaling on every boot is idempotent and keeps the WAL
            // self-contained without ever truncating it.
            for t in &parts.tables {
                p.append(&WalRecord::TableCatalog {
                    table: t.table_id() as u32,
                    base_block: t.base_block(),
                    num_blocks: t.num_blocks(),
                    num_vectors: t.num_vectors(),
                    vector_bytes: parts.vector_bytes as u32,
                })
                .map_err(persist_err)?;
            }
            for (id, spec) in &config.tenants {
                p.append(&tenant_record(*id, spec)).map_err(persist_err)?;
            }
            p.sync().map_err(persist_err)?;
        }

        // Greedy balance: heaviest table (by training lookup mass) onto the
        // lightest shard.
        let mut weights: Vec<(usize, u64)> = parts
            .tables
            .iter()
            .map(|t| {
                let freq = t.freq();
                let mass: u64 = (0..t.num_vectors()).map(|v| u64::from(freq.count(v))).sum();
                (t.table_id(), mass.max(1))
            })
            .collect();
        weights.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut shard_load = vec![0u64; num_shards];
        let mut table_shard = vec![0usize; num_tables];
        let mut shard_tables: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        for (table, mass) in weights {
            let lightest =
                (0..num_shards).min_by_key(|&s| (shard_load[s], s)).expect("at least one shard");
            shard_load[lightest] += mass;
            table_shard[table] = lightest;
            shard_tables[lightest].push(table);
        }
        for tables in &mut shard_tables {
            tables.sort_unstable();
        }

        // Harvest tuner inputs before tables move into the shard threads.
        let tuner_tables: Option<Vec<TunerTable>> = config.tuner.as_ref().map(|_| {
            parts
                .tables
                .iter()
                .map(|t| TunerTable {
                    table: t.table_id(),
                    layout: t.layout().clone(),
                    freq: t.freq().clone(),
                    cache_capacity: t.cache_capacity(),
                })
                .collect()
        });

        // Harvest the re-layout controller's view of each table's active
        // layout, also before tables move into the shard threads.
        let relayout_tables: Option<Vec<(usize, BlockLayout)>> =
            config.relayout.as_ref().map(|_| {
                let mut tables: Vec<(usize, BlockLayout)> =
                    parts.tables.iter().map(|t| (t.table_id(), t.layout().clone())).collect();
                tables.sort_unstable_by_key(|e| e.0);
                // A warm restart resumes the learned layout the snapshot
                // recorded (the shards remap onto it before rehydrating), not
                // the build-time placement.
                if let Some(snap) = recovered.as_ref() {
                    for t in &snap.tables {
                        if t.layout_order.is_empty() {
                            continue;
                        }
                        if let Some(e) = tables.iter_mut().find(|e| e.0 == t.table as usize) {
                            if let Some(layout) = checked_layout(&t.layout_order, &e.1) {
                                e.1 = layout;
                            }
                        }
                    }
                }
                tables
            });

        // The build-time DRAM partition, table-id order: seeds the live
        // partition view and, when the budget controller is on, defines
        // the fixed total budget it re-divides.
        let mut budget_tables: Vec<(usize, usize)> =
            parts.tables.iter().map(|t| (t.table_id(), t.cache_capacity())).collect();
        budget_tables.sort_unstable();
        // A warm restart resumes the learned partition the snapshot
        // recorded (the shards restore the same capacities before
        // rehydrating), not the build-time split.
        if let Some(snap) = recovered.as_ref() {
            for t in &snap.tables {
                if t.cache_capacity == 0 {
                    continue; // v1 snapshot: capacity unknown
                }
                if let Some(e) = budget_tables.iter_mut().find(|(id, _)| *id == t.table as usize) {
                    e.1 = t.cache_capacity as usize;
                }
            }
        }
        let total_budget: usize = budget_tables.iter().map(|&(_, c)| c).sum();

        // The tenant table: the default tenant always sits at index 0;
        // registering TenantId::DEFAULT overrides its spec in place.
        let window_slots = config.control.window_slots;
        let mut tenants: Vec<Arc<TenantRuntime>> = vec![Arc::new(TenantRuntime::new(
            TenantId::DEFAULT,
            TenantSpec::default(),
            window_slots,
        ))];
        for (id, spec) in &config.tenants {
            if *id == TenantId::DEFAULT {
                tenants[DEFAULT_TENANT_INDEX] =
                    Arc::new(TenantRuntime::new(*id, *spec, window_slots));
            } else {
                tenants.push(Arc::new(TenantRuntime::new(*id, *spec, window_slots)));
            }
        }
        let lanes: Vec<LaneSpec> = tenants
            .iter()
            .map(|t| LaneSpec {
                weight: u64::from(t.spec.weight),
                class: t.spec.priority_class.index(),
            })
            .collect();

        let shared = Arc::new(Shared {
            queues: (0..num_shards)
                .map(|_| WeightedQueue::new(&lanes, config.queue_capacity))
                .collect(),
            table_shard,
            shard_tables: shard_tables.clone(),
            counters: Counters::new(),
            tenants: RwLock::new(tenants),
            outstanding: AtomicU64::new(0),
            idle: (Mutex::new(()), Condvar::new()),
            shard_stats: (0..num_shards).map(|_| Mutex::new(ShardStats::default())).collect(),
            shed_policy: config.shed_policy,
            request_timeout: config.request_timeout,
            started: Instant::now(),
            window_span: config.control.window_span(),
            window_slots,
            batch_window_ns: AtomicU64::new(config.batch_window.as_nanos() as u64),
            recorder: TraceRecorder::new(config.trace, num_shards),
            cache_partition: Mutex::new(
                budget_tables
                    .iter()
                    .map(|&(table, c)| TableCachePartition {
                        table,
                        capacity_entries: c,
                        target_entries: c,
                    })
                    .collect(),
            ),
            audit: AuditLog::new(DEFAULT_AUDIT_CAPACITY),
            persistence,
            recovery: RecoveryStats::default(),
            warm_shards: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });

        // Distribute tables (and a device replica) to each shard.
        let mut table_pool: HashMap<usize, TableStore> =
            parts.tables.into_iter().map(|t| (t.table_id(), t)).collect();
        let device = parts.device;

        let (sample_tx, sample_rx) = mpsc::sync_channel::<(usize, u32)>(SAMPLE_CHANNEL_CAPACITY);
        let (budget_tx, budget_rx) = mpsc::sync_channel::<BudgetSample>(SAMPLE_CHANNEL_CAPACITY);
        let (co_tx, co_rx) = mpsc::sync_channel::<CoAccessSample>(SAMPLE_CHANNEL_CAPACITY);
        let mut command_txs: Vec<mpsc::Sender<ShardCommand>> = Vec::with_capacity(num_shards);

        // With the budget controller on, a re-partition can hand any one
        // table (hence any one shard) the whole budget, so each worker's
        // block-buffer pool must be provisioned for the total — otherwise
        // a grown cache would pin more buffers than the pool owns and the
        // steady-state zero-allocation guarantee would break.
        let pool_floor = if config.cache_budget.is_some() { total_budget } else { 0 };

        let batching = ShardBatching {
            window: config.batch_window,
            max_batch: config.max_batch,
            device_queue: config.device_queue,
        };
        let mut workers = Vec::with_capacity(num_shards);
        for (shard, owned) in shard_tables.iter().enumerate() {
            let mut tables: HashMap<usize, TableStore> = HashMap::new();
            for &t in owned {
                let table = table_pool.remove(&t).expect("table assigned once");
                tables.insert(t, table);
            }
            // Carve only the blocks this shard's tables occupy out of the
            // store device, then rebase them onto a dense zero-based
            // address space: the shard's capacity is exactly its tables'
            // blocks and endurance is charged against the shard alone.
            let ranges: Vec<(u64, u64)> =
                tables.values().map(|t| (t.base_block(), t.num_blocks())).collect();
            let device = SparseDevice::carve(&device, &ranges)
                .expect("table regions lie inside the store device")
                .rebase();
            for t in tables.values_mut() {
                if t.num_blocks() == 0 {
                    continue;
                }
                let new_base =
                    device.remap(t.base_block()).expect("table blocks were carved just above");
                t.rebase(new_base);
            }
            // This shard's slice of the recovered snapshot: its own tables'
            // warm state, plus its endurance counter when the snapshot's
            // shard count matches (table→shard assignment is deterministic,
            // so matching counts mean matching shards; a re-sharded restart
            // just drops the per-shard counters).
            let restore = recovered.as_ref().map(|snap| ShardRecovered {
                endurance_bytes: (snap.shard_endurance_bytes.len() == num_shards)
                    .then(|| snap.shard_endurance_bytes[shard]),
                tables: snap
                    .tables
                    .iter()
                    .filter(|t| owned.contains(&(t.table as usize)))
                    .cloned()
                    .collect(),
            });
            let shared = Arc::clone(&shared);
            let (cmd_tx, cmd_rx) = mpsc::channel::<ShardCommand>();
            command_txs.push(cmd_tx);
            let samples = config.tuner.as_ref().map(|t| (sample_tx.clone(), t.sample_every));
            let budget_samples =
                config.cache_budget.as_ref().map(|b| (budget_tx.clone(), b.sample_every));
            let co_samples = config.relayout.as_ref().map(|r| (co_tx.clone(), r.sample_every));
            let handle = std::thread::Builder::new()
                .name(format!("bandana-shard-{shard}"))
                .spawn(move || {
                    shard_main(
                        shard,
                        device,
                        tables,
                        shared,
                        batching,
                        cmd_rx,
                        samples,
                        budget_samples,
                        co_samples,
                        pool_floor,
                        restore,
                    )
                })
                .expect("spawn shard worker");
            workers.push(handle);
        }
        // The engine keeps no sample sender of its own: once every worker
        // exits, the channels disconnect and the controllers see
        // end-of-stream.
        drop(sample_tx);
        drop(budget_tx);
        drop(co_tx);

        // The metrics bus always runs: it rotates the recent windows and
        // snapshots the engine even when no controller is registered, so
        // windowed latencies are observable with the control loop off.
        let tuner_inputs = match (config.tuner, tuner_tables) {
            (Some(settings), Some(tables)) => {
                Some(TunerInputs { tables, settings, samples: sample_rx, shadow_multiplier })
            }
            _ => None,
        };
        let budget_inputs = config.cache_budget.map(|settings| BudgetInputs {
            tables: budget_tables,
            settings,
            samples: budget_rx,
        });
        let relayout_inputs = match (config.relayout, relayout_tables) {
            (Some(settings), Some(tables)) => {
                Some(ReLayoutInputs { tables, settings, samples: co_rx })
            }
            _ => None,
        };
        let slo = config.slo;
        let control_cfg = config.control;
        let bus_shared = Arc::clone(&shared);
        let commands = command_txs.clone();
        let control = std::thread::Builder::new()
            .name("bandana-control".into())
            .spawn(move || {
                control_main(
                    bus_shared,
                    command_txs,
                    control_cfg,
                    tuner_inputs,
                    budget_inputs,
                    relayout_inputs,
                    slo,
                    controllers,
                )
            })
            .expect("spawn control bus");

        // On a warm restart admission must not open until every shard has
        // applied its recovered cache contents: the first requests after
        // the restart are exactly the ones the snapshot exists to serve.
        if recovered.is_some() {
            while shared.warm_shards.load(Ordering::Acquire) < num_shards {
                std::thread::yield_now();
            }
        }

        Ok(ShardedEngine { shared, workers, control: Some(control), commands })
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.shared.queues.len()
    }

    /// The tables owned by each shard.
    pub fn shard_tables(&self) -> &[Vec<usize>] {
        &self.shared.shard_tables
    }

    /// The shard that owns `table`, if the table exists.
    pub fn shard_of(&self, table: usize) -> Option<usize> {
        self.shared.table_shard.get(table).copied()
    }

    /// Opens a session for a registered tenant: the handle that builds
    /// typed requests and submits them for
    /// [`ResponseTicket`](crate::ResponseTicket)s. The default tenant
    /// ([`TenantId::DEFAULT`]) always exists; other tenants must have
    /// been registered with [`ServeConfig::with_tenant`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] for an unregistered id.
    pub fn client(&self, tenant: TenantId) -> Result<Client, ServeError> {
        let index = self.shared.tenant_index(tenant).ok_or(ServeError::UnknownTenant(tenant))?;
        Ok(Client::new(Arc::clone(&self.shared), index))
    }

    /// The registered tenants, default tenant first.
    pub fn tenants(&self) -> Vec<(TenantId, TenantSpec)> {
        self.shared.tenants.read().expect("tenant lock").iter().map(|t| (t.id, t.spec)).collect()
    }

    /// Registers a tenant on a **running** engine: the admin plane's
    /// live-registration path (`POST /tenants` on the
    /// [`net::AdminServer`](crate::net::AdminServer)).
    ///
    /// A lane for the tenant is added to every shard queue first (with
    /// the engine's default per-lane capacity), then the tenant joins
    /// the registry, so concurrent snapshots never observe a tenant
    /// without its lanes. The new tenant schedules exactly like one
    /// registered at build time with
    /// [`ServeConfig::with_tenant`]; in-flight traffic is untouched.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidTenant`] if the id is already registered or
    /// the spec is invalid (zero weight), and
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn register_tenant(&self, id: TenantId, spec: TenantSpec) -> Result<(), ServeError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        spec.validate().map_err(ServeError::InvalidTenant)?;
        // Hold the write lock across the whole registration so
        // concurrent registrations cannot interleave lane/index
        // assignment, and so no reader sees lanes without the tenant or
        // vice versa.
        let mut tenants = self.shared.tenants.write().expect("tenant lock");
        if tenants.iter().any(|t| t.id == id) {
            return Err(ServeError::InvalidTenant(format!("{id} is already registered")));
        }
        // Journal the registration durably *before* the tenant becomes
        // visible: a registration acknowledged to the admin plane must
        // survive a crash. On failure nothing was registered; a torn
        // frame is healed (truncated) by the next recovery.
        if let Some(p) = &self.shared.persistence {
            p.append_durable(&tenant_record(id, &spec))
                .map_err(|e| ServeError::Persist(e.to_string()))?;
        }
        let lane = LaneSpec { weight: u64::from(spec.weight), class: spec.priority_class.index() };
        for q in &self.shared.queues {
            let index = q.add_lane(lane);
            debug_assert_eq!(index, tenants.len(), "lane index must equal tenant index");
        }
        let window_slots = self.shared.window_slots;
        tenants.push(Arc::new(TenantRuntime::new(id, spec, window_slots)));
        Ok(())
    }

    /// Submits a request without waiting for its results (open-loop mode;
    /// payloads are not retained), charged to the default tenant.
    ///
    /// With [`ShedPolicy::Block`] this blocks while a target shard queue is
    /// full; with [`ShedPolicy::DropNewest`] it returns
    /// [`ServeError::Rejected`] instead and the request counts as shed.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] on shed, [`ServeError::Store`] for unknown
    /// tables, [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, request: &Request) -> Result<(), ServeError> {
        self.shared.enqueue(request, false, DEFAULT_TENANT_INDEX, None).map(|_| ())
    }

    /// Serves a request synchronously on the default tenant: dispatches
    /// its queries to the owning shards, waits for every part, and
    /// returns the payloads in request order (`result[q][i]` is the
    /// payload of `request.queries[q].ids[i]`).
    ///
    /// Tenant-aware callers use [`ShardedEngine::client`] and the ticket
    /// API instead; this wrapper is kept for single-tenant deployments
    /// and behaves exactly as it did before tenants existed.
    ///
    /// # Errors
    ///
    /// As [`ShardedEngine::submit`], plus [`ServeError::TimedOut`] when the
    /// request missed its deadline and [`ServeError::Store`] when any id
    /// was invalid.
    pub fn serve(&self, request: &Request) -> Result<Vec<Vec<Bytes>>, ServeError> {
        let job = self.shared.enqueue(request, true, DEFAULT_TENANT_INDEX, None)?;
        crate::tenant::ResponseTicket::new(job).wait()?.into_parts()
    }

    /// Blocks until no request is in flight.
    pub fn drain(&self) {
        let (lock, cv) = &self.shared.idle;
        let mut guard = lock.lock().expect("idle lock");
        while self.shared.outstanding.load(Ordering::Acquire) > 0 {
            let (g, _) = cv.wait_timeout(guard, Duration::from_millis(20)).expect("idle lock");
            guard = g;
        }
    }

    /// A snapshot of counters, latency distributions, and per-shard
    /// breakdowns since the engine started.
    pub fn metrics(&self) -> EngineMetrics {
        let c = &self.shared.counters;
        let mut e2e = LatencyHistogram::new();
        let mut queue_wait = LatencyHistogram::new();
        let mut service = LatencyHistogram::new();
        let mut device = LatencyHistogram::new();
        let mut cache = CacheMetrics::new();
        let mut batching = BatchingMetrics::default();
        let mut pool = PoolStats::default();
        let mut per_shard = Vec::with_capacity(self.num_shards());
        for (shard, stats) in self.shared.shard_stats.iter().enumerate() {
            let s = stats.lock().expect("shard stats lock");
            e2e.merge(&s.e2e);
            queue_wait.merge(&s.queue_wait);
            service.merge(&s.service);
            device.merge(&s.device);
            cache.merge(&s.cache);
            batching.batches += s.batches;
            batching.batched_requests += s.batched_requests;
            batching.largest_batch = batching.largest_batch.max(s.largest_batch);
            batching.depth.merge(&s.depth);
            pool.merge(&s.pool);
            per_shard.push(ShardMetrics {
                shard,
                tables: self.shared.shard_tables[shard].clone(),
                served_requests: s.served_requests,
                lookups: s.lookups,
                service: s.service.summary(),
                device_time: s.device.summary(),
                cache: s.cache,
                device_reads: s.device_reads,
                batches: s.batches,
                largest_batch: s.largest_batch,
                depth: s.depth,
                capacity_blocks: s.capacity_blocks,
                bytes_written: s.bytes_written,
                drive_writes: s.drive_writes,
                pool: s.pool,
            });
        }
        let breakdown = LatencyBreakdown {
            queue_wait: queue_wait.summary(),
            device: device.summary(),
            service: service.summary(),
        };
        let per_tenant: Vec<TenantMetrics> =
            (0..self.shared.num_tenants()).map(|i| self.shared.tenant_metrics(i)).collect();
        EngineMetrics {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            outstanding: self.shared.outstanding.load(Ordering::Relaxed),
            lookups: c.lookups_served.load(Ordering::Relaxed),
            tuner_swaps: c.tuner_swaps.load(Ordering::Relaxed),
            control_ticks: c.control_ticks.load(Ordering::Relaxed),
            control_actions: c.control_actions.load(Ordering::Relaxed),
            rebudget_solves: c.rebudget_solves.load(Ordering::Relaxed),
            rebudget_applied: c.rebudget_applied.load(Ordering::Relaxed),
            relayout_solves: c.relayout_solves.load(Ordering::Relaxed),
            relayout_applied: c.relayout_applied.load(Ordering::Relaxed),
            relayout_rewritten_blocks: c.relayout_rewritten_blocks.load(Ordering::Relaxed),
            blocks_per_request_observed: f64::from_bits(
                c.relayout_observed_bpr_bits.load(Ordering::Relaxed),
            ),
            blocks_per_request_ideal: f64::from_bits(
                c.relayout_ideal_bpr_bits.load(Ordering::Relaxed),
            ),
            cache_partition: self
                .shared
                .cache_partition
                .lock()
                .expect("cache partition lock")
                .clone(),
            latency: e2e.summary(),
            queue_wait: breakdown.queue_wait,
            service: breakdown.service,
            device_time: breakdown.device,
            breakdown,
            batching,
            pool,
            e2e_histogram: e2e,
            cache,
            per_shard,
            per_tenant,
            audit: self.shared.audit.snapshot(),
            recovery: self.shared.recovery_metrics(),
        }
    }

    /// Collects the warm state from every shard and atomically installs
    /// it as the next snapshot in the persist directory, synchronously.
    /// The metrics bus does the same on its own cadence
    /// ([`PersistConfig::with_snapshot_every_ticks`]); this is the
    /// explicit trigger for tests and an orderly pre-shutdown save.
    ///
    /// # Errors
    ///
    /// [`ServeError::Persist`] when no persist directory is configured,
    /// when a shard fails to report in time, or when the install itself
    /// fails (including injected crashes).
    pub fn snapshot_now(&self) -> Result<(), ServeError> {
        let tick = self.shared.counters.control_ticks.load(Ordering::Relaxed);
        take_snapshot(&self.shared, &self.commands, tick, Duration::from_secs(5))
            .map_err(ServeError::Persist)
    }

    /// Rewrites `table`'s embeddings on its owning shard's device — the
    /// serving-path stand-in for a model retrain pushing fresh embedding
    /// values to NVM. The write is charged to the shard's endurance
    /// meter, so drive-write accounting (and its survival across a warm
    /// restart) is observable from [`ShardMetrics::bytes_written`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the table does not exist or the rows
    /// do not match the catalog; [`ServeError::ShuttingDown`] /
    /// [`ServeError::TimedOut`] when the shard is gone or unresponsive.
    pub fn retrain(&self, table: usize, embeddings: &EmbeddingTable) -> Result<(), ServeError> {
        let shard = *self.shared.table_shard.get(table).ok_or_else(|| {
            ServeError::Store(BandanaError::NoSuchTable {
                table,
                tables: self.shared.table_shard.len(),
            })
        })?;
        let (reply_tx, reply_rx) = mpsc::channel();
        self.commands[shard]
            .send(ShardCommand::Retrain {
                table,
                embeddings: Arc::new(embeddings.clone()),
                reply: reply_tx,
            })
            .map_err(|_| ServeError::ShuttingDown)?;
        match reply_rx.recv_timeout(Duration::from_secs(30)) {
            Ok(result) => result.map_err(ServeError::Store),
            Err(_) => Err(ServeError::TimedOut),
        }
    }

    /// The control plane's current view of the engine: per-shard lane
    /// depths, batching and device-queue statistics, and per-tenant
    /// recent-window latency and shed counters — exactly what registered
    /// [`Controller`]s observe each bus tick.
    pub fn snapshot(&self) -> EngineSnapshot {
        self.shared.snapshot(self.shared.counters.control_ticks.load(Ordering::Relaxed))
    }

    /// Renders every retained flight-recorder event as Chrome
    /// trace-event JSON, loadable in Perfetto or `chrome://tracing`.
    /// Empty (`{"traceEvents":[]}`) unless tracing was enabled with
    /// [`ServeConfig::with_trace`].
    pub fn dump_trace(&self) -> String {
        self.shared.recorder.dump_chrome_trace()
    }

    /// The retained flight-recorder events grouped into one
    /// [`RequestTrace`] per sampled request, ordered by trace id — the
    /// structured form of [`ShardedEngine::dump_trace`], for tests and
    /// tooling.
    pub fn request_traces(&self) -> Vec<RequestTrace> {
        self.shared.recorder.request_traces()
    }

    /// Stops accepting work, drains in-flight requests, joins every
    /// thread, and returns the final metrics.
    pub fn shutdown(mut self) -> EngineMetrics {
        self.begin_shutdown();
        // The control bus goes first (it exits within one tick of the
        // shutdown flag): otherwise its final tick races the workers'
        // exit and flushes controller actions into already-closed
        // command channels.
        if let Some(t) = self.control.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.metrics()
    }

    fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for q in &self.shared.queues {
            q.close();
        }
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        self.begin_shutdown();
        // Same join order as `shutdown`: bus first, then workers.
        if let Some(t) = self.control.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Classifies a finished job, completes waiters, and releases the
/// in-flight slots (engine-wide and per-tenant).
fn finalize_job(shared: &Shared, job: &Job, finishing_shard: Option<usize>) {
    let cancelled = job.cancelled.load(Ordering::Acquire);
    let timed_out = job.timed_out.load(Ordering::Acquire);
    let e2e = job.arrival.elapsed();
    let rt = shared.tenant(job.tenant);
    let had_error = job.state.lock().expect("job lock").error.is_some();
    // Classify and record BEFORE waking waiters: a caller returning from
    // `serve` must observe its own request in the counters. Shed and
    // timeout were counted when flagged; the rest is counted here so every
    // request lands in exactly one bucket.
    if !cancelled && !timed_out {
        if had_error {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            rt.failed.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            rt.completed.fetch_add(1, Ordering::Relaxed);
            if let Some(shard) = finishing_shard {
                let mut stats = shared.shard_stats[shard].lock().expect("shard stats lock");
                stats.e2e.record(e2e);
            }
            rt.e2e.lock().expect("tenant histogram lock").record(e2e);
            rt.recent.lock().expect("tenant window lock").record(e2e);
        }
    }
    // Flight recorder: the single terminal event per sampled request is
    // recorded here — `finalize_job` runs exactly once per job-backed
    // request, so the one-terminal invariant holds by construction.
    if job.trace != 0 {
        let kind = if timed_out {
            TraceEventKind::TimedOut
        } else if cancelled {
            TraceEventKind::Shed
        } else {
            TraceEventKind::Completed
        };
        let shard = finishing_shard.unwrap_or(0);
        shared.recorder.record(
            shard,
            TraceEvent {
                request: job.trace,
                kind,
                at_ns: shared.now_ns(),
                dur_ns: e2e.as_nanos() as u64,
                shard: shard as u32,
                tenant: job.tenant as u32,
                batch: 0,
            },
        );
    }
    // Release the tenant's in-flight slot BEFORE waking waiters: a
    // quota-limited caller resubmitting the instant its wait returns
    // must find its slot free, never a phantom QuotaExceeded.
    rt.outstanding.fetch_sub(1, Ordering::AcqRel);
    {
        let mut st = job.state.lock().expect("job lock");
        st.e2e = e2e;
        st.done = true;
    }
    job.done_cv.notify_all();
    if shared.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
        let (_lock, cv) = &shared.idle;
        cv.notify_all();
    }
}

/// The per-worker slice of the batching configuration.
#[derive(Debug, Clone, Copy)]
struct ShardBatching {
    window: Duration,
    max_batch: usize,
    device_queue: Option<u32>,
}

/// Everything the control thread needs to build the tuner controller:
/// owned per-table inputs (the [`OnlineTuner`](bandana_core::OnlineTuner)s
/// borrow them for the thread's lifetime) plus the shard sample channel.
struct TunerInputs {
    tables: Vec<TunerTable>,
    settings: OnlineTunerSettings,
    samples: mpsc::Receiver<(usize, u32)>,
    shadow_multiplier: f64,
}

/// The metrics-bus thread: the engine's single control loop.
///
/// Every `tick` it (1) rotates the per-tenant recent windows on the
/// window-slot cadence, (2) assembles an [`EngineSnapshot`], and (3) runs
/// each registered controller over it, applying returned [`Action`]s
/// through the shard command channels and shared admission state. The
/// in-tree tuner and SLO controllers are constructed here — the tuner's
/// [`OnlineTuner`](bandana_core::OnlineTuner)s borrow their per-table
/// inputs from this stack frame — ahead of any caller-supplied
/// controllers.
#[allow(clippy::too_many_arguments)]
fn control_main(
    shared: Arc<Shared>,
    commands: Vec<mpsc::Sender<ShardCommand>>,
    config: ControlConfig,
    tuner: Option<TunerInputs>,
    budget: Option<BudgetInputs>,
    relayout: Option<ReLayoutInputs>,
    slo: Option<SloControllerConfig>,
    extra: Vec<Box<dyn Controller>>,
) {
    // Destructure first so the tables outlive (and can be borrowed by)
    // the tuner controller while the receiver moves into it.
    let (tuner_tables, tuner_rest) = match tuner {
        Some(t) => (t.tables, Some((t.settings, t.samples, t.shadow_multiplier))),
        None => (Vec::new(), None),
    };
    let mut controllers: Vec<Box<dyn Controller + '_>> = Vec::new();
    if let Some((settings, samples, shadow_multiplier)) = tuner_rest {
        controllers.push(Box::new(TunerController::new(
            &tuner_tables,
            &settings,
            samples,
            shadow_multiplier,
        )));
    }
    if let Some(inputs) = budget {
        // Like the tuner, the budget controller borrows from this stack
        // frame: the shared re-solve counter and partition view it
        // publishes into live inside `shared`, which outlives the loop.
        controllers.push(Box::new(CacheBudgetController::new(
            inputs,
            &shared.counters.rebudget_solves,
            &shared.cache_partition,
        )));
    }
    if let Some(inputs) = relayout {
        // Borrows the solve counter and blocks-per-request gauge cells
        // from `shared`, like the budget controller above.
        controllers.push(Box::new(ReLayoutController::new(
            inputs,
            &shared.counters.relayout_solves,
            &shared.counters.relayout_observed_bpr_bits,
            &shared.counters.relayout_ideal_bpr_bits,
        )));
    }
    if let Some(slo_config) = slo {
        controllers.push(Box::new(SloController::new(slo_config)));
    }
    for c in extra {
        controllers.push(c);
    }

    let snapshot_every =
        shared.persistence.as_ref().map(|p| p.snapshot_every_ticks()).filter(|&n| n > 0);
    let mut tick = 0u64;
    let mut next_rotation = Instant::now() + config.window_slot;
    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(config.tick);
        // Rotate on the slot cadence, catching up if a tick overslept a
        // slot boundary (each tenant window advances the same number of
        // slots, so shard-merged windows stay recency-aligned).
        let now = Instant::now();
        while now >= next_rotation {
            shared.rotate_windows();
            next_rotation += config.window_slot;
        }
        let snapshot = shared.snapshot(tick);
        for controller in &mut controllers {
            for action in controller.observe(&snapshot) {
                // Audit before applying: the event captures the action
                // alongside the snapshot evidence the controller saw,
                // and `apply_action` consumes the action.
                shared.audit.push(AuditEvent::from_action(controller.name(), &action, &snapshot));
                shared.apply_action(&commands, action);
            }
        }
        tick += 1;
        shared.counters.control_ticks.fetch_add(1, Ordering::Relaxed);
        // Periodic snapshots ride the same bus tick as the controllers.
        // Failures (including injected crashes) are non-fatal here: the
        // previous installed snapshot stays authoritative and the next
        // cadence tick retries.
        if let Some(every) = snapshot_every {
            if tick.is_multiple_of(every) {
                let _ = take_snapshot(&shared, &commands, tick, Duration::from_millis(500));
            }
        }
    }
}

/// Collects every shard's warm state and installs it as the next
/// snapshot. Used by both the metrics bus (periodic cadence) and
/// [`ShardedEngine::snapshot_now`]. `wait` bounds how long each shard
/// gets to reply — a shard that has already exited (shutdown race) makes
/// the collection fail cleanly rather than hang.
fn take_snapshot(
    shared: &Arc<Shared>,
    commands: &[mpsc::Sender<ShardCommand>],
    tick: u64,
    wait: Duration,
) -> Result<(), String> {
    let Some(persistence) = shared.persistence.as_ref() else {
        return Err("no persist directory configured".into());
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut expected = 0usize;
    for tx in commands {
        if tx.send(ShardCommand::CollectSnapshot { reply: reply_tx.clone() }).is_ok() {
            expected += 1;
        }
    }
    drop(reply_tx);
    if expected < commands.len() {
        return Err("a shard worker has already exited".into());
    }
    let mut parts = Vec::with_capacity(expected);
    for _ in 0..expected {
        match reply_rx.recv_timeout(wait) {
            Ok(p) => parts.push(p),
            Err(_) => return Err("timed out collecting shard state for snapshot".into()),
        }
    }
    let mut shard_endurance_bytes = vec![0u64; parts.len()];
    let mut tables = Vec::new();
    for p in parts {
        shard_endurance_bytes[p.shard] = p.endurance_bytes;
        tables.extend(p.tables);
    }
    tables.sort_by_key(|t| t.table);
    let key_count: usize = tables.iter().map(|t| t.keys.len()).sum();
    let data = SnapshotData { written_at_ms: unix_ms_now(), tick, shard_endurance_bytes, tables };
    let path = persistence.install_snapshot(&data).map_err(|e| e.to_string())?;
    shared.recovery.snapshots_installed.fetch_add(1, Ordering::Relaxed);
    shared.recovery.last_snapshot_unix_ms.store(data.written_at_ms, Ordering::Relaxed);
    shared.audit.push(AuditEvent {
        tick,
        uptime: shared.started.elapsed(),
        controller: "persist".into(),
        action: format!("InstallSnapshot {{ path: {:?} }}", path),
        tenant: None,
        cause: format!("{} tables, {key_count} cache keys", data.tables.len()),
    });
    Ok(())
}

/// One part routed into a [`MergedTable`]: which job and part it came
/// from, and where its merged-position list lives in
/// [`MergedTable::positions`].
#[derive(Debug, Clone, Copy)]
struct RoutedPart {
    /// Index into the micro-batch's job slice.
    job: usize,
    /// Index into that job's parts for this shard.
    part: usize,
    /// Start of this part's run inside [`MergedTable::positions`].
    pos_start: usize,
    /// Length of the run (== the part's `unique_ids` length).
    pos_len: usize,
}

/// One table's deduplicated id set merged across every request in a
/// micro-batch, plus the scatter plan back to the routed parts.
#[derive(Debug, Default)]
struct MergedTable {
    ids: Vec<u32>,
    index_of: HashMap<u32, usize>,
    /// The parts merged into `ids` this batch.
    parts: Vec<RoutedPart>,
    /// Concatenated per-part indices into `ids` (one run per part; a
    /// part's unique id `u` resolves to `ids[positions[pos_start + u]]`).
    positions: Vec<usize>,
}

impl MergedTable {
    /// Clears the batch's contents, keeping every buffer's capacity.
    fn reset(&mut self) {
        self.ids.clear();
        self.index_of.clear();
        self.parts.clear();
        self.positions.clear();
    }
}

/// The cross-request merge state a shard worker reuses across
/// micro-batches: per-table merged id sets keyed by table id. Entries
/// persist for the worker's lifetime (bounded by the tables the shard
/// owns), so the maps, id vectors, and scatter plans are warm after the
/// first batch touching each table.
#[derive(Debug, Default)]
struct MergeScratch {
    tables: BTreeMap<usize, MergedTable>,
}

impl MergeScratch {
    fn reset(&mut self) {
        for m in self.tables.values_mut() {
            m.reset();
        }
    }
}

/// Lets `duration` of simulated device time actually elapse: coarse sleep
/// while far out, fine-wait close in (charged times are µs-scale, well
/// below sleep granularity). The fine wait yields the core instead of
/// spinning: a real NVM read blocks the issuing context without burning
/// CPU, so while a shard "waits on the device" the other threads — peer
/// shards, the submitters, the metrics bus — must be able to run. (On a
/// single-core host a spinning worker would starve exactly the control
/// loop that is supposed to observe this congestion.) The charge remains
/// wall-clock-true: at least `duration` elapses before return.
fn charge_wall_clock(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let end = Instant::now() + duration;
    loop {
        let now = Instant::now();
        if now >= end {
            return;
        }
        if end - now > Duration::from_millis(2) {
            std::thread::sleep(end - now - Duration::from_millis(1));
        } else {
            std::thread::yield_now();
        }
    }
}

/// The reusable per-worker serving state: the shard's dense device and
/// tables plus every piece of steady-state scratch — the cross-request
/// merge maps, the batch scratch, and the block-buffer pool. One of these
/// lives for the worker's lifetime so the hot loop allocates nothing
/// after warmup.
struct ShardWorker {
    device: RebasedDevice,
    tables: HashMap<usize, TableStore>,
    merge: MergeScratch,
    scratch: BatchScratch,
    pool: BlockBufPool,
}

/// The shard worker: drains its queue in micro-batches, applies tuner
/// commands between batches, and charges device reads through the queue
/// model when one is configured.
/// Validates a proposed placement order against the running `current`
/// layout and materializes it. `None` when the order is not a
/// permutation of the table's vector ids — [`BlockLayout::from_order`]
/// panics on malformed input, and a stale controller or a corrupt
/// snapshot must degrade to "keep the current layout", never take down
/// a shard worker.
fn checked_layout(order: &[u32], current: &BlockLayout) -> Option<BlockLayout> {
    let n = current.num_vectors();
    if order.len() != n as usize {
        return None;
    }
    let mut seen = vec![false; n as usize];
    for &v in order {
        if v >= n || std::mem::replace(&mut seen[v as usize], true) {
            return None;
        }
    }
    Some(BlockLayout::from_order(order.to_vec(), current.vectors_per_block()))
}

#[allow(clippy::too_many_arguments)]
fn shard_main(
    shard: usize,
    device: RebasedDevice,
    tables: HashMap<usize, TableStore>,
    shared: Arc<Shared>,
    mut batching: ShardBatching,
    commands: mpsc::Receiver<ShardCommand>,
    samples: Option<(mpsc::SyncSender<(usize, u32)>, u32)>,
    budget_samples: Option<(mpsc::SyncSender<BudgetSample>, u32)>,
    co_samples: Option<(mpsc::SyncSender<CoAccessSample>, u32)>,
    pool_floor: usize,
    recovered: Option<ShardRecovered>,
) {
    let mut sample_tick: u32 = 0;
    let mut budget_tick: u32 = 0;
    let mut co_tick: u32 = 0;
    let mut co_seq: u64 = 0;
    let mut batch_seq: u64 = 0;
    let mut tracker =
        batching.device_queue.map(|d| QueueDepthTracker::new(*device.queue_model(), d));
    // The shard's capacity is static: report it before serving begins so
    // metrics show per-shard capacity even for an idle shard.
    shared.shard_stats[shard].lock().expect("shard stats lock").capacity_blocks =
        device.capacity_blocks();
    // Pool retention scales with the shard's cache: a cached payload can
    // pin its block buffer until eviction, and a dropped pool slot is a
    // lost reuse. `pool_floor` raises the sizing to the engine-wide
    // budget when the cache budget controller is on — a re-partition can
    // grow any of this shard's tables well past its build-time share.
    let cached_entries: usize =
        tables.values().map(|t| t.cache_capacity()).sum::<usize>().max(pool_floor);
    let mut worker = ShardWorker {
        device,
        tables,
        merge: MergeScratch::default(),
        scratch: BatchScratch::new(),
        pool: BlockBufPool::for_cache(cached_entries),
    };
    // Warm restart: apply the recovered snapshot slice before touching
    // the queue, then report readiness — the builder holds admission
    // closed until every shard has flipped `warm_shards`. Rehydration
    // reads blocks through the worker's own pool but never the metrics:
    // recovery I/O is not traffic, and restored endurance is separate.
    if let Some(restore) = recovered {
        if let Some(bytes) = restore.endurance_bytes {
            worker.device.restore_endurance(bytes);
        }
        let mut rehydrated = 0usize;
        for snap in &restore.tables {
            let Some(t) = worker.tables.get_mut(&(snap.table as usize)) else { continue };
            // Remap onto the learned layout the snapshot recorded (v3+)
            // before anything reads blocks, so rehydration and serving
            // both see vectors where the re-layout controller left them.
            // The rewrite is real recovery I/O charged to endurance, but
            // not to the relayout counters — it is not live traffic.
            if !snap.layout_order.is_empty() {
                if let Some(layout) = checked_layout(&snap.layout_order, t.layout()) {
                    let _ = t.apply_layout(&mut worker.device, layout);
                }
            }
            t.set_policy(snap.policy, snap.shadow_multiplier);
            // Restore the learned DRAM partition before rehydrating, so
            // the cache refills to the capacity it actually ran with
            // (0 = a v1 snapshot with no capacity recorded).
            if snap.cache_capacity > 0 {
                t.set_cache_capacity(snap.cache_capacity as usize);
            }
            let entries: Vec<(u32, bool)> =
                snap.keys.iter().map(|&(id, o)| (id, o == KeyOrigin::Demand)).collect();
            match t.rehydrate(&mut worker.device, &entries) {
                Ok(n) => rehydrated += n,
                // A block-read failure leaves the cache partially warm;
                // serving correctness is unaffected.
                Err(_) => continue,
            }
        }
        shared.recovery.rehydrated_keys.fetch_add(rehydrated as u64, Ordering::Relaxed);
        let endurance = worker.device.endurance();
        let mut stats = shared.shard_stats[shard].lock().expect("shard stats lock");
        stats.bytes_written = endurance.bytes_written();
        stats.drive_writes = endurance.drive_writes();
    }
    shared.warm_shards.fetch_add(1, Ordering::Release);
    loop {
        while let Ok(cmd) = commands.try_recv() {
            match cmd {
                ShardCommand::SetPolicy { table, policy, shadow_multiplier } => {
                    if let Some(t) = worker.tables.get_mut(&table) {
                        t.set_policy(policy, shadow_multiplier);
                    }
                }
                ShardCommand::SetBatchWindow { window } => {
                    batching.window = window;
                }
                ShardCommand::SetCachePartition { table, entries } => {
                    if let Some(t) = worker.tables.get_mut(&table) {
                        t.set_cache_capacity(entries);
                    }
                }
                ShardCommand::CollectSnapshot { reply } => {
                    let mut table_snaps: Vec<TableSnapshot> = worker
                        .tables
                        .values()
                        .map(|t| TableSnapshot {
                            table: t.table_id() as u32,
                            policy: t.policy(),
                            shadow_multiplier: t.shadow_multiplier(),
                            cache_capacity: t.cache_capacity() as u32,
                            // Only a layout the re-layout loop actually
                            // changed is journaled; an empty order means
                            // "the build-time layout" on recovery.
                            layout_order: if t.layout_epoch() > 0 {
                                t.layout().order().to_vec()
                            } else {
                                Vec::new()
                            },
                            keys: t
                                .cache_snapshot()
                                .into_iter()
                                .map(|(id, demand)| {
                                    (
                                        id,
                                        if demand {
                                            KeyOrigin::Demand
                                        } else {
                                            KeyOrigin::Prefetch
                                        },
                                    )
                                })
                                .collect(),
                        })
                        .collect();
                    table_snaps.sort_by_key(|t| t.table);
                    let _ = reply.send(ShardSnapshotParts {
                        shard,
                        endurance_bytes: worker.device.endurance().bytes_written(),
                        tables: table_snaps,
                    });
                }
                ShardCommand::Retrain { table, embeddings, reply } => {
                    let ShardWorker { device, tables, .. } = &mut worker;
                    let result = match tables.get_mut(&table) {
                        Some(t) => t.write_embeddings(device, &embeddings),
                        None => Err(BandanaError::NoSuchTable {
                            table,
                            tables: shared.table_shard.len(),
                        }),
                    };
                    if result.is_ok() {
                        let endurance = worker.device.endurance();
                        let counters = worker.device.counters();
                        let mut stats = shared.shard_stats[shard].lock().expect("shard stats lock");
                        stats.bytes_written = endurance.bytes_written();
                        stats.drive_writes = endurance.drive_writes();
                        stats.device_reads = counters.reads;
                    }
                    let _ = reply.send(result);
                }
                ShardCommand::ApplyLayout { table, order } => {
                    let ShardWorker { device, tables, .. } = &mut worker;
                    let Some(t) = tables.get_mut(&table) else { continue };
                    // Validate against the *running* layout: a stale or
                    // malformed order (engine restarted, table re-sized)
                    // is dropped rather than panicking the worker.
                    let Some(layout) = checked_layout(&order, t.layout()) else { continue };
                    if let Ok(rewritten) = t.apply_layout(device, layout) {
                        shared
                            .counters
                            .relayout_rewritten_blocks
                            .fetch_add(rewritten, Ordering::Relaxed);
                        let endurance = worker.device.endurance();
                        let counters = worker.device.counters();
                        let mut stats = shared.shard_stats[shard].lock().expect("shard stats lock");
                        stats.bytes_written = endurance.bytes_written();
                        stats.drive_writes = endurance.drive_writes();
                        stats.device_reads = counters.reads;
                    }
                }
            }
        }
        let jobs =
            match shared.queues[shard].pop_batch(IDLE_POLL, batching.window, batching.max_batch) {
                Pop::Item(jobs) => jobs,
                Pop::Empty => continue,
                Pop::Closed => break,
            };
        batch_seq += 1;
        process_batch(
            shard,
            &jobs,
            &mut worker,
            &shared,
            &mut tracker,
            samples.as_ref(),
            &mut sample_tick,
            budget_samples.as_ref(),
            &mut budget_tick,
            co_samples.as_ref(),
            &mut co_tick,
            &mut co_seq,
            batch_seq,
        );
    }
}

/// Serves one micro-batch: merges the queued requests' lookups into one
/// deduplicated `lookup_batch` per table, submits the resulting block
/// reads through the depth tracker, and scatters payloads back so a
/// single batched device read can complete many requests — each exactly
/// once. All working state (merge maps, batch scratch, buffer pool) is
/// reused from the [`ShardWorker`] across batches.
#[allow(clippy::too_many_arguments)]
fn process_batch(
    shard: usize,
    jobs: &[Arc<Job>],
    worker: &mut ShardWorker,
    shared: &Arc<Shared>,
    tracker: &mut Option<QueueDepthTracker>,
    samples: Option<&(mpsc::SyncSender<(usize, u32)>, u32)>,
    sample_tick: &mut u32,
    budget_samples: Option<&(mpsc::SyncSender<BudgetSample>, u32)>,
    budget_tick: &mut u32,
    co_samples: Option<&(mpsc::SyncSender<CoAccessSample>, u32)>,
    co_tick: &mut u32,
    co_seq: &mut u64,
    batch_seq: u64,
) {
    let started = Instant::now();
    // Flight recorder: each sampled request's drain into this
    // micro-batch, stamped with the shard's batch sequence number.
    for job in jobs {
        if job.trace != 0 {
            shared.recorder.record(
                shard,
                TraceEvent {
                    request: job.trace,
                    kind: TraceEventKind::BatchDrained,
                    at_ns: shared.now_ns(),
                    dur_ns: 0,
                    shard: shard as u32,
                    tenant: job.tenant as u32,
                    batch: batch_seq,
                },
            );
        }
    }
    let ShardWorker { device, tables, merge, scratch, pool } = worker;

    // Decide, per job, whether this batch serves it.
    let mut serve: Vec<bool> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let mut serves = !job.cancelled.load(Ordering::Acquire);
        if serves {
            if let Some(deadline) = job.deadline {
                if started > deadline {
                    if !job.timed_out.swap(true, Ordering::AcqRel) {
                        shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                        shared.tenant(job.tenant).timed_out.fetch_add(1, Ordering::Relaxed);
                    }
                    serves = false;
                }
            }
        }
        serve.push(serves);
    }

    // Merge lookups across requests: one deduplicated id list per table,
    // built in the worker's persistent per-table maps. Ids are validated
    // here so one request's bad id fails that request alone, never the
    // whole merged submission; each part records where its unique ids
    // landed in the merged list (a run inside `positions`).
    merge.reset();
    for (ji, job) in jobs.iter().enumerate() {
        if !serve[ji] {
            continue;
        }
        for (pi, part) in job.parts_by_shard[shard].iter().enumerate() {
            let table =
                tables.get(&part.table).expect("dispatcher routes queries to the owning shard");
            if let Some(&bad) = part.unique_ids.iter().find(|&&v| v >= table.num_vectors()) {
                let mut st = job.state.lock().expect("job lock");
                if st.error.is_none() {
                    st.error = Some(BandanaError::NoSuchVector {
                        table: part.table,
                        vector: bad,
                        vectors: table.num_vectors(),
                    });
                }
                continue;
            }
            let m = merge.tables.entry(part.table).or_default();
            let pos_start = m.positions.len();
            for &v in &part.unique_ids {
                let next = m.ids.len();
                let idx = *m.index_of.entry(v).or_insert(next);
                if idx == next {
                    m.ids.push(v);
                }
                m.positions.push(idx);
            }
            m.parts.push(RoutedPart {
                job: ji,
                part: pi,
                pos_start,
                pos_len: part.unique_ids.len(),
            });
        }
    }

    // One submission per table, scattered back to its routed parts before
    // the scratch is reused by the next table; count the block reads the
    // whole merged batch actually cost.
    let reads_before = device.counters().reads;
    let mut local_lookups = 0u64;
    for (&t, m) in &merge.tables {
        if m.parts.is_empty() {
            continue;
        }
        let table = tables.get_mut(&t).expect("merged tables are owned by this shard");
        match table.lookup_batch_with(device, &m.ids, scratch, pool) {
            Ok(()) => {
                let payloads = scratch.out();
                for rp in &m.parts {
                    let job = &jobs[rp.job];
                    let part = &job.parts_by_shard[shard][rp.part];
                    local_lookups += part.expand.len() as u64;
                    if let Some((tx, every)) = samples {
                        for &v in &part.unique_ids {
                            *sample_tick = sample_tick.wrapping_add(1);
                            if sample_tick.is_multiple_of((*every).max(1)) {
                                let _ = tx.try_send((part.table, v));
                            }
                        }
                    }
                    // Budget tap: same lossy temporal stride, but tagged
                    // with the requesting tenant so the controller can
                    // weight each table's demand by tenant class.
                    if let Some((tx, every)) = budget_samples {
                        for &v in &part.unique_ids {
                            *budget_tick = budget_tick.wrapping_add(1);
                            if budget_tick.is_multiple_of((*every).max(1)) {
                                let _ = tx.try_send((part.table, v, job.tenant as u32));
                            }
                        }
                    }
                    // Co-access tap: whole parts, one in `every` — the
                    // re-layout controller needs each request's *set* of
                    // ids intact, so sampling strides over parts, never
                    // within one. The group token (per-shard sequence in
                    // the high bits, shard in the low byte) lets the bus
                    // stitch a part back together across drains; sends
                    // stay lossy (`try_send`) and allocation-free — the
                    // bounded channel's ring is preallocated.
                    if let Some((tx, every)) = co_samples {
                        if part.unique_ids.len() > 1 {
                            *co_tick = co_tick.wrapping_add(1);
                            if co_tick.is_multiple_of((*every).max(1)) {
                                *co_seq += 1;
                                let group = (*co_seq << 8) | shard as u64;
                                for &v in &part.unique_ids {
                                    let _ = tx.try_send((part.table, v, group));
                                }
                            }
                        }
                    }
                    if job.want_payloads {
                        let positions = &m.positions[rp.pos_start..rp.pos_start + rp.pos_len];
                        let expanded: Vec<Bytes> =
                            part.expand.iter().map(|&u| payloads[positions[u]].clone()).collect();
                        let mut st = job.state.lock().expect("job lock");
                        st.results[part.query_index] = Some(expanded);
                    }
                }
            }
            Err(e) => {
                for rp in &m.parts {
                    let mut st = jobs[rp.job].state.lock().expect("job lock");
                    if st.error.is_none() {
                        st.error = Some(e.clone());
                    }
                }
            }
        }
    }
    let batch_reads = device.counters().reads - reads_before;

    // Charge the reads through the bounded-depth queue model and let the
    // simulated device time actually pass, so downstream requests queue
    // behind it exactly as they would behind real NVM.
    let mut device_s = 0.0;
    if let Some(tracker) = tracker.as_mut() {
        if batch_reads > 0 {
            let submitted_ns = shared.now_ns();
            device_s = tracker.charge_batch(batch_reads);
            charge_wall_clock(Duration::from_secs_f64(device_s));
            // Flight recorder: the batch's device span, per sampled
            // served request (submit spans the charged device time;
            // complete marks its end).
            let device_ns = Duration::from_secs_f64(device_s).as_nanos() as u64;
            for (ji, job) in jobs.iter().enumerate() {
                if !serve[ji] || job.trace == 0 {
                    continue;
                }
                shared.recorder.record(
                    shard,
                    TraceEvent {
                        request: job.trace,
                        kind: TraceEventKind::DeviceSubmit,
                        at_ns: submitted_ns,
                        dur_ns: device_ns,
                        shard: shard as u32,
                        tenant: job.tenant as u32,
                        batch: batch_seq,
                    },
                );
                shared.recorder.record(
                    shard,
                    TraceEvent {
                        request: job.trace,
                        kind: TraceEventKind::DeviceComplete,
                        at_ns: submitted_ns.saturating_add(device_ns),
                        dur_ns: 0,
                        shard: shard as u32,
                        tenant: job.tenant as u32,
                        batch: batch_seq,
                    },
                );
            }
        }
    }

    let served = serve.iter().filter(|&&s| s).count() as u64;
    if served > 0 {
        shared.counters.lookups_served.fetch_add(local_lookups, Ordering::Relaxed);
        let service_elapsed = started.elapsed();
        // Fold this shard's contribution into each job's per-request
        // breakdown (the slowest involved shard wins), outside the shard
        // stats lock.
        for (ji, job) in jobs.iter().enumerate() {
            if !serve[ji] {
                continue;
            }
            let queue_wait = started.saturating_duration_since(job.arrival);
            let mut st = job.state.lock().expect("job lock");
            st.queue_wait = st.queue_wait.max(queue_wait);
            st.service = st.service.max(service_elapsed);
            if device_s > st.device_s {
                st.device_s = device_s;
            }
        }
        let mut stats = shared.shard_stats[shard].lock().expect("shard stats lock");
        stats.batches += 1;
        stats.batched_requests += served;
        stats.largest_batch = stats.largest_batch.max(served);
        stats.lookups += local_lookups;
        for (ji, job) in jobs.iter().enumerate() {
            if !serve[ji] {
                continue;
            }
            stats.served_requests += 1;
            stats.queue_wait.record(started.saturating_duration_since(job.arrival));
            stats.service.record(service_elapsed);
            stats.device.record_secs(device_s);
        }
        if let Some(t) = tracker.as_ref() {
            stats.depth = t.stats();
        }
        let mut cache = CacheMetrics::new();
        for t in tables.values() {
            cache.merge(t.metrics());
        }
        stats.cache = cache;
        stats.device_reads = device.counters().reads;
        stats.capacity_blocks = device.capacity_blocks();
        stats.bytes_written = device.endurance().bytes_written();
        stats.drive_writes = device.endurance().drive_writes();
        stats.pool = pool.stats();
    }

    // Complete every job in the batch exactly once for this shard.
    for job in jobs {
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            finalize_job(shared, job, Some(shard));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bandana_core::BandanaConfig;
    use bandana_trace::{EmbeddingTable, ModelSpec, TableQuery, TraceGenerator};

    fn build_store(seed: u64) -> (BandanaStore, TraceGenerator) {
        let spec = ModelSpec::test_small();
        let mut generator = TraceGenerator::new(&spec, seed);
        let training = generator.generate_requests(200);
        let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
            .map(|t| {
                EmbeddingTable::synthesize(
                    spec.tables[t].num_vectors,
                    spec.dim,
                    generator.topic_model(t),
                    t as u64,
                )
            })
            .collect();
        let store = BandanaStore::build(
            &spec,
            &embeddings,
            &training,
            BandanaConfig::default().with_cache_vectors(256),
        )
        .expect("build store");
        (store, generator)
    }

    #[test]
    fn shards_own_disjoint_tables_covering_the_store() {
        let (store, _) = build_store(1);
        let tables = store.num_tables();
        let engine =
            ShardedEngine::new(store, ServeConfig::default().with_shards(2)).expect("engine");
        let mut seen = std::collections::HashSet::new();
        for shard in engine.shard_tables() {
            for &t in shard {
                assert!(seen.insert(t), "table {t} owned by two shards");
            }
        }
        assert_eq!(seen.len(), tables);
    }

    #[test]
    fn serve_returns_correct_payloads_with_duplicates_coalesced() {
        let (store, _) = build_store(2);
        let mut reference = {
            let (s, _) = build_store(2);
            s
        };
        let engine =
            ShardedEngine::new(store, ServeConfig::default().with_shards(2)).expect("engine");
        let request = Request {
            queries: vec![
                TableQuery::new(0, vec![3, 7, 3, 9, 7]),
                TableQuery::new(1, vec![11, 11]),
            ],
        };
        let results = engine.serve(&request).expect("serve");
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].len(), 5);
        assert_eq!(results[1].len(), 2);
        for (q, query) in request.queries.iter().enumerate() {
            for (i, &v) in query.ids.iter().enumerate() {
                let expected = reference.lookup(query.table, v).expect("reference lookup");
                assert_eq!(
                    results[q][i].as_ref(),
                    expected.as_ref(),
                    "table {} id {v}",
                    query.table
                );
            }
        }
        // Duplicates count as lookups served but share the cache probe.
        let m = engine.metrics();
        assert_eq!(m.lookups, 7);
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn unknown_table_is_rejected_up_front() {
        let (store, _) = build_store(3);
        let engine = ShardedEngine::new(store, ServeConfig::default()).expect("engine");
        let request = Request { queries: vec![TableQuery::new(99, vec![0])] };
        match engine.serve(&request) {
            Err(ServeError::Store(BandanaError::NoSuchTable { table: 99, .. })) => {}
            other => panic!("expected NoSuchTable, got {other:?}"),
        }
        assert_eq!(engine.metrics().failed, 0, "rejected before submission");
    }

    #[test]
    fn invalid_vector_counts_as_failed() {
        let (store, _) = build_store(4);
        let engine = ShardedEngine::new(store, ServeConfig::default()).expect("engine");
        let request = Request { queries: vec![TableQuery::new(0, vec![u32::MAX])] };
        match engine.serve(&request) {
            Err(ServeError::Store(BandanaError::NoSuchVector { .. })) => {}
            other => panic!("expected NoSuchVector, got {other:?}"),
        }
        engine.drain();
        assert_eq!(engine.metrics().failed, 1);
    }

    #[test]
    fn empty_request_completes_immediately() {
        let (store, _) = build_store(5);
        let engine = ShardedEngine::new(store, ServeConfig::default()).expect("engine");
        let results = engine.serve(&Request::default()).expect("serve");
        assert!(results.is_empty());
        assert_eq!(engine.metrics().completed, 1);
    }

    #[test]
    fn metrics_account_every_submitted_request() {
        let (store, mut generator) = build_store(6);
        let engine =
            ShardedEngine::new(store, ServeConfig::default().with_shards(2)).expect("engine");
        let trace = generator.generate_requests(100);
        for r in &trace.requests {
            engine.submit(r).expect("submit");
        }
        engine.drain();
        let m = engine.metrics();
        assert_eq!(m.submitted, 100);
        assert_eq!(m.completed + m.shed + m.timed_out + m.failed, 100);
        assert_eq!(m.completed, 100);
        assert_eq!(m.lookups as usize, trace.total_lookups());
        assert_eq!(m.outstanding, 0);
        assert_eq!(m.latency.count, 100);
        // Per-shard lookups sum to the engine total.
        let shard_lookups: u64 = m.per_shard.iter().map(|s| s.lookups).sum();
        assert_eq!(shard_lookups, m.lookups);
        // Cache counters flow through from the tables; duplicate ids are
        // coalesced before the cache, so probes never exceed lookups.
        assert!(m.cache.lookups > 0);
        assert!(m.cache.lookups <= m.lookups, "{} > {}", m.cache.lookups, m.lookups);
    }

    #[test]
    fn shutdown_returns_final_metrics_and_rejects_new_work() {
        let (store, mut generator) = build_store(7);
        let engine = ShardedEngine::new(store, ServeConfig::default()).expect("engine");
        let trace = generator.generate_requests(10);
        for r in &trace.requests {
            engine.submit(r).expect("submit");
        }
        engine.drain();
        let m = engine.shutdown();
        assert_eq!(m.completed, 10);
    }

    #[test]
    fn zero_timeout_times_requests_out_without_deadlock() {
        let (store, mut generator) = build_store(8);
        let engine =
            ShardedEngine::new(store, ServeConfig::default().with_request_timeout(Duration::ZERO))
                .expect("engine");
        let trace = generator.generate_requests(20);
        for r in &trace.requests {
            engine.submit(r).expect("submit");
        }
        engine.drain();
        let m = engine.metrics();
        assert_eq!(m.completed + m.timed_out, 20);
        assert!(m.timed_out > 0, "a zero deadline must time out");
    }

    #[test]
    fn engine_config_is_validated() {
        let (store, _) = build_store(9);
        let err = ShardedEngine::new(store, ServeConfig::default().with_shards(0));
        assert!(matches!(err, Err(BandanaError::Config(_))));
        let (store, _) = build_store(9);
        let err = ShardedEngine::new(store, ServeConfig::default().with_max_batch(0));
        assert!(matches!(err, Err(BandanaError::Config(_))));
        let (store, _) = build_store(9);
        let err = ShardedEngine::new(store, ServeConfig::default().with_device_queue(0));
        assert!(matches!(err, Err(BandanaError::Config(_))));
    }

    /// Builds a store with identity placement and no prefetching, so block
    /// residency is predictable: table 0 holds 128 32-byte vectors per
    /// 4 KB block and a miss costs exactly one read.
    fn build_plain_store(seed: u64) -> BandanaStore {
        let spec = ModelSpec::test_small();
        let mut generator = TraceGenerator::new(&spec, seed);
        let training = generator.generate_requests(200);
        let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
            .map(|t| {
                EmbeddingTable::synthesize(
                    spec.tables[t].num_vectors,
                    spec.dim,
                    generator.topic_model(t),
                    t as u64,
                )
            })
            .collect();
        BandanaStore::build(
            &spec,
            &embeddings,
            &training,
            BandanaConfig::default()
                .with_cache_vectors(256)
                .with_partitioner(bandana_core::PartitionerKind::Identity)
                .with_admission(bandana_cache::AdmissionPolicy::None),
        )
        .expect("build store")
    }

    #[test]
    fn shards_report_dense_capacity_endurance_and_pool_stats() {
        let (store, mut generator) = build_store(21);
        let total_blocks: u64 =
            (0..store.num_tables()).map(|t| store.table(t).unwrap().num_blocks()).sum();
        let engine =
            ShardedEngine::new(store, ServeConfig::default().with_shards(2)).expect("engine");
        let trace = generator.generate_requests(300);
        for r in &trace.requests {
            engine.submit(r).expect("submit");
        }
        engine.drain();
        let m = engine.metrics();
        // Dense rebased devices: every shard's capacity is exactly its
        // tables' blocks, and the shard capacities partition the store.
        let sum: u64 = m.per_shard.iter().map(|s| s.capacity_blocks).sum();
        assert_eq!(sum, total_blocks);
        for s in &m.per_shard {
            assert!(s.capacity_blocks > 0, "shard {} has no capacity", s.shard);
            // Serving never writes: per-shard endurance stays untouched.
            assert_eq!(s.bytes_written, 0);
            assert_eq!(s.drive_writes, 0.0);
        }
        // A 300-request run churns the caches: the worker pools must be
        // recycling buffers rather than allocating per read.
        assert!(m.pool.acquires > 0);
        assert!(m.pool.reuses > 0, "pools never recycled: {:?}", m.pool);
    }

    #[test]
    fn batch_window_merges_lookups_from_different_requests_into_one_read() {
        let store = build_plain_store(31);
        let engine = ShardedEngine::new(
            store,
            ServeConfig::default()
                .with_shards(1)
                .with_batch_window(Duration::from_millis(100))
                .with_max_batch(8),
        )
        .expect("engine");
        // Eight requests, each a distinct id inside table 0's block 0
        // (identity layout, 128 vectors per block). Without cross-request
        // batching these cost eight cold block reads; merged into one
        // micro-batch they coalesce into one.
        for v in 0..8u32 {
            engine.submit(&Request { queries: vec![TableQuery::new(0, vec![v])] }).expect("submit");
        }
        engine.drain();
        let m = engine.metrics();
        assert_eq!(m.completed, 8);
        let reads: u64 = m.per_shard.iter().map(|s| s.device_reads).sum();
        assert!(reads < 8, "cross-request merging must coalesce block reads, got {reads}");
        assert!(m.batching.mean_batch() > 1.0, "{:?}", m.batching);
        assert!(m.batching.largest_batch >= 2);
        assert_eq!(m.batching.batched_requests, 8);
    }

    #[test]
    fn batches_never_exceed_max_batch() {
        let (store, mut generator) = build_store(32);
        let max_batch = 3;
        let engine = ShardedEngine::new(
            store,
            ServeConfig::default()
                .with_shards(2)
                .with_batch_window(Duration::from_millis(5))
                .with_max_batch(max_batch),
        )
        .expect("engine");
        let trace = generator.generate_requests(200);
        for r in &trace.requests {
            engine.submit(r).expect("submit");
        }
        engine.drain();
        let m = engine.metrics();
        assert_eq!(m.completed, 200);
        assert!(
            m.batching.largest_batch <= max_batch as u64,
            "batch of {} exceeded max {max_batch}",
            m.batching.largest_batch
        );
        for s in &m.per_shard {
            assert!(s.largest_batch <= max_batch as u64);
        }
    }

    #[test]
    fn invalid_id_fails_only_its_own_request_inside_a_merged_batch() {
        let store = build_plain_store(33);
        let engine = std::sync::Arc::new(
            ShardedEngine::new(
                store,
                ServeConfig::default()
                    .with_shards(1)
                    .with_batch_window(Duration::from_millis(100))
                    .with_max_batch(4),
            )
            .expect("engine"),
        );
        std::thread::scope(|scope| {
            let good_engine = std::sync::Arc::clone(&engine);
            let good = scope.spawn(move || {
                good_engine.serve(&Request { queries: vec![TableQuery::new(0, vec![5, 6])] })
            });
            let bad_engine = std::sync::Arc::clone(&engine);
            let bad = scope.spawn(move || {
                bad_engine.serve(&Request { queries: vec![TableQuery::new(0, vec![7, u32::MAX])] })
            });
            let good = good.join().expect("good caller");
            let bad = bad.join().expect("bad caller");
            assert!(good.is_ok(), "valid request poisoned by a bad batchmate: {good:?}");
            assert!(
                matches!(bad, Err(ServeError::Store(BandanaError::NoSuchVector { .. }))),
                "{bad:?}"
            );
        });
        engine.drain();
        let m = engine.metrics();
        assert_eq!(m.completed, 1);
        assert_eq!(m.failed, 1);
    }

    #[test]
    fn depth_one_device_queue_charges_exactly_the_single_read_latency() {
        let store = build_plain_store(34);
        let model = nvm_sim::QueueModel::default();
        let engine = ShardedEngine::new(
            store,
            ServeConfig::default().with_shards(1).with_max_batch(1).with_device_queue(1),
        )
        .expect("engine");
        for v in [0u32, 200, 400, 600] {
            engine.serve(&Request { queries: vec![TableQuery::new(0, vec![v])] }).expect("serve");
        }
        let m = engine.shutdown();
        // Backward-compat contract: at max_batch 1 and depth 1 every block
        // read is charged the device's QD1 service time, nothing more.
        let reads: u64 = m.per_shard.iter().map(|s| s.device_reads).sum();
        assert!(reads >= 4, "four distinct blocks were read");
        let expected = reads as f64 * model.mean_latency(1);
        assert!(
            (m.batching.depth.busy_s - expected).abs() < 1e-9,
            "busy {} vs expected {}",
            m.batching.depth.busy_s,
            expected
        );
        assert_eq!(m.batching.depth.peak_depth, 1);
        assert_eq!(m.batching.depth.submitted, reads);
        assert!(m.breakdown.device.mean_s > 0.0);
        // The charged time really elapsed: measured service can only be
        // slower than the simulated device component.
        assert!(m.service.mean_s + 1e-9 >= m.device_time.mean_s);
    }

    #[test]
    fn budget_controller_repartitions_a_live_engine() {
        let (store, _) = build_store(35);
        let config = ServeConfig::default()
            .with_shards(1)
            .with_control(ControlConfig {
                tick: Duration::from_millis(1),
                ..ControlConfig::default()
            })
            .with_cache_budget(CacheBudgetSettings {
                window_lookups: 256,
                sample_every: 1,
                granularity: 32,
                ..CacheBudgetSettings::default()
            });
        let engine = ShardedEngine::new(store, config).expect("engine");

        // The build-time split is published before any solve.
        let before = engine.metrics().cache_partition;
        assert_eq!(before.len(), 2);
        let total: usize = before.iter().map(|p| p.capacity_entries).sum();
        assert!(total > 0);

        // Table 0 draws uniformly from a working set far larger than its
        // share; table 1 only ever touches 4 keys. The controller should
        // move budget from table 1 to table 0.
        let mut rng = 99u64;
        let mut lcg = move |keys: u32| {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng >> 33) as u32) % keys
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            for _ in 0..64 {
                let ids: Vec<u32> = (0..8).map(|_| lcg(1500)).collect();
                let request = Request {
                    queries: vec![TableQuery::new(0, ids), TableQuery::new(1, vec![lcg(4)])],
                };
                engine.submit(&request).expect("submit");
            }
            engine.drain();
            if engine.metrics().rebudget_applied > 0 || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        let m = engine.shutdown();
        assert!(m.rebudget_solves >= 1, "window traffic must trigger a solve");
        assert!(m.rebudget_applied >= 1, "the skew must clear hysteresis");
        // The partition conserved the total budget and favours table 0.
        let after_total: usize = m.cache_partition.iter().map(|p| p.capacity_entries).sum();
        assert_eq!(after_total, total, "re-partitioning never mints budget");
        let t0 = m.cache_partition.iter().find(|p| p.table == 0).expect("table 0");
        let t1 = m.cache_partition.iter().find(|p| p.table == 1).expect("table 1");
        assert!(
            t0.capacity_entries > t1.capacity_entries,
            "hot table must win the budget: {:?}",
            m.cache_partition
        );
        // Every applied move is audited with its justifying curve.
        let audited = m
            .audit
            .iter()
            .filter(|e| e.controller == "cache-budget")
            .filter(|e| e.action.contains("SetCachePartition"))
            .count();
        assert!(audited >= 1, "applied moves must be audited");
        assert!(
            m.audit
                .iter()
                .filter(|e| e.controller == "cache-budget")
                .all(|e| e.cause.contains("hit-rate curve")),
            "audit entries must carry the curve evidence"
        );
    }

    #[test]
    fn learned_partition_survives_a_warm_restart() {
        let dir =
            std::env::temp_dir().join(format!("bandana-rebudget-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || {
            ServeConfig::default()
                .with_shards(1)
                .with_control(ControlConfig {
                    tick: Duration::from_millis(1),
                    ..ControlConfig::default()
                })
                .with_cache_budget(CacheBudgetSettings {
                    window_lookups: 256,
                    sample_every: 1,
                    granularity: 32,
                    ..CacheBudgetSettings::default()
                })
                .with_persist(PersistConfig::new(&dir).with_snapshot_every_ticks(0))
        };

        // First life: skewed traffic re-partitions the caches, then the
        // learned split is snapshotted.
        let (store, _) = build_store(36);
        let engine = ShardedEngine::new(store, config()).expect("engine");
        let mut rng = 7u64;
        let mut lcg = move |keys: u32| {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng >> 33) as u32) % keys
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            for _ in 0..64 {
                let ids: Vec<u32> = (0..8).map(|_| lcg(1500)).collect();
                let request = Request {
                    queries: vec![TableQuery::new(0, ids), TableQuery::new(1, vec![lcg(4)])],
                };
                engine.submit(&request).expect("submit");
            }
            engine.drain();
            if engine.metrics().rebudget_applied > 0 || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        engine.snapshot_now().expect("snapshot");
        let learned = engine.shutdown().cache_partition;
        assert!(
            learned.iter().any(|p| p.capacity_entries != p.target_entries)
                || learned[0].capacity_entries != learned[1].capacity_entries,
            "the run must have learned a non-uniform split: {learned:?}"
        );

        // Second life: the recovered engine resumes the learned split,
        // not the build-time one.
        let (store, _) = build_store(36);
        let engine = ShardedEngine::recover(store, config()).expect("recover");
        let restored = engine.metrics().cache_partition;
        let caps = |p: &[TableCachePartition]| -> Vec<(usize, usize)> {
            p.iter().map(|t| (t.table, t.capacity_entries)).collect()
        };
        assert_eq!(caps(&restored), caps(&learned), "partition must survive the restart");
        drop(engine.shutdown());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn relayout_controller_regroups_a_live_engine() {
        let store = build_plain_store(40);
        let config = ServeConfig::default()
            .with_shards(1)
            .with_control(ControlConfig {
                tick: Duration::from_millis(1),
                ..ControlConfig::default()
            })
            .with_relayout(ReLayoutSettings {
                window_requests: 64,
                hot_blocks: 8,
                ..ReLayoutSettings::default()
            });
        let engine = ShardedEngine::new(store, config).expect("engine");

        // A probe across every block of table 0: its payloads must be
        // byte-identical before and after the live remap.
        let probe =
            Request { queries: vec![TableQuery::new(0, (0..16).map(|k| k * 128).collect())] };
        let before = engine.serve(&probe).expect("probe");

        // Post-drift traffic: under the build-time identity layout (128
        // 32-byte vectors per 4 KB block) every request straddles four
        // blocks of table 0, while all 128 hot vectors would fit in one.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut g = 0u32;
        loop {
            for _ in 0..64 {
                g = (g + 1) % 32;
                let ids = vec![g, 128 + g, 256 + g, 384 + g];
                let request = Request { queries: vec![TableQuery::new(0, ids)] };
                engine.submit(&request).expect("submit");
            }
            engine.drain();
            if engine.metrics().relayout_rewritten_blocks > 0 || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        let after = engine.serve(&probe).expect("probe after remap");
        assert_eq!(before, after, "reads must be byte-identical across the remap");

        let m = engine.shutdown();
        assert!(m.relayout_solves >= 1, "the degraded window must solve");
        assert!(m.relayout_applied >= 1, "drifted traffic must apply a re-layout");
        assert!(m.relayout_rewritten_blocks > 0, "an applied re-layout rewrites blocks");
        assert!(m.blocks_per_request_observed > 0.0, "gauges must publish");
        assert!(m.blocks_per_request_ideal > 0.0, "gauges must publish");
        // Rewritten blocks are real device writes charged to endurance.
        assert!(
            m.per_shard.iter().any(|s| s.bytes_written > 0),
            "re-layout writes must charge endurance: {:?}",
            m.per_shard
        );
        // Every applied re-layout is audited with its justifying
        // blocks-per-request figures.
        let audited: Vec<_> = m.audit.iter().filter(|e| e.controller == "re-layout").collect();
        assert!(!audited.is_empty(), "applied re-layouts must be audited");
        assert!(
            audited
                .iter()
                .all(|e| e.action.contains("ApplyLayout") && e.cause.contains("blocks/request")),
            "audit entries must carry the window evidence: {audited:?}"
        );
    }

    /// A one-shot controller that hands the engine a fixed layout once:
    /// exercises [`Action::ApplyLayout`] through the public controller
    /// API with a deterministic order.
    struct OneShotRelayout {
        order: Vec<u32>,
        fired: bool,
    }

    impl Controller for OneShotRelayout {
        fn name(&self) -> &str {
            "one-shot-relayout"
        }

        fn observe(&mut self, _snapshot: &EngineSnapshot) -> Vec<Action> {
            if std::mem::replace(&mut self.fired, true) {
                return Vec::new();
            }
            vec![Action::ApplyLayout {
                table: 0,
                order: self.order.clone(),
                observed_blocks_per_request: 2.0,
                ideal_blocks_per_request: 1.0,
            }]
        }
    }

    #[test]
    fn learned_layout_survives_a_warm_restart() {
        let dir =
            std::env::temp_dir().join(format!("bandana-relayout-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || {
            ServeConfig::default()
                .with_shards(1)
                .with_control(ControlConfig {
                    tick: Duration::from_millis(1),
                    ..ControlConfig::default()
                })
                .with_persist(PersistConfig::new(&dir).with_snapshot_every_ticks(0))
        };
        // Swap the first two blocks of table 0 (2048 vectors, 128 per
        // block), leaving the rest of the order untouched.
        let order: Vec<u32> = (128..256).chain(0..128).chain(256..2048).collect();

        // First life: the controller applies the layout, a probe pins
        // the expected bytes, and the learned order is snapshotted.
        let store = build_plain_store(41);
        let engine = ShardedEngine::new_with_controllers(
            store,
            config(),
            vec![Box::new(OneShotRelayout { order: order.clone(), fired: false })],
        )
        .expect("engine");
        let probe = Request { queries: vec![TableQuery::new(0, vec![0, 1, 128, 129, 2000])] };
        let expected = engine.serve(&probe).expect("probe");
        let deadline = Instant::now() + Duration::from_secs(10);
        while engine.metrics().relayout_rewritten_blocks < 2 {
            assert!(Instant::now() < deadline, "shard never applied the layout");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(engine.serve(&probe).expect("probe"), expected, "remap preserves reads");
        engine.snapshot_now().expect("snapshot");
        let m = engine.shutdown();
        assert_eq!(m.relayout_applied, 1);
        assert_eq!(m.relayout_rewritten_blocks, 2, "exactly the two swapped blocks rewrite");

        // Second life: the recovered engine serves identical bytes and
        // carries the learned layout, not the build-time one — its next
        // snapshot re-journals the same order.
        let store = build_plain_store(41);
        let engine = ShardedEngine::recover(store, config()).expect("recover");
        assert_eq!(engine.serve(&probe).expect("probe"), expected, "restart preserves reads");
        engine.snapshot_now().expect("snapshot");
        drop(engine.shutdown());
        let (_, opened) = Persistence::open(&PersistConfig::new(&dir)).expect("open persist dir");
        let snap = opened.snapshot.expect("a snapshot was installed").1;
        let journaled = snap.tables.iter().find(|t| t.table == 0).expect("table 0 in snapshot");
        assert_eq!(journaled.layout_order, order, "the learned layout must survive the restart");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
