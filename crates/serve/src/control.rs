//! The unified control plane: a windowed metrics bus and pluggable
//! feedback controllers.
//!
//! The paper's central operational claim (§4.3.3) is that an NVM-backed
//! embedding store stays viable only when its knobs are *continuously
//! re-tuned against observed traffic*. Before this module, that feedback
//! was scattered: the online tuner ran as a one-off thread hard-wired to
//! a single admission threshold, and per-tenant histograms were
//! cumulative-only — useless for deciding anything about *now*. This
//! module makes the loop explicit and measurable:
//!
//! * The **metrics bus** is a background thread every
//!   [`ShardedEngine`](crate::ShardedEngine) runs. Each tick it rotates
//!   the per-tenant [windowed histograms](crate::WindowedHistogram) and
//!   assembles an [`EngineSnapshot`] — per-shard lane depths, batch and
//!   device-queue statistics, per-tenant recent-window latency and
//!   shed-reason counters — the one consistent view of the engine a
//!   moment of control logic gets to see.
//! * A [`Controller`] is a pure policy: `observe(&EngineSnapshot) ->
//!   Vec<Action>`. The bus feeds every registered controller each tick
//!   and applies the returned [`Action`]s through the engine's shard
//!   command channels and shared admission state. Controllers never touch
//!   the engine directly, so adding one cannot corrupt the data path.
//! * [`Action`]s cover the knobs the engine exposes: hot-swapping a
//!   table's admission policy (the tuner's lever), resizing a tenant's
//!   queue lanes, adapting the micro-batch window, and marking a tenant
//!   for early shed at admission.
//!
//! Two controllers ship in-tree: the re-homed online tuner
//! ([`OnlineTunerSettings`](crate::OnlineTunerSettings) — races miniature
//! caches on sampled traffic and emits [`Action::SetPolicy`]) and the
//! [`SloController`], which enforces each tenant's
//! [`TenantSpec::slo_p99`](crate::TenantSpec::slo_p99) budget by shedding
//! the tenant at admission while its recent-window p99 is blown — the
//! tenant is refused *early*, before its doomed backlog can poison other
//! tenants' lanes, rather than late when its lane finally fills.

use crate::hist::LatencySummary;
use crate::tenant::{PriorityClass, ShedBreakdown, TenantId};
use bandana_cache::AdmissionPolicy;
use nvm_sim::DepthStats;
use std::time::Duration;

/// Cadence and window geometry of the engine's metrics bus, set via
/// [`ServeConfig::with_control`](crate::ServeConfig::with_control).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlConfig {
    /// How often the bus snapshots the engine and runs the controllers.
    pub tick: Duration,
    /// Wall-clock span of one windowed-histogram slot; the recent window
    /// covers `window_slots × window_slot` of traffic.
    pub window_slot: Duration,
    /// Ring slots per windowed histogram (samples fully decay after this
    /// many rotations).
    pub window_slots: usize,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            tick: Duration::from_millis(10),
            window_slot: Duration::from_millis(50),
            window_slots: 8,
        }
    }
}

impl ControlConfig {
    /// Validates the configuration.
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.tick.is_zero() {
            return Err("control tick must be non-zero".into());
        }
        if self.window_slot.is_zero() {
            return Err("window slot span must be non-zero".into());
        }
        if self.window_slots == 0 {
            return Err("need at least one window slot".into());
        }
        Ok(())
    }

    /// The span of traffic the recent window covers when full.
    pub fn window_span(&self) -> Duration {
        self.window_slot * self.window_slots as u32
    }
}

/// One shard's slice of an [`EngineSnapshot`].
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Queued requests per tenant lane (indexed like
    /// [`EngineSnapshot::tenants`]).
    pub lane_depths: Vec<usize>,
    /// Micro-batches served so far.
    pub batches: u64,
    /// Requests served across those batches.
    pub batched_requests: u64,
    /// Device submission accounting (zeros without a device queue).
    pub depth: DepthStats,
}

impl ShardSnapshot {
    /// Mean requests per micro-batch so far (`0.0` before any batch).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

/// One tenant's slice of an [`EngineSnapshot`].
#[derive(Debug, Clone)]
pub struct TenantSnapshot {
    /// The tenant.
    pub id: TenantId,
    /// Registered scheduling class — lets a controller weight a tenant's
    /// traffic by how much the operator said it matters (the cache
    /// budget controller scales each tenant's sampled accesses by class).
    pub priority_class: PriorityClass,
    /// Registered recent-window p99 budget (`None` = no SLO).
    pub slo_p99: Option<Duration>,
    /// Requests currently in flight.
    pub outstanding: u64,
    /// Requests submitted so far (includes sheds).
    pub submitted: u64,
    /// Requests completed so far.
    pub completed: u64,
    /// Requests currently queued in this tenant's lanes, summed across
    /// shards — the live pressure signal a controller uses to attribute
    /// congestion to its source.
    pub queued: u64,
    /// Sheds so far, by cause.
    pub shed: ShedBreakdown,
    /// Whether the SLO controller currently sheds this tenant.
    pub slo_shedding: bool,
    /// End-to-end latency over the recent window (what SLO decisions are
    /// made from).
    pub recent: LatencySummary,
}

/// One table's slice of the engine's DRAM cache budget: the capacity the
/// shard worker currently runs, and the capacity the cache budget
/// controller last solved for it. The two differ while a re-partition is
/// suppressed by hysteresis (or in flight to the worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableCachePartition {
    /// The table.
    pub table: usize,
    /// Entries the table's DRAM cache is currently sized for (build-time
    /// partition until the first applied
    /// [`Action::SetCachePartition`]).
    pub capacity_entries: usize,
    /// Entries the last [`allocate_dram`](bandana_cache::allocate_dram)
    /// solve assigned the table (equals `capacity_entries` until a
    /// controller solves).
    pub target_entries: usize,
}

/// A consistent periodic view of the engine, assembled by the metrics bus
/// and handed to every [`Controller`] each tick.
///
/// Counters are cumulative since engine start; a stateful controller that
/// wants per-tick rates keeps its previous snapshot and subtracts.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// Bus ticks completed before this snapshot (0 on the first).
    pub tick: u64,
    /// Time since the engine started.
    pub uptime: Duration,
    /// The span of traffic the recent windows cover
    /// ([`ControlConfig::window_span`]) — how long a latency event stays
    /// visible in windowed quantiles.
    pub window_span: Duration,
    /// The currently configured micro-batch window (reflects
    /// [`Action::SetBatchWindow`] retunes).
    pub batch_window: Duration,
    /// Per-shard queue/batch/device state.
    pub shards: Vec<ShardSnapshot>,
    /// Per-tenant admission and recent-latency state; index 0 is the
    /// default tenant.
    pub tenants: Vec<TenantSnapshot>,
    /// Per-table DRAM cache partition (current and target entries),
    /// ordered by table id — how the fixed budget is divided right now.
    pub cache_partition: Vec<TableCachePartition>,
}

impl EngineSnapshot {
    /// Total queued requests across all shards and lanes.
    pub fn queued(&self) -> usize {
        self.shards.iter().map(|s| s.lane_depths.iter().sum::<usize>()).sum()
    }
}

/// A knob adjustment returned by [`Controller::observe`]; the metrics bus
/// applies it through the engine's command channels and shared state.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Action {
    /// Hot-swap one table's admission policy (the online tuner's lever);
    /// routed to the owning shard's command channel and applied between
    /// micro-batches.
    SetPolicy {
        /// The table whose policy changes.
        table: usize,
        /// The new policy.
        policy: AdmissionPolicy,
        /// Shadow-cache multiplier for policies that need one.
        shadow_multiplier: f64,
    },
    /// Resize one tenant's queue lane in every shard (live; queued work
    /// is never evicted by a shrink).
    SetLaneCap {
        /// The tenant whose lanes resize.
        tenant: TenantId,
        /// New per-shard lane capacity (clamped to at least 1).
        cap: usize,
    },
    /// Retune the cross-request micro-batch window on every shard.
    SetBatchWindow {
        /// The new window (zero disables cross-request batching).
        window: Duration,
    },
    /// Mark (or unmark) a tenant for early shed at admission: while
    /// marked, its submissions fail with
    /// [`ServeError::SloShed`](crate::ServeError::SloShed) without
    /// touching any queue.
    SetSloShed {
        /// The tenant to shed or release.
        tenant: TenantId,
        /// `true` to shed, `false` to release.
        shed: bool,
    },
    /// Re-size one table's DRAM cache partition (the cache budget
    /// controller's lever); routed to the owning shard's command channel
    /// and applied between micro-batches. A grow admits immediately; a
    /// shrink evicts coldest-first and never flushes the survivors.
    SetCachePartition {
        /// The table whose cache resizes.
        table: usize,
        /// The new capacity in entries.
        entries: usize,
        /// The hit-rate-curve points `(entries, hit_rate)` that justified
        /// the re-partition — captured into the audit log so every budget
        /// move is explainable after the fact.
        curve: Vec<(usize, f64)>,
    },
    /// Atomically remap one table onto a refined block layout (the
    /// online re-layout controller's lever); routed to the owning
    /// shard's command channel and applied between micro-batches. The
    /// rewritten blocks are real device writes charged to the shard's
    /// endurance meter.
    ApplyLayout {
        /// The table whose layout changes.
        table: usize,
        /// The full placement order: `order[position] = vector id`.
        order: Vec<u32>,
        /// Observed blocks-per-request over the window that justified
        /// the move — captured into the audit log.
        observed_blocks_per_request: f64,
        /// The same window's ideal blocks-per-request.
        ideal_blocks_per_request: f64,
    },
}

/// A feedback policy run by the metrics bus: observe one
/// [`EngineSnapshot`], return the [`Action`]s to apply.
///
/// Controllers are registered at engine construction
/// ([`ServeConfig::with_slo_controller`](crate::ServeConfig::with_slo_controller),
/// [`ServeConfig::with_tuner`](crate::ServeConfig::with_tuner), or
/// [`ShardedEngine::new_with_controllers`](crate::ShardedEngine::new_with_controllers)
/// for custom ones) and run on the bus thread in registration order. An
/// `observe` that returns no actions is the steady state; returned
/// actions are applied immediately, before the next controller runs.
pub trait Controller: Send {
    /// A short stable name for logs and debugging.
    fn name(&self) -> &str;

    /// Inspects the snapshot and returns the knob adjustments to apply.
    fn observe(&mut self, snapshot: &EngineSnapshot) -> Vec<Action>;
}

/// Tuning of the [`SloController`]'s trip/release behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloControllerConfig {
    /// Recent-window samples required before a blown p99 trips the
    /// breaker (guards against deciding from one or two outliers).
    pub min_samples: u64,
    /// Release hysteresis: a tripped tenant is only released once its
    /// recent p99 falls to this fraction of the budget (an empty window —
    /// everything decayed out — also counts as recovered).
    pub release_fraction: f64,
    /// Minimum shed duration after a trip.
    pub base_hold: Duration,
    /// Each consecutive trip multiplies the hold by this factor: a tenant
    /// that re-blows its budget the moment it is released is a sustained
    /// offender and earns exponentially longer sheds.
    pub backoff: u32,
    /// Ceiling on the escalated hold.
    pub max_hold: Duration,
    /// After tripping one tenant, no further tenant is tripped for this
    /// many recent-window spans. A single congestion event pollutes
    /// *every* tenant's window at once; the cooldown pins the blame on
    /// the dominant load source (the most-queued blown tenant) and lets
    /// the bystanders' windows turn over — by the time the cooldown
    /// expires, a tenant that was merely collateral damage has a clean
    /// window again and is never shed.
    pub trip_cooldown_windows: u32,
    /// A tenant that stays healthy this long past its hold expiry has
    /// its escalation forgiven: the next trip starts from
    /// [`base_hold`](SloControllerConfig::base_hold) again. Escalation
    /// is for *consecutive* offences — a tenant that refloods the moment
    /// it is released — not a lifetime grudge against isolated
    /// transients hours apart.
    pub forgive_after: Duration,
}

impl Default for SloControllerConfig {
    fn default() -> Self {
        SloControllerConfig {
            min_samples: 8,
            release_fraction: 0.5,
            base_hold: Duration::from_millis(250),
            backoff: 2,
            max_hold: Duration::from_secs(8),
            trip_cooldown_windows: 2,
            forgive_after: Duration::from_secs(10),
        }
    }
}

impl SloControllerConfig {
    pub(crate) fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.release_fraction && self.release_fraction <= 1.0) {
            return Err(format!("SLO release fraction {} outside (0, 1]", self.release_fraction));
        }
        if self.base_hold.is_zero() {
            return Err("SLO base hold must be non-zero".into());
        }
        if self.backoff == 0 {
            return Err("SLO backoff multiplier must be at least 1".into());
        }
        if self.max_hold < self.base_hold {
            return Err("SLO max hold must be at least the base hold".into());
        }
        Ok(())
    }
}

/// Per-tenant breaker state inside the [`SloController`].
#[derive(Debug, Clone, Copy, Default)]
struct Breaker {
    /// Consecutive trips (drives the exponential hold).
    trips: u32,
    /// Engine uptime before which the tenant stays shed.
    hold_until: Duration,
}

/// Enforces each tenant's [`TenantSpec::slo_p99`](crate::TenantSpec::slo_p99)
/// budget by shedding the tenant at admission while its *recent-window*
/// p99 is blown.
///
/// This is the ROADMAP's "shed a tenant early when its own p99 budget is
/// blown rather than when its lane fills": a tenant whose recent
/// completions already violate its SLO gains nothing from queueing more
/// work — every additional accepted request deepens its backlog, burns
/// DRR quanta, and drags down co-tenants. The controller trips a breaker
/// per tenant: submissions fail fast with
/// [`ServeError::SloShed`](crate::ServeError::SloShed), the backlog
/// drains, the blown samples decay out of the window, and the tenant is
/// released once its recent p99 recovers
/// ([`release_fraction`](SloControllerConfig::release_fraction)
/// hysteresis) and the hold expires. Consecutive trips escalate the hold
/// exponentially ([`backoff`](SloControllerConfig::backoff)), so a
/// sustained offender converges to being mostly shed while a tenant that
/// merely hit a transient spike recovers quickly.
///
/// One congestion event blows *every* tenant's windowed p99 at once, so
/// trips are attributed, not broadcast: per scheduling decision the
/// controller sheds only the blown tenant with the deepest queues — the
/// dominant load source — and then holds fire for
/// [`trip_cooldown_windows`](SloControllerConfig::trip_cooldown_windows)
/// window spans. By the time the cooldown expires, tenants that were
/// collateral damage of the shed offender have drained and their windows
/// have turned over clean; only a tenant *still* blowing its budget on
/// its own traffic earns the next trip.
#[derive(Debug)]
pub struct SloController {
    config: SloControllerConfig,
    /// Breaker state per tenant index (grown on demand).
    breakers: Vec<Breaker>,
    /// Engine uptime of the most recent trip (drives the cooldown).
    last_trip: Option<Duration>,
}

impl SloController {
    /// Creates the controller.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see [`SloControllerConfig`]).
    pub fn new(config: SloControllerConfig) -> Self {
        config.validate().expect("invalid SLO controller configuration");
        SloController { config, breakers: Vec::new(), last_trip: None }
    }

    /// The escalated hold after `trips` consecutive trips.
    fn hold_after(&self, trips: u32) -> Duration {
        let mut hold = self.config.base_hold;
        for _ in 1..trips {
            hold = hold.saturating_mul(self.config.backoff);
            if hold >= self.config.max_hold {
                return self.config.max_hold;
            }
        }
        hold.min(self.config.max_hold)
    }
}

impl Default for SloController {
    fn default() -> Self {
        SloController::new(SloControllerConfig::default())
    }
}

impl Controller for SloController {
    fn name(&self) -> &str {
        "SloController"
    }

    fn observe(&mut self, snapshot: &EngineSnapshot) -> Vec<Action> {
        if self.breakers.len() < snapshot.tenants.len() {
            self.breakers.resize(snapshot.tenants.len(), Breaker::default());
        }
        let mut actions = Vec::new();
        // Releases: a tripped tenant comes back once its hold expired and
        // its window shows recovery (hysteresis, or fully decayed).
        for (i, t) in snapshot.tenants.iter().enumerate() {
            let Some(budget) = t.slo_p99 else { continue };
            if !t.slo_shedding {
                continue;
            }
            let recovered = t.recent.count == 0
                || t.recent.p99_s <= budget.as_secs_f64() * self.config.release_fraction;
            if snapshot.uptime >= self.breakers[i].hold_until && recovered {
                actions.push(Action::SetSloShed { tenant: t.id, shed: false });
            }
        }
        // Trips: at most one per cooldown, attributed to the most-queued
        // blown tenant (the congestion's dominant source).
        let cooldown = snapshot.window_span.saturating_mul(self.config.trip_cooldown_windows);
        let cooling =
            self.last_trip.is_some_and(|at| snapshot.uptime < at.saturating_add(cooldown));
        if !cooling {
            let candidate = snapshot
                .tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.slo_shedding)
                .filter(|(_, t)| {
                    t.slo_p99.is_some_and(|budget| {
                        t.recent.count >= self.config.min_samples
                            && t.recent.p99_s > budget.as_secs_f64()
                    })
                })
                .max_by_key(|(_, t)| (t.queued, t.outstanding, t.submitted));
            if let Some((i, t)) = candidate {
                // Escalation applies to *consecutive* offences only: a
                // tenant that stayed healthy well past its last hold has
                // its record forgiven and starts from the base hold.
                let forgiven = self.breakers[i].trips > 0
                    && snapshot.uptime
                        >= self.breakers[i].hold_until.saturating_add(self.config.forgive_after);
                if forgiven {
                    self.breakers[i].trips = 0;
                }
                let trips = self.breakers[i].trips + 1;
                let hold = self.hold_after(trips);
                self.breakers[i].trips = trips;
                self.breakers[i].hold_until = snapshot.uptime + hold;
                self.last_trip = Some(snapshot.uptime);
                actions.push(Action::SetSloShed { tenant: t.id, shed: true });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(id: u32, budget_ms: u64, p99_ms: f64, count: u64, shedding: bool) -> TenantSnapshot {
        TenantSnapshot {
            id: TenantId(id),
            priority_class: PriorityClass::Normal,
            slo_p99: Some(Duration::from_millis(budget_ms)),
            outstanding: 0,
            submitted: count,
            completed: count,
            queued: 0,
            shed: ShedBreakdown::default(),
            slo_shedding: shedding,
            recent: LatencySummary { count, p99_s: p99_ms * 1e-3, ..Default::default() },
        }
    }

    fn snapshot(uptime_ms: u64, tenants: Vec<TenantSnapshot>) -> EngineSnapshot {
        EngineSnapshot {
            tick: 0,
            uptime: Duration::from_millis(uptime_ms),
            window_span: Duration::from_millis(50),
            batch_window: Duration::ZERO,
            shards: Vec::new(),
            tenants,
            cache_partition: Vec::new(),
        }
    }

    #[test]
    fn trips_on_blown_budget_and_holds_until_recovered() {
        let mut ctl = SloController::new(SloControllerConfig {
            min_samples: 4,
            release_fraction: 0.5,
            base_hold: Duration::from_millis(100),
            backoff: 2,
            max_hold: Duration::from_secs(1),
            trip_cooldown_windows: 2,
            forgive_after: Duration::from_secs(10),
        });
        // Healthy: no action.
        assert!(ctl.observe(&snapshot(0, vec![tenant(1, 10, 5.0, 100, false)])).is_empty());
        // Blown: trip.
        let actions = ctl.observe(&snapshot(10, vec![tenant(1, 10, 50.0, 100, false)]));
        assert_eq!(actions, vec![Action::SetSloShed { tenant: TenantId(1), shed: true }]);
        // Recovered but hold not expired: stay shed.
        assert!(ctl.observe(&snapshot(50, vec![tenant(1, 10, 1.0, 10, true)])).is_empty());
        // Hold expired but window still hot: stay shed.
        assert!(ctl.observe(&snapshot(200, vec![tenant(1, 10, 8.0, 10, true)])).is_empty());
        // Hold expired and window recovered (below half the budget): release.
        let actions = ctl.observe(&snapshot(200, vec![tenant(1, 10, 3.0, 10, true)]));
        assert_eq!(actions, vec![Action::SetSloShed { tenant: TenantId(1), shed: false }]);
        // An empty (fully decayed) window also counts as recovered.
        let actions = ctl.observe(&snapshot(400, vec![tenant(1, 10, 50.0, 100, false)]));
        assert_eq!(actions.len(), 1, "re-trip");
        let actions = ctl.observe(&snapshot(1_000, vec![tenant(1, 10, 0.0, 0, true)]));
        assert_eq!(actions, vec![Action::SetSloShed { tenant: TenantId(1), shed: false }]);
    }

    #[test]
    fn consecutive_trips_escalate_the_hold_exponentially() {
        let ctl = SloController::new(SloControllerConfig {
            base_hold: Duration::from_millis(100),
            backoff: 4,
            max_hold: Duration::from_secs(1),
            ..Default::default()
        });
        assert_eq!(ctl.hold_after(1), Duration::from_millis(100));
        assert_eq!(ctl.hold_after(2), Duration::from_millis(400));
        assert_eq!(ctl.hold_after(3), Duration::from_secs(1), "capped");
        assert_eq!(ctl.hold_after(30), Duration::from_secs(1), "no overflow at deep escalation");
    }

    #[test]
    fn few_samples_never_trip() {
        let mut ctl =
            SloController::new(SloControllerConfig { min_samples: 16, ..Default::default() });
        let actions = ctl.observe(&snapshot(0, vec![tenant(1, 10, 500.0, 15, false)]));
        assert!(actions.is_empty(), "15 < min_samples must not trip: {actions:?}");
    }

    #[test]
    fn long_healthy_spells_forgive_the_escalation() {
        let mut ctl = SloController::new(SloControllerConfig {
            min_samples: 1,
            base_hold: Duration::from_millis(100),
            backoff: 4,
            max_hold: Duration::from_secs(10),
            forgive_after: Duration::from_millis(500),
            ..Default::default()
        });
        // Trip 1 at t=0: base hold (until 100 ms).
        let actions = ctl.observe(&snapshot(0, vec![tenant(1, 10, 50.0, 100, false)]));
        assert_eq!(actions.len(), 1);
        assert_eq!(ctl.breakers[0].hold_until, Duration::from_millis(100));
        // Released, then re-blown quickly (within the forgiveness
        // window): consecutive offence, hold escalates 4×.
        let actions = ctl.observe(&snapshot(300, vec![tenant(1, 10, 50.0, 100, false)]));
        assert_eq!(actions.len(), 1);
        assert_eq!(ctl.breakers[0].trips, 2);
        assert_eq!(ctl.breakers[0].hold_until, Duration::from_millis(300 + 400));
        // A transient spike long after the hold (700 ms) plus the
        // forgiveness interval (500 ms) have passed: record wiped, the
        // tenant is treated as a first offender again.
        let actions = ctl.observe(&snapshot(5_000, vec![tenant(1, 10, 50.0, 100, false)]));
        assert_eq!(actions.len(), 1);
        assert_eq!(ctl.breakers[0].trips, 1, "escalation must be forgiven");
        assert_eq!(ctl.breakers[0].hold_until, Duration::from_millis(5_000 + 100));
    }

    #[test]
    fn one_congestion_event_trips_only_the_dominant_source() {
        let mut ctl = SloController::new(SloControllerConfig {
            min_samples: 1,
            // A long hold keeps the tripped offender shed for the whole
            // test, so only trip decisions appear in the action streams.
            base_hold: Duration::from_secs(10),
            max_hold: Duration::from_secs(10),
            ..Default::default()
        });
        // Both tenants blow their budgets at once (the offender's flood
        // polluted both windows), but the offender holds far deeper
        // queues — only it is tripped.
        let mut bystander = tenant(1, 10, 80.0, 50, false);
        bystander.queued = 30;
        let mut offender = tenant(2, 10, 80.0, 400, false);
        offender.queued = 128;
        let actions = ctl.observe(&snapshot(100, vec![bystander, offender]));
        assert_eq!(actions, vec![Action::SetSloShed { tenant: TenantId(2), shed: true }]);

        // During the cooldown (2 × 50 ms window span) nobody else is
        // tripped, even though the bystander's window is still hot.
        let mut bystander = tenant(1, 10, 80.0, 50, false);
        bystander.queued = 30;
        let offender_shed = {
            let mut t = tenant(2, 10, 0.0, 0, true);
            t.queued = 0;
            t
        };
        let actions = ctl.observe(&snapshot(150, vec![bystander.clone(), offender_shed.clone()]));
        assert!(actions.is_empty(), "cooldown must protect the bystander: {actions:?}");

        // After the cooldown, a bystander whose window cleaned up (the
        // offender's backlog decayed out) is never shed...
        let recovered = tenant(1, 10, 2.0, 40, false);
        let actions = ctl.observe(&snapshot(250, vec![recovered, offender_shed.clone()]));
        assert!(actions.is_empty(), "{actions:?}");
        // ...while one still blowing its budget on its own traffic earns
        // the next trip.
        let actions = ctl.observe(&snapshot(300, vec![bystander, offender_shed]));
        assert_eq!(actions, vec![Action::SetSloShed { tenant: TenantId(1), shed: true }]);
    }

    #[test]
    fn unbudgeted_tenants_are_ignored() {
        let mut ctl = SloController::default();
        let mut t = tenant(1, 10, 500.0, 100, false);
        t.slo_p99 = None;
        assert!(ctl.observe(&snapshot(0, vec![t])).is_empty());
    }

    #[test]
    fn config_validation_rejects_degenerate_settings() {
        assert!(SloControllerConfig::default().validate().is_ok());
        assert!(SloControllerConfig { release_fraction: 0.0, ..Default::default() }
            .validate()
            .is_err());
        assert!(SloControllerConfig { release_fraction: 1.5, ..Default::default() }
            .validate()
            .is_err());
        assert!(SloControllerConfig { base_hold: Duration::ZERO, ..Default::default() }
            .validate()
            .is_err());
        assert!(SloControllerConfig { backoff: 0, ..Default::default() }.validate().is_err());
        assert!(SloControllerConfig {
            base_hold: Duration::from_secs(2),
            max_hold: Duration::from_secs(1),
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ControlConfig::default().validate().is_ok());
        assert!(ControlConfig { tick: Duration::ZERO, ..Default::default() }.validate().is_err());
        assert!(ControlConfig { window_slots: 0, ..Default::default() }.validate().is_err());
        assert_eq!(
            ControlConfig {
                window_slot: Duration::from_millis(50),
                window_slots: 8,
                ..Default::default()
            }
            .window_span(),
            Duration::from_millis(400)
        );
    }
}
