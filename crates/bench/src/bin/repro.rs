//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale quick|full] <experiment>...
//! repro all                      # every experiment, paper order
//! repro list                     # available experiment ids
//! repro check-bench [current] [baseline]
//!                                # gate a serve sweep against the
//!                                # checked-in baseline (CI bench gate)
//! ```

use bandana_bench::experiments::{run_by_id, ALL_EXPERIMENTS};
use bandana_bench::Scale;
use std::process::ExitCode;

fn usage() -> String {
    format!(
        "usage: repro [--scale quick|full] <experiment>...\n\
         \x20      repro check-bench [current.json] [baseline.json]\n\
         experiments: {}  (or `all`)",
        ALL_EXPERIMENTS.join(", ")
    )
}

/// The `check-bench` subcommand: compares `current` (default
/// `BENCH_serve.json`) against `baseline` (default
/// `BENCH_baseline_serve.json`) with the generous tolerance bands of
/// `bandana_bench::baseline`. To re-baseline after an intentional change:
/// `repro --scale quick serve serve-drift serve-restart serve-rebudget
/// serve-relayout && cp BENCH_serve.json BENCH_baseline_serve.json`.
fn check_bench(args: &[String]) -> ExitCode {
    let current_path = args.first().map(String::as_str).unwrap_or("BENCH_serve.json");
    let baseline_path = args.get(1).map(String::as_str).unwrap_or("BENCH_baseline_serve.json");
    let read = |path: &str| -> Result<bandana_bench::BenchDoc, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        bandana_bench::parse_document(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let (current, baseline) = match (read(current_path), read(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("check-bench: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    match bandana_bench::check_serve(&current, &baseline) {
        Ok(report) => {
            for line in report {
                println!("ok: {line}");
            }
            println!("check-bench: {current_path} within tolerance of {baseline_path}");
            ExitCode::SUCCESS
        }
        Err(failures) => {
            for line in failures {
                eprintln!("FAIL: {line}");
            }
            eprintln!(
                "check-bench: {current_path} regressed against {baseline_path}\n\
                 (intentional change? re-baseline with:\n\
                 \x20 cargo run --release -p bandana-bench --bin repro -- --scale quick serve \
                 serve-drift serve-restart serve-rebudget serve-relayout\n\
                 \x20 cp BENCH_serve.json BENCH_baseline_serve.json)"
            );
            ExitCode::FAILURE
        }
    }
}

/// The actionable reorder recipe shown by every ordering error.
const MERGE_RECIPE: &str =
    "\x20 cargo run --release -p bandana-bench --bin repro -- --scale quick serve serve-drift \
     serve-restart serve-rebudget serve-relayout";

/// Rejects experiment orderings that would corrupt `BENCH_serve.json`.
///
/// `serve-drift` and `serve-restart` *merge* their rows into the sweep
/// document `serve` writes; `serve` rewrites that document from
/// scratch. Running a merging experiment first therefore either
/// produces a merge-only document (no sweep rows — `check-bench` fails
/// on every missing row with no hint why) or, with `serve` later in the
/// same invocation, has its rows silently clobbered. Both used to fail
/// long after the mistake; now the ordering is checked up front.
/// `sweep_on_disk` says whether an existing `BENCH_serve.json` already
/// carries sweep rows from a prior `serve` run, which makes a
/// merge-only invocation legitimate. (The merging experiments commute
/// with each other — each preserves the other's rows — so only their
/// order relative to `serve` matters.)
fn merge_ordering_error(ids: &[String], sweep_on_disk: bool, merge_id: &str) -> Option<String> {
    let merge = ids.iter().position(|id| id == merge_id)?;
    let serve = ids.iter().position(|id| id == "serve");
    match serve {
        Some(s) if s < merge => None,
        Some(_) => Some(format!(
            "{merge_id} is listed before serve: `serve` rewrites BENCH_serve.json from \
             scratch and would clobber the {merge_id} rows just merged into it.\n\
             Reorder the experiments so serve runs first, e.g.:\n{MERGE_RECIPE}"
        )),
        None if sweep_on_disk => None,
        None => Some(format!(
            "{merge_id} merges its rows into the serve sweep's BENCH_serve.json, but there \
             is no sweep document to merge into (BENCH_serve.json is missing, unparsable, or \
             has no sweep rows) — the result would be a merge-only document that `repro \
             check-bench` rejects as a shrunken sweep.\n\
             Run the sweep first in the same invocation:\n{MERGE_RECIPE}"
        )),
    }
}

/// Checks every merging experiment's ordering (first error wins).
fn ordering_error(ids: &[String], sweep_on_disk: bool) -> Option<String> {
    ["serve-drift", "serve-restart", "serve-rebudget", "serve-relayout"]
        .iter()
        .find_map(|merge_id| merge_ordering_error(ids, sweep_on_disk, merge_id))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("quick") => scale = Scale::Quick,
                    Some("full") => scale = Scale::Full,
                    other => {
                        eprintln!("bad --scale value {other:?}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "list" => {
                println!("{}", ALL_EXPERIMENTS.join("\n"));
                return ExitCode::SUCCESS;
            }
            "check-bench" => {
                return check_bench(&args[i + 1..]);
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(&id.as_str()) {
            eprintln!("unknown experiment {id:?}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    // Sweep rows are the ones carrying no merge marker: drift rows carry
    // `slo_on`, restart rows carry `restart`, rebudget rows `rebudget`,
    // relayout rows `relayout`.
    let sweep_on_disk = std::fs::read_to_string("BENCH_serve.json")
        .ok()
        .and_then(|text| bandana_bench::parse_document(&text).ok())
        .is_some_and(|doc| {
            doc.rows.iter().any(|r| {
                !r.contains_key("slo_on")
                    && !r.contains_key("restart")
                    && !r.contains_key("rebudget")
                    && !r.contains_key("relayout")
            })
        });
    if let Some(message) = ordering_error(&ids, sweep_on_disk) {
        eprintln!("{message}");
        return ExitCode::FAILURE;
    }
    for id in &ids {
        let started = std::time::Instant::now();
        let artifact = run_by_id(id, scale);
        println!("=== {id} (scale: {scale}) ===");
        println!("{artifact}");
        println!("[{id} took {:.1}s]\n", started.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::ordering_error;

    fn ids(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn drift_ordering_is_validated() {
        // The healthy orders pass regardless of disk state.
        assert_eq!(ordering_error(&ids(&["serve", "serve-drift"]), false), None);
        assert_eq!(ordering_error(&ids(&["fig2", "serve", "fig3", "serve-drift"]), false), None);
        // No drift requested: nothing to check.
        assert_eq!(ordering_error(&ids(&["serve"]), false), None);
        // Drift before serve clobbers the merge — always an error.
        let msg = ordering_error(&ids(&["serve-drift", "serve"]), true)
            .expect("drift-before-serve must be rejected");
        assert!(msg.contains("serve-drift is listed before serve"), "{msg}");
        assert!(msg.contains("serve serve-drift"), "actionable recipe missing: {msg}");
        // Drift alone is fine only when a sweep document already exists.
        assert_eq!(ordering_error(&ids(&["serve-drift"]), true), None);
        let msg = ordering_error(&ids(&["serve-drift"]), false)
            .expect("drift without a sweep document must be rejected");
        assert!(msg.contains("no sweep document"), "{msg}");
        assert!(msg.contains("serve serve-drift"), "actionable recipe missing: {msg}");
    }

    #[test]
    fn restart_ordering_is_validated() {
        // The full healthy pipeline passes.
        assert_eq!(ordering_error(&ids(&["serve", "serve-drift", "serve-restart"]), false), None);
        // The merging experiments commute: restart before drift is fine
        // as long as serve leads.
        assert_eq!(ordering_error(&ids(&["serve", "serve-restart", "serve-drift"]), false), None);
        // Restart before serve clobbers the merge — always an error.
        let msg = ordering_error(&ids(&["serve-restart", "serve"]), true)
            .expect("restart-before-serve must be rejected");
        assert!(msg.contains("serve-restart is listed before serve"), "{msg}");
        assert!(msg.contains("serve serve-drift"), "actionable recipe missing: {msg}");
        assert!(msg.contains("serve-restart"), "recipe names the restart scenario: {msg}");
        // Restart alone is fine only when a sweep document already
        // exists on disk.
        assert_eq!(ordering_error(&ids(&["serve-restart"]), true), None);
        let msg = ordering_error(&ids(&["serve-restart"]), false)
            .expect("restart without a sweep document must be rejected");
        assert!(msg.contains("no sweep document"), "{msg}");
    }

    #[test]
    fn rebudget_ordering_is_validated() {
        // The full healthy pipeline passes, in any merge order.
        let all =
            ids(&["serve", "serve-drift", "serve-restart", "serve-rebudget", "serve-relayout"]);
        assert_eq!(ordering_error(&all, false), None);
        assert_eq!(ordering_error(&ids(&["serve", "serve-rebudget", "serve-drift"]), false), None);
        // Rebudget before serve clobbers the merge — always an error.
        let msg = ordering_error(&ids(&["serve-rebudget", "serve"]), true)
            .expect("rebudget-before-serve must be rejected");
        assert!(msg.contains("serve-rebudget is listed before serve"), "{msg}");
        assert!(msg.contains("serve-rebudget"), "recipe names the rebudget scenario: {msg}");
        // Rebudget alone is fine only when a sweep document already
        // exists on disk.
        assert_eq!(ordering_error(&ids(&["serve-rebudget"]), true), None);
        let msg = ordering_error(&ids(&["serve-rebudget"]), false)
            .expect("rebudget without a sweep document must be rejected");
        assert!(msg.contains("no sweep document"), "{msg}");
    }

    #[test]
    fn relayout_ordering_is_validated() {
        // Relayout merges like the others: serve must lead.
        assert_eq!(ordering_error(&ids(&["serve", "serve-relayout"]), false), None);
        let msg = ordering_error(&ids(&["serve-relayout", "serve"]), true)
            .expect("relayout-before-serve must be rejected");
        assert!(msg.contains("serve-relayout is listed before serve"), "{msg}");
        assert!(msg.contains("serve-relayout"), "recipe names the relayout scenario: {msg}");
        // Relayout alone is fine only when a sweep document already
        // exists on disk.
        assert_eq!(ordering_error(&ids(&["serve-relayout"]), true), None);
        let msg = ordering_error(&ids(&["serve-relayout"]), false)
            .expect("relayout without a sweep document must be rejected");
        assert!(msg.contains("no sweep document"), "{msg}");
    }
}
