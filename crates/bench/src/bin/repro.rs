//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale quick|full] <experiment>...
//! repro all                      # every experiment, paper order
//! repro list                     # available experiment ids
//! ```

use bandana_bench::experiments::{run_by_id, ALL_EXPERIMENTS};
use bandana_bench::Scale;
use std::process::ExitCode;

fn usage() -> String {
    format!(
        "usage: repro [--scale quick|full] <experiment>...\n\
         experiments: {}  (or `all`)",
        ALL_EXPERIMENTS.join(", ")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("quick") => scale = Scale::Quick,
                    Some("full") => scale = Scale::Full,
                    other => {
                        eprintln!("bad --scale value {other:?}\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "list" => {
                println!("{}", ALL_EXPERIMENTS.join("\n"));
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "-h" | "--help" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(&id.as_str()) {
            eprintln!("unknown experiment {id:?}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    for id in &ids {
        let started = std::time::Instant::now();
        let artifact = run_by_id(id, scale);
        println!("=== {id} (scale: {scale}) ===");
        println!("{artifact}");
        println!("[{id} took {:.1}s]\n", started.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
