//! Figure 16: effective-bandwidth increase vs embedding vector size.
//!
//! Smaller vectors pack more per 4 KB block (64 B → 64, 128 B → 32,
//! 256 B → 16), so each block read can prefetch more useful neighbours. The
//! cache still holds the same *number* of vectors (its byte size scales
//! with the vector size, as in the paper).
//!
//! **Paper shape:** gains are highest at 64 B and lowest at 256 B, for
//! every table that benefits from prefetching at all.

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_cache::{allocate_dram, AdmissionPolicy, HitRateCurve};
use bandana_core::{effective_bandwidth_sweep, tune_thresholds, TunerConfig};
use bandana_partition::BlockLayout;
use bandana_trace::StackDistances;
use serde::{Deserialize, Serialize};

/// Vector sizes swept (bytes).
pub const VECTOR_SIZES: [usize; 3] = [64, 128, 256];

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// 1-based table number.
    pub table: usize,
    /// Vector size in bytes.
    pub vector_bytes: usize,
    /// Effective-bandwidth increase.
    pub gain: f64,
}

/// Runs the vector-size sweep.
pub fn run(scale: Scale) -> Vec<Row> {
    let w = super::common::workload(scale);
    let weights = super::common::lookup_weights(&w);
    let freqs = super::common::frequencies(&w);
    let total = scale.default_total_cache();

    // Hit-rate curves and DRAM division are byte-size independent (the
    // cache is sized in vectors).
    let sizes: Vec<usize> = [64usize, 16, 8, 4, 2, 1].iter().map(|d| (total / d).max(1)).collect();
    let curves: Vec<HitRateCurve> = (0..w.spec.num_tables())
        .map(|t| {
            let stream = w.train.table_stream(t);
            let mut sd = StackDistances::with_capacity(stream.len().max(1));
            sd.access_all(stream.iter().map(|&v| v as u64));
            HitRateCurve::new(sd.hit_rate_curve(&sizes))
        })
        .collect();
    let capacities: Vec<usize> = allocate_dram(total, &curves, &weights, (total / 64).max(1))
        .into_iter()
        .map(|c| c.max(1))
        .collect();

    let mut rows = Vec::new();
    for &vb in &VECTOR_SIZES {
        let vectors_per_block = 4096 / vb;
        let layouts: Vec<BlockLayout> = (0..w.spec.num_tables())
            .map(|t| super::common::shp_layout_with_block(&w, t, scale, vectors_per_block))
            .collect();
        let policies: Vec<AdmissionPolicy> = (0..w.spec.num_tables())
            .map(|t| {
                let chosen = tune_thresholds(
                    &layouts[t],
                    &freqs[t],
                    &w.train.table_stream(t),
                    &TunerConfig {
                        cache_capacity: capacities[t],
                        sampling_rate: 0.25,
                        candidate_thresholds: super::fig12::thresholds(scale),
                        salt: super::common::SEED,
                    },
                );
                AdmissionPolicy::Threshold { t: chosen }
            })
            .collect();
        let gains =
            effective_bandwidth_sweep(&w.eval, &layouts, &freqs, &capacities, &policies, 1.5);
        for g in gains {
            rows.push(Row { table: g.table + 1, vector_bytes: vb, gain: g.gain });
        }
    }
    rows
}

/// Renders the figure artifact.
pub fn render(rows: &[Row]) -> String {
    let mut header = vec!["table".to_string()];
    header.extend(VECTOR_SIZES.iter().map(|v| format!("{v} B")));
    let mut t = TextTable::new(header);
    for table in 1..=8usize {
        let mut cells = vec![table.to_string()];
        for &vb in &VECTOR_SIZES {
            cells.push(
                rows.iter()
                    .find(|r| r.table == table && r.vector_bytes == vb)
                    .map(|r| pct(r.gain))
                    .unwrap_or_default(),
            );
        }
        t.row(cells);
    }
    format!("Figure 16: effective-bandwidth increase vs embedding vector size\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        let gain = |table: usize, vb: usize| {
            rows.iter().find(|r| r.table == table && r.vector_bytes == vb).unwrap().gain
        };
        // Smaller vectors pack more per block: 64 B beats 256 B on the hot
        // table.
        assert!(
            gain(2, 64) > gain(2, 256),
            "table 2: 64 B {} should beat 256 B {}",
            gain(2, 64),
            gain(2, 256)
        );
        // At 64 B the hot table posts a clear positive gain.
        assert!(gain(2, 64) > 0.1, "table 2 @64B: {}", gain(2, 64));
    }

    #[test]
    fn render_lists_sizes() {
        let s = render(&run(Scale::Quick));
        for vb in VECTOR_SIZES {
            assert!(s.contains(&format!("{vb} B")));
        }
    }
}
