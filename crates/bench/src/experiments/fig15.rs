//! Figure 15: end-to-end gain vs SHP training-set size (limited cache).
//!
//! Like Figure 9 but with the full limited-cache pipeline: SHP trained on
//! 0.2×, 1×, 5× the base trace, thresholds tuned, gains measured against
//! the baseline on a fixed evaluation trace.
//!
//! **Paper shape:** every table's gain grows (or holds) with more training
//! data; table 2 approaches its Figure 13 ceiling.

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_core::pipeline::{run_pipeline_on_traces, PipelineConfig};
use bandana_core::PartitionerKind;
use bandana_trace::{ModelSpec, TraceGenerator};
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// 1-based table number.
    pub table: usize,
    /// Training-set size in requests.
    pub train_requests: usize,
    /// Effective-bandwidth increase.
    pub gain: f64,
}

/// Runs the training-size sweep through the full pipeline.
pub fn run(scale: Scale) -> Vec<Row> {
    let spec = ModelSpec::paper_scaled(scale.spec_scale());
    let mut rows = Vec::new();
    for &train_requests in &super::fig09::training_sizes(scale) {
        let mut generator = TraceGenerator::new(&spec, super::common::SEED);
        let train = generator.generate_requests(train_requests);
        let eval = generator.generate_requests(scale.eval_requests());
        let config = PipelineConfig {
            spec: spec.clone(),
            train_requests,
            eval_requests: scale.eval_requests(),
            partitioner: PartitionerKind::Shp { iterations: scale.shp_iterations() },
            cache_vectors_total: scale.default_total_cache(),
            admission: None,
            candidate_thresholds: super::fig12::thresholds(scale),
            mini_sampling_rate: 0.25,
            allocate_by_hit_rate_curves: true,
            shadow_multiplier: 1.5,
            seed: super::common::SEED,
        };
        let report = run_pipeline_on_traces(&config, &generator, &train, &eval);
        for g in &report.tables {
            rows.push(Row { table: g.table + 1, train_requests, gain: g.gain });
        }
    }
    rows
}

/// Renders the figure artifact.
pub fn render(rows: &[Row]) -> String {
    let mut sizes: Vec<usize> = rows.iter().map(|r| r.train_requests).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut header = vec!["table".to_string()];
    header.extend(sizes.iter().map(|s| format!("{s} reqs")));
    let mut t = TextTable::new(header);
    for table in 1..=8usize {
        let mut cells = vec![table.to_string()];
        for &s in &sizes {
            cells.push(
                rows.iter()
                    .find(|r| r.table == table && r.train_requests == s)
                    .map(|r| pct(r.gain))
                    .unwrap_or_default(),
            );
        }
        t.row(cells);
    }
    format!(
        "Figure 15: end-to-end gain vs SHP training size (limited cache, tuned thresholds)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        let sizes = super::super::fig09::training_sizes(Scale::Quick);
        let gain = |table: usize, s: usize| {
            rows.iter().find(|r| r.table == table && r.train_requests == s).unwrap().gain
        };
        // More training data helps the hot table.
        assert!(
            gain(2, sizes[2]) >= gain(2, sizes[0]),
            "table 2: 5x {} vs 0.2x {}",
            gain(2, sizes[2]),
            gain(2, sizes[0])
        );
        // With the most training data, the overall picture is positive.
        let mean: f64 = (1..=8).map(|t| gain(t, sizes[2])).sum::<f64>() / 8.0;
        assert!(mean > 0.0, "mean gain at 5x training: {mean}");
    }
}
