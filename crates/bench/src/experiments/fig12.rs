//! Figure 12: frequency-threshold admission (table 2, SHP layout).
//!
//! Prefetched vectors are admitted only if they appeared in more than `t`
//! training queries, for t ∈ {5, 10, 15, 20} across cache sizes; gains are
//! relative to the no-prefetch baseline.
//!
//! **Paper shape:** this is the policy that finally wins: clearly positive
//! gains at every cache size, with smaller caches preferring higher
//! (more conservative) thresholds and larger caches preferring lower ones.

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_cache::{AdmissionPolicy, PrefetchCacheSim};
use bandana_partition::AccessFrequency;
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Admission threshold.
    pub threshold: u32,
    /// Cache size in vectors.
    pub cache_size: usize,
    /// Effective-bandwidth increase over no prefetching.
    pub gain: f64,
}

/// Thresholds swept (the paper's x-axis).
pub fn thresholds(scale: Scale) -> Vec<u32> {
    match scale {
        // Scaled traces have fewer queries per vector, so the sensible
        // threshold range shifts down while keeping the paper's 4-point
        // spread.
        Scale::Quick => vec![1, 2, 4, 8],
        Scale::Full => vec![2, 5, 10, 15],
    }
}

/// Runs the threshold sweep on table 2.
pub fn run(scale: Scale) -> Vec<Row> {
    let w = super::common::workload(scale);
    let t2 = super::common::TABLE2;
    let layout = super::common::shp_layout(&w, t2, scale);
    let freq =
        AccessFrequency::from_queries(w.spec.tables[t2].num_vectors, w.train.table_queries(t2));
    let stream = w.eval.table_stream(t2);

    let mut rows = Vec::new();
    for &cache in &scale.table2_cache_sizes() {
        let reads = |policy: AdmissionPolicy| {
            let mut sim = PrefetchCacheSim::new(&layout, cache, policy, freq.clone());
            for &v in &stream {
                sim.lookup(v);
            }
            sim.metrics().block_reads
        };
        let baseline = reads(AdmissionPolicy::None);
        for &t in &thresholds(scale) {
            let r = reads(AdmissionPolicy::Threshold { t });
            rows.push(Row {
                threshold: t,
                cache_size: cache,
                gain: baseline as f64 / r as f64 - 1.0,
            });
        }
    }
    rows
}

/// Renders the figure artifact.
pub fn render(rows: &[Row]) -> String {
    let mut ts: Vec<u32> = rows.iter().map(|r| r.threshold).collect();
    ts.sort_unstable();
    ts.dedup();
    let mut caches: Vec<usize> = rows.iter().map(|r| r.cache_size).collect();
    caches.sort_unstable();
    caches.dedup();
    let mut header = vec!["threshold".to_string()];
    header.extend(caches.iter().map(|c| format!("cache {c}")));
    let mut t = TextTable::new(header);
    for &th in &ts {
        let mut cells = vec![th.to_string()];
        for &c in &caches {
            cells.push(
                rows.iter()
                    .find(|r| r.threshold == th && r.cache_size == c)
                    .map(|r| pct(r.gain))
                    .unwrap_or_default(),
            );
        }
        t.row(cells);
    }
    format!(
        "Figure 12: frequency-threshold prefetch admission on table 2 (vs no prefetching)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        // The headline claim: threshold admission produces positive gains.
        let best = rows.iter().cloned().fold(f64::MIN, |acc, r| acc.max(r.gain));
        assert!(best > 0.0, "no positive gain anywhere: {rows:?}");
        // Larger caches support lower thresholds: the best threshold for
        // the largest cache is <= the best threshold for the smallest.
        let caches = Scale::Quick.table2_cache_sizes();
        let best_t = |cache: usize| {
            rows.iter()
                .filter(|r| r.cache_size == cache)
                .max_by(|a, b| a.gain.partial_cmp(&b.gain).unwrap())
                .unwrap()
                .threshold
        };
        let small = best_t(caches[0]);
        let large = best_t(*caches.last().unwrap());
        assert!(
            large <= small,
            "largest cache should prefer threshold <= smallest's ({large} vs {small})"
        );
        // Gains grow with cache size at a fixed threshold.
        let t0 = thresholds(Scale::Quick)[1];
        let gain_at = |cache: usize| {
            rows.iter().find(|r| r.cache_size == cache && r.threshold == t0).unwrap().gain
        };
        assert!(gain_at(*caches.last().unwrap()) >= gain_at(caches[0]));
    }

    #[test]
    fn render_is_a_grid() {
        let s = render(&run(Scale::Quick));
        assert!(s.contains("threshold"));
        assert!(s.contains("cache"));
    }
}
