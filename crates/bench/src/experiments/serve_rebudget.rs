//! Online DRAM re-budgeting under hot-table migration: the cache budget
//! controller on vs off on identical traffic.
//!
//! The store's build-time DRAM division (Dynacache-style, §4.3.3) is
//! solved once, from the *training* trace. This scenario asks what
//! happens when production traffic then migrates: the training trace and
//! the first serving phase hammer one table, so the build split hands
//! that table nearly the whole budget — and mid-run the hot working set
//! moves to the *other* table, whose build-time cache share is a sliver.
//! Two engines serve the identical request stream:
//!
//! * **controller-on** — the engine runs the
//!   [`CacheBudgetController`](bandana_serve::CacheBudgetSettings): shard
//!   workers feed it per-table access samples, it folds them into online
//!   hit-rate curves, re-solves the division against the same fixed
//!   total budget, and live-applies the new split. Within a few solve
//!   windows of the migration the newly-hot table holds most of the
//!   DRAM and the tail-window hit rate recovers to its pre-drift level.
//! * **controller-off** — same store, same traffic, no controller. The
//!   build-time split is frozen, the newly-hot table thrashes its
//!   sliver, and the post-drift hit rate (and p99, since every miss pays
//!   a simulated device read) stays degraded for the rest of the run.
//!
//! One row per arm is merged into `BENCH_serve.json` (the `rebudget`
//! field distinguishes the arms; the sweep's, drift's, and restart's
//! rows are preserved). `repro check-bench` gates the claim
//! structurally: the on arm's post-drift hit rate must sit within a band
//! of its pre-drift level with its p99 under the off arm's, the off arm
//! must stay degraded, the on arm must show applied `SetCachePartition`
//! audit evidence, and the off arm must show none.

use crate::output::{JsonObject, TextTable};
use crate::scale::Scale;
use bandana_core::BandanaStore;
use bandana_serve::{CacheBudgetSettings, ControlConfig, ServeConfig, ShardedEngine};
use bandana_trace::{
    EmbeddingTable, ModelSpec, Request, TableQuery, TableSpec, Trace, TraceGenerator,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One shard: the arms' contrast is cache-determined, and on a 1-CPU
/// host extra worker threads only add scheduling noise to the p99s the
/// gate compares.
const SHARDS: usize = 1;
/// Window 0 = drain immediately; the sequential replay produces
/// single-request batches and the timed wakeup's jitter would pollute
/// the tail-window p99s.
const BATCH_WINDOW_US: u64 = 0;
const MAX_BATCH: usize = 16;
/// Device queue depth 1: every miss pays the device's full QD1 read
/// latency instead of pipelining down to a fraction of it. This is the
/// paper's low-depth operating point (Fig. 2's left edge) and it is what
/// makes the arms' tail p99s a *cache* story — ~120 misses cost a
/// degraded request ~1.3 ms, far above any host scheduling noise.
const BATCH_DEPTH: u32 = 1;
/// Closed-loop replay: `load_pct` is a label, picked outside the
/// sweep's 25–90% band and off the restart scenario's 100.
const REBUDGET_LOAD_PCT: u32 = 120;
/// Total DRAM budget (vectors) both arms run under — fixed; the
/// controller only ever moves capacity, never grows it.
const TOTAL_CACHE: usize = 1024;
/// Hot lookups per request, drawn uniformly over [`HOT_KEYS`] (the
/// paper's tables average 17.7–92.8 lookups per request). Sized so a
/// thrashing request misses ~120 times and, at device queue depth 1,
/// pays ~1.3 ms of simulated reads — a tail cost that decisively
/// dominates the 1-CPU host's scheduling noise, which is what lets the
/// gate compare the arms' p99s.
const HOT_LOOKUPS: usize = 128;
/// The hot table's working set: larger than any fair share of
/// [`TOTAL_CACHE`] but mostly coverable when one table holds nearly the
/// whole budget — so where the budget sits decides the hit rate.
const HOT_KEYS: u32 = 1200;
/// The cold table's working set: one lookup per request over a few keys,
/// cacheable in a sliver — the traffic that keeps the cold table's
/// online curve alive without competing for budget.
const COLD_KEYS: u32 = 16;
/// The table the training trace and the first serving phase hammer (the
/// build split hands it nearly the whole budget).
const PRE_HOT_TABLE: usize = 0;
/// The table the hot set migrates to mid-run.
const POST_HOT_TABLE: usize = 1;

/// The controller's tuning for the scenario: one solve per ~127 requests
/// (1,024 samples at 129 lookups/request, every 16th lookup sampled), so
/// ~3 solves land between the migration and the measured tail window.
/// `sample_every: 16` matters on a 1-CPU host: samples are folded into
/// the miniature caches tick by tick on the bus thread, and sampling
/// every lookup would make that per-tick fold preempt the shard worker
/// for longer than the off arm's whole miss penalty — poisoning the very
/// tail-window p99 the gate compares. The window is a full 1,024 samples
/// so each solve sees a low-noise curve and hysteresis can hold the
/// converged split still instead of flapping it (every flap's shrink
/// evicts entries inline on the worker thread).
fn budget_settings() -> CacheBudgetSettings {
    CacheBudgetSettings {
        window_lookups: 1_024,
        sample_every: 16,
        granularity: 32,
        ..CacheBudgetSettings::default()
    }
}

/// One arm's measured outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebudgetServeRow {
    /// Micro-batch window (matches the serve sweep's batched pipeline).
    pub window_us: u64,
    /// Label identifying the rebudget rows' operating point.
    pub load_pct: u32,
    /// Whether the cache budget controller ran in this arm.
    pub rebudget: bool,
    /// Requests completed across the whole run.
    pub completed: u64,
    /// DRAM hit rate over the tail window of the pre-drift phase.
    pub hit_rate_pre: f64,
    /// DRAM hit rate over the tail window of the post-drift phase — the
    /// figure the controller exists to recover.
    pub hit_rate_post: f64,
    /// Client-observed p99 over the pre-drift tail window, in seconds.
    pub p99_pre_s: f64,
    /// Client-observed p99 over the post-drift tail window.
    pub p99_post_s: f64,
    /// Device block reads issued serving the post-drift tail window.
    pub device_reads_post: u64,
    /// Re-division solves the controller ran (zero in the off arm).
    pub rebudget_solves: u64,
    /// `SetCachePartition` commands applied to shards (zero off).
    pub rebudget_applied: u64,
    /// `SetCachePartition` entries in the audit log (zero off).
    pub partition_moves: u64,
    /// Final cache capacity of the post-drift hot table, in entries.
    pub hot_capacity_final: u64,
    /// Lifetime mean / p50 / p99 / p99.9 latency in seconds.
    pub mean_s: f64,
    /// Lifetime p50.
    pub p50_s: f64,
    /// Lifetime p99.
    pub p99_s: f64,
    /// Lifetime p99.9.
    pub p999_s: f64,
    /// Steady-state heap allocations per lookup on the worker read path
    /// with a controller-applied re-partition live (−1 when the counting
    /// allocator is off; gated to exactly 0 when counted).
    pub steady_allocs_per_lookup: f64,
}

/// The sizing knobs, split out so the unit test can run a miniature
/// version of the scenario.
#[derive(Debug, Clone, Copy)]
struct RebudgetParams {
    /// Requests in the pre-drift phase (hot set on [`PRE_HOT_TABLE`]).
    phase_a: usize,
    /// Requests in the post-drift phase (hot set on [`POST_HOT_TABLE`]).
    phase_b: usize,
    /// Tail-window length, in requests, over which each phase's hit rate
    /// and p99 are measured.
    window: usize,
    /// Requests in the hand-rolled training trace (phase-A-shaped, so
    /// the build split favors [`PRE_HOT_TABLE`]).
    train_requests: usize,
}

fn params(scale: Scale) -> RebudgetParams {
    match scale {
        // Phase B leaves the controller ~3 solve windows between the
        // migration and the measured tail, and the tail starts after the
        // re-grown cache has refilled (~15 requests of 128 hot lookups).
        Scale::Quick => {
            RebudgetParams { phase_a: 400, phase_b: 600, window: 200, train_requests: 300 }
        }
        Scale::Full => {
            RebudgetParams { phase_a: 800, phase_b: 1200, window: 400, train_requests: 600 }
        }
    }
}

/// The deterministic pseudo-random draw both phases (and both arms) are
/// built from: uniform draws give the smooth, monotone hit-rate curves
/// (hit rate ≈ capacity / working set) the greedy allocator climbs —
/// a cyclic scan would give LRU flat-zero curves below the working set.
fn lcg(state: &mut u64, keys: u32) -> u32 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 33) as u32) % keys
}

/// One phase of traffic: every request draws [`HOT_LOOKUPS`] uniform
/// keys from the hot table and one from the other (cold) table.
fn phase_requests(hot_table: usize, count: usize, rng: &mut u64) -> Vec<Request> {
    let cold_table = 1 - hot_table;
    (0..count)
        .map(|_| {
            let hot: Vec<u32> = (0..HOT_LOOKUPS).map(|_| lcg(rng, HOT_KEYS)).collect();
            let cold = vec![lcg(rng, COLD_KEYS)];
            Request {
                queries: vec![TableQuery::new(hot_table, hot), TableQuery::new(cold_table, cold)],
            }
        })
        .collect()
}

struct RebudgetInputs {
    spec: ModelSpec,
    embeddings: Vec<EmbeddingTable>,
    train: Trace,
    phase_a: Vec<Request>,
    phase_b: Vec<Request>,
}

/// The two-table model the scenario serves. The 64-dim vectors are the
/// load-bearing choice: at 256 B each, only 16 fit a 4 KB block, so the
/// 1,200-key hot set spans ~75 device blocks and a thrashing request
/// really pays for its misses — with the unit-test spec's 8-dim vectors
/// the whole hot set coalesces into ~10 blocks and a 96%-miss request
/// costs less than one controller solve.
fn rebudget_spec() -> ModelSpec {
    ModelSpec {
        tables: vec![TableSpec::test_small(2_048), TableSpec::test_small(4_096)],
        dim: 64,
        element_bytes: 4,
    }
}

fn build_inputs(p: RebudgetParams) -> RebudgetInputs {
    let spec = rebudget_spec();
    let generator = TraceGenerator::new(&spec, super::common::SEED);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    // The training trace is phase-A-shaped: the build-time DRAM division
    // solves against it and hands PRE_HOT_TABLE nearly the whole budget —
    // the stranded configuration the migration then exposes.
    let mut rng = super::common::SEED ^ 0x2EB0D6E7;
    let train = Trace {
        num_tables: spec.num_tables(),
        requests: phase_requests(PRE_HOT_TABLE, p.train_requests, &mut rng),
    };
    // Both arms replay the identical serving stream: phase A continues
    // the trained traffic shape, phase B migrates the hot set.
    let phase_a = phase_requests(PRE_HOT_TABLE, p.phase_a, &mut rng);
    let phase_b = phase_requests(POST_HOT_TABLE, p.phase_b, &mut rng);
    RebudgetInputs { spec, embeddings, train, phase_a, phase_b }
}

/// Both arms build byte-identical stores: the builder is deterministic
/// in the spec/trace/seed, so the only difference is the controller.
fn build_store(inputs: &RebudgetInputs) -> BandanaStore {
    let config = bandana_core::BandanaConfig::default()
        .with_cache_vectors(TOTAL_CACHE)
        .with_seed(super::common::SEED);
    BandanaStore::build(&inputs.spec, &inputs.embeddings, &inputs.train, config)
        .expect("store builds on the rebudget workload")
}

fn build_config(controller_on: bool) -> ServeConfig {
    let mut config = ServeConfig::default()
        .with_shards(SHARDS)
        .with_batch_window(Duration::from_micros(BATCH_WINDOW_US))
        .with_max_batch(MAX_BATCH)
        .with_device_queue(BATCH_DEPTH)
        // A coarse bus tick: on a 1-CPU host every tick preempts the
        // shard worker, and the gate compares tail p99s across arms —
        // the controller still solves several times per phase because
        // solves are paced by accumulated samples, not ticks.
        .with_control(ControlConfig { tick: Duration::from_millis(5), ..ControlConfig::default() });
    if controller_on {
        config = config.with_cache_budget(budget_settings());
    }
    config
}

/// p99 of a set of per-request wall-clock latencies.
fn p99_of(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((samples.len() as f64 * 0.99).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Serves `requests` sequentially, timing each of the last `window`
/// calls; returns their p99.
fn serve_phase(engine: &ShardedEngine, requests: &[Request], window: usize) -> f64 {
    let split = requests.len().saturating_sub(window.min(requests.len()));
    for request in &requests[..split] {
        engine.serve(request).expect("rebudget arm serves its trace");
    }
    let mut latencies = Vec::with_capacity(requests.len() - split);
    for request in &requests[split..] {
        let started = Instant::now();
        engine.serve(request).expect("rebudget arm serves its trace");
        latencies.push(started.elapsed().as_secs_f64());
    }
    p99_of(&mut latencies)
}

/// Runs one arm over both phases, checkpointing the cache and device
/// counters around each phase's tail window.
fn run_arm(
    inputs: &RebudgetInputs,
    window: usize,
    controller_on: bool,
    steady_allocs: f64,
) -> RebudgetServeRow {
    let engine = ShardedEngine::new(build_store(inputs), build_config(controller_on))
        .expect("rebudget engine configuration is valid");
    let window_a = window.min(inputs.phase_a.len());
    let window_b = window.min(inputs.phase_b.len());

    // Pre-drift phase: warm the caches (and, in the on arm, let the
    // controller settle), then measure the tail window.
    let split_a = inputs.phase_a.len() - window_a;
    serve_phase(&engine, &inputs.phase_a[..split_a], 0);
    let m0 = engine.metrics();
    let p99_pre_s = serve_phase(&engine, &inputs.phase_a[split_a..], window_a);
    let m_pre = engine.metrics();

    // The migration: the hot set moves to POST_HOT_TABLE. The on arm's
    // controller re-solves within a few sample windows; the off arm's
    // build-time split is frozen.
    let split_b = inputs.phase_b.len() - window_b;
    serve_phase(&engine, &inputs.phase_b[..split_b], 0);
    let m_mid = engine.metrics();
    let p99_post_s = serve_phase(&engine, &inputs.phase_b[split_b..], window_b);
    let m_post = engine.metrics();

    let hit_rate = |after: &bandana_serve::EngineMetrics, before: &bandana_serve::EngineMetrics| {
        let hits = after.cache.hits - before.cache.hits;
        let lookups = after.cache.lookups - before.cache.lookups;
        hits as f64 / lookups.max(1) as f64
    };
    let device_reads =
        |m: &bandana_serve::EngineMetrics| m.per_shard.iter().map(|s| s.device_reads).sum::<u64>();
    RebudgetServeRow {
        window_us: BATCH_WINDOW_US,
        load_pct: REBUDGET_LOAD_PCT,
        rebudget: controller_on,
        completed: m_post.completed,
        hit_rate_pre: hit_rate(&m_pre, &m0),
        hit_rate_post: hit_rate(&m_post, &m_mid),
        p99_pre_s,
        p99_post_s,
        device_reads_post: device_reads(&m_post) - device_reads(&m_mid),
        rebudget_solves: m_post.rebudget_solves,
        rebudget_applied: m_post.rebudget_applied,
        partition_moves: m_post
            .audit
            .iter()
            .filter(|e| e.controller == "cache-budget" && e.action.contains("SetCachePartition"))
            .count() as u64,
        hot_capacity_final: m_post
            .cache_partition
            .iter()
            .find(|p| p.table == POST_HOT_TABLE)
            .map_or(0, |p| p.capacity_entries as u64),
        mean_s: m_post.latency.mean_s,
        p50_s: m_post.latency.p50_s,
        p99_s: m_post.latency.p99_s,
        p999_s: m_post.latency.p999_s,
        steady_allocs_per_lookup: steady_allocs,
    }
}

/// Measures steady-state heap allocations per lookup on the worker read
/// path *with the controller's work applied*: the store's tables carry a
/// live re-partition (capacity moved to the post-drift hot table, the
/// way an applied `SetCachePartition` moves it), the block pool is sized
/// to the fixed total the way the engine floors it when the controller
/// is on, and every lookup emits a budget sample into a bounded channel
/// the way the shard worker taps traffic. Two warmup passes, a measured
/// third; deterministic, so the gate demands exactly zero. Returns
/// `None` when the counting allocator is off.
fn steady_state_allocs_per_lookup(inputs: &RebudgetInputs) -> Option<f64> {
    crate::alloc_track::thread_allocations()?;
    let parts = build_store(inputs).into_raw_parts();
    let mut device = parts.device;
    let mut tables = parts.tables;
    let total: usize = tables.iter().map(|t| t.cache_capacity()).sum();
    // The post-drift re-partition the controller converges to: the
    // newly-hot table holds the budget, the other keeps a sliver.
    let sliver = (total / 16).max(1);
    tables[PRE_HOT_TABLE].set_cache_capacity(sliver);
    tables[POST_HOT_TABLE].set_cache_capacity(total - sliver);
    let mut scratch = bandana_core::BatchScratch::new();
    let mut pool = nvm_sim::BlockBufPool::for_cache(total);
    let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, u32, u32)>(4096);
    let mut rng = super::common::SEED ^ 0xA110C;
    let queries: Vec<(usize, Vec<u32>)> = phase_requests(POST_HOT_TABLE, 64, &mut rng)
        .iter()
        .flat_map(|r| r.queries.iter().map(|q| (q.table, q.ids.clone())))
        .collect();
    let mut replay = |tables: &mut Vec<bandana_core::TableStore>,
                      device: &mut nvm_sim::NvmDevice| {
        let mut lookups = 0u64;
        for (t, ids) in &queries {
            tables[*t]
                .lookup_batch_with(device, ids, &mut scratch, &mut pool)
                .expect("rebudget probe ids are valid");
            for &v in ids {
                let _ = tx.try_send((*t, v, 0));
            }
            lookups += ids.len() as u64;
        }
        for _ in rx.try_iter() {}
        lookups
    };
    for _ in 0..2 {
        replay(&mut tables, &mut device);
    }
    let before = crate::alloc_track::thread_allocations()?;
    let lookups = replay(&mut tables, &mut device);
    let after = crate::alloc_track::thread_allocations()?;
    Some((after - before) as f64 / lookups.max(1) as f64)
}

/// Runs the full experiment: identical traffic through the
/// controller-on and controller-off arms.
pub fn run(scale: Scale) -> Vec<RebudgetServeRow> {
    run_with(params(scale))
}

fn run_with(p: RebudgetParams) -> Vec<RebudgetServeRow> {
    let inputs = build_inputs(p);
    let steady_allocs = steady_state_allocs_per_lookup(&inputs).unwrap_or(-1.0);
    vec![
        run_arm(&inputs, p.window, true, steady_allocs),
        // The probe models the on arm's re-partitioned steady state;
        // the off arm's row carries the counting-off sentinel.
        run_arm(&inputs, p.window, false, -1.0),
    ]
}

/// Renders the rebudget table.
pub fn render(rows: &[RebudgetServeRow]) -> String {
    let mut table = TextTable::new(vec![
        "arm",
        "pre hits",
        "post hits",
        "pre p99",
        "post p99",
        "post dev reads",
        "solves",
        "applied",
        "audit moves",
        "hot table cap",
        "completed",
    ]);
    for r in rows {
        table.row(vec![
            if r.rebudget { "budget-on".into() } else { "budget-off".to_string() },
            format!("{:.0}%", r.hit_rate_pre * 100.0),
            format!("{:.0}%", r.hit_rate_post * 100.0),
            bandana_serve::fmt_secs(r.p99_pre_s),
            bandana_serve::fmt_secs(r.p99_post_s),
            r.device_reads_post.to_string(),
            r.rebudget_solves.to_string(),
            r.rebudget_applied.to_string(),
            r.partition_moves.to_string(),
            r.hot_capacity_final.to_string(),
            r.completed.to_string(),
        ]);
    }
    format!(
        "Online DRAM re-budgeting under hot-table migration ({SHARDS} shard, \
         {TOTAL_CACHE}-vector total budget, hot set of {HOT_KEYS} keys moving from \
         table {PRE_HOT_TABLE} to table {POST_HOT_TABLE} mid-run): cache budget \
         controller on vs off on identical traffic. The gate: budget-on recovers its \
         pre-drift tail-window hit rate (p99 under budget-off's) with SetCachePartition \
         audit evidence; budget-off stays degraded on its frozen build-time split.\n{}",
        table.render()
    )
}

/// Renders the rows in `BENCH_serve.json` row format.
fn rows_to_json(rows: &[RebudgetServeRow]) -> Vec<JsonObject> {
    rows.iter()
        .map(|r| {
            JsonObject::new()
                .u64("window_us", r.window_us)
                .u64("load_pct", u64::from(r.load_pct))
                .u64("rebudget", u64::from(r.rebudget))
                .u64("completed", r.completed)
                .f64("hit_rate_pre", r.hit_rate_pre)
                .f64("hit_rate_post", r.hit_rate_post)
                .f64("p99_pre_s", r.p99_pre_s)
                .f64("p99_post_s", r.p99_post_s)
                .u64("device_reads_post", r.device_reads_post)
                .u64("rebudget_solves", r.rebudget_solves)
                .u64("rebudget_applied", r.rebudget_applied)
                .u64("partition_moves", r.partition_moves)
                .u64("hot_capacity_final", r.hot_capacity_final)
                .f64("mean_s", r.mean_s)
                .f64("p50_s", r.p50_s)
                .f64("p99_s", r.p99_s)
                .f64("p999_s", r.p999_s)
                .f64("steady_allocs_per_lookup", r.steady_allocs_per_lookup)
        })
        .collect()
}

/// Merges the rebudget rows into an existing `BENCH_serve.json` document
/// (replacing any previous rebudget rows, keeping everyone else's), or
/// builds a rebudget-only document when none exists.
fn merged_document(existing: Option<&str>, rows: &[RebudgetServeRow]) -> String {
    let mut objects: Vec<JsonObject> = Vec::new();
    if let Some(text) = existing {
        if let Ok(doc) = crate::baseline::parse_document(text) {
            for row in &doc.rows {
                // Rebudget rows carry `rebudget`; everything else is the
                // sweep's, drift's, or restart's and is preserved
                // verbatim (numeric fields are the whole row format).
                if row.contains_key("rebudget") {
                    continue;
                }
                let mut object = JsonObject::new();
                for (k, v) in row {
                    object = object.f64(k, *v);
                }
                objects.push(object);
            }
        }
    }
    objects.extend(rows_to_json(rows));
    crate::output::json_document("serve", objects)
}

/// Runs the experiment and appends its rows to `BENCH_serve.json`
/// alongside the other serve scenarios' (run `repro serve` first; this
/// preserves whatever rows are already there).
pub fn run_and_save(scale: Scale) -> String {
    let rows = run(scale);
    let artifact = render(&rows);
    let existing = std::fs::read_to_string("BENCH_serve.json").ok();
    let json = merged_document(existing.as_deref(), &rows);
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => {
            format!("{artifact}\n[merged {} rebudget rows into BENCH_serve.json]\n", rows.len())
        }
        Err(e) => format!("{artifact}\n[could not write BENCH_serve.json: {e}]\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run: sized for test wall-clock, checking
    /// row structure and the controller-presence invariants that hold at
    /// any size (the recovery claims themselves are gated on the real
    /// run by `repro check-bench`).
    #[test]
    fn miniature_rebudget_run_has_sound_rows() {
        let rows =
            run_with(RebudgetParams { phase_a: 80, phase_b: 140, window: 40, train_requests: 60 });
        assert_eq!(rows.len(), 2, "one controller-on row, one controller-off row");
        let on = rows.iter().find(|r| r.rebudget).expect("on row present");
        let off = rows.iter().find(|r| !r.rebudget).expect("off row present");
        // Both arms served the identical trace to completion.
        assert_eq!(on.completed, off.completed);
        assert!(on.completed > 0);
        // The controller really ran in the on arm — 220 requests at 129
        // lookups sampled every 16th accumulate ~1,770 samples, beyond
        // the 1,024-sample solve window — and never in the off arm.
        assert!(on.rebudget_solves >= 1, "{on:?}");
        assert_eq!(off.rebudget_solves, 0, "{off:?}");
        assert_eq!(off.rebudget_applied, 0, "{off:?}");
        assert_eq!(off.partition_moves, 0, "{off:?}");
        // Applied moves and audit evidence travel together.
        assert_eq!(on.rebudget_applied > 0, on.partition_moves > 0, "{on:?}");
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.hit_rate_pre), "{r:?}");
            assert!((0.0..=1.0).contains(&r.hit_rate_post), "{r:?}");
            assert!(r.p99_pre_s > 0.0 && r.p99_post_s > 0.0, "{r:?}");
            assert!(r.p50_s <= r.p99_s && r.p99_s <= r.p999_s, "{r:?}");
            assert!(r.hot_capacity_final > 0, "{r:?}");
            // The steady-state alloc probe: 0 with the counting
            // allocator on (the on arm carries the measurement), the
            // -1 sentinel otherwise.
            if r.rebudget && crate::alloc_track::thread_allocations().is_some() {
                assert_eq!(r.steady_allocs_per_lookup, 0.0, "{r:?}");
            }
        }
        // The off arm's budget never moves off the build-time split.
        assert!(off.hot_capacity_final < TOTAL_CACHE as u64 / 2, "{off:?}");
    }

    #[test]
    fn renders_and_merges_into_bench_document() {
        let on = RebudgetServeRow {
            window_us: 0,
            load_pct: 120,
            rebudget: true,
            completed: 1000,
            hit_rate_pre: 0.85,
            hit_rate_post: 0.82,
            p99_pre_s: 2e-3,
            p99_post_s: 3e-3,
            device_reads_post: 120,
            rebudget_solves: 12,
            rebudget_applied: 3,
            partition_moves: 3,
            hot_capacity_final: 960,
            mean_s: 1e-3,
            p50_s: 8e-4,
            p99_s: 4e-3,
            p999_s: 8e-3,
            steady_allocs_per_lookup: 0.0,
        };
        let off = RebudgetServeRow {
            rebudget: false,
            hit_rate_post: 0.12,
            p99_post_s: 4e-2,
            device_reads_post: 1500,
            rebudget_solves: 0,
            rebudget_applied: 0,
            partition_moves: 0,
            hot_capacity_final: 32,
            steady_allocs_per_lookup: -1.0,
            ..on
        };
        let rows = vec![on, off];
        let rendered = render(&rows);
        assert!(rendered.contains("budget-on"));
        assert!(rendered.contains("budget-off"));
        assert!(rendered.contains("post hits"));
        assert!(rendered.contains("audit moves"));

        // Merging keeps the sweep's, drift's, and restart's rows,
        // replaces stale rebudget rows, and appends the fresh ones.
        let existing = "{\"experiment\":\"serve\",\"rows\":[\
                        {\"window_us\":200,\"load_pct\":50,\"p99_s\":0.001,\"completed\":60},\
                        {\"window_us\":200,\"load_pct\":400,\"slo_on\":1,\"tenant\":1,\"completed\":9},\
                        {\"window_us\":50,\"load_pct\":100,\"restart\":1,\"completed\":7},\
                        {\"window_us\":0,\"load_pct\":120,\"rebudget\":1,\"completed\":5}]}\n";
        let merged = merged_document(Some(existing), &rows);
        let doc = crate::baseline::parse_document(&merged).expect("merged document parses");
        assert_eq!(doc.experiment, "serve");
        assert_eq!(doc.rows.len(), 5, "sweep + drift + restart + two fresh rebudget rows: {doc:?}");
        assert_eq!(doc.rows[0]["load_pct"], 50.0, "sweep row preserved");
        assert!(doc.rows[1].contains_key("slo_on"), "drift row preserved");
        assert!(doc.rows[2].contains_key("restart"), "restart row preserved");
        assert!(
            !doc.rows.iter().any(|r| r.get("completed") == Some(&5.0)),
            "stale rebudget rows are replaced"
        );
        // Without an existing file the document is rebudget-only.
        let standalone = merged_document(None, &rows);
        let doc = crate::baseline::parse_document(&standalone).expect("standalone parses");
        assert_eq!(doc.rows.len(), 2);
        assert_eq!(doc.rows[0]["rebudget"], 1.0);
        assert_eq!(doc.rows[1]["rebudget"], 0.0);
        assert_eq!(doc.rows[1]["hot_capacity_final"], 32.0);
    }
}
