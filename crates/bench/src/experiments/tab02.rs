//! Table 2: miniature-cache threshold selection vs the full-cache oracle.
//!
//! For each cache size, the oracle picks the threshold maximizing the real
//! (full-size) cache's effective bandwidth; miniature caches at several
//! sampling rates pick their own. Both choices are then *evaluated at full
//! size* and compared.
//!
//! **Paper shape:** even 0.1% sampling picks thresholds whose full-cache
//! gain is close to the oracle's; larger caches choose lower thresholds.
//! (Our caches are 1000× smaller, so the sampled rates scale up
//! correspondingly — see EXPERIMENTS.md.)

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_cache::{AdmissionPolicy, MiniatureCacheSet, PrefetchCacheSim};
use bandana_partition::AccessFrequency;
use serde::{Deserialize, Serialize};

/// One (cache size, sampling rate) cell of the table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Cache size in vectors.
    pub cache_size: usize,
    /// Sampling rate; `1.0` is the full-cache oracle column.
    pub rate: f64,
    /// Chosen threshold.
    pub threshold: u32,
    /// Full-size-cache effective-bandwidth gain of that threshold.
    pub gain: f64,
}

/// Runs the Table 2 study on table 2.
pub fn run(scale: Scale) -> Vec<Row> {
    let w = super::common::workload(scale);
    let t2 = super::common::TABLE2;
    let layout = super::common::shp_layout(&w, t2, scale);
    let freq =
        AccessFrequency::from_queries(w.spec.tables[t2].num_vectors, w.train.table_queries(t2));
    let stream = w.eval.table_stream(t2);
    let candidates = super::fig12::thresholds(scale);

    // Full-size evaluation of one threshold.
    let full_gain = |cache: usize, t: u32| {
        let reads = |policy: AdmissionPolicy| {
            let mut sim = PrefetchCacheSim::new(&layout, cache, policy, freq.clone());
            for &v in &stream {
                sim.lookup(v);
            }
            sim.metrics().block_reads
        };
        reads(AdmissionPolicy::None) as f64 / reads(AdmissionPolicy::Threshold { t }) as f64 - 1.0
    };

    let mut rows = Vec::new();
    for &cache in &scale.table2_cache_sizes() {
        // Oracle: evaluate every candidate at full size.
        let oracle = candidates
            .iter()
            .map(|&t| (t, full_gain(cache, t)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        rows.push(Row { cache_size: cache, rate: 1.0, threshold: oracle.0, gain: oracle.1 });

        // Miniature caches at each sampling rate.
        for &rate in &scale.sampling_rates() {
            let mut minis = MiniatureCacheSet::new(
                &layout,
                &freq,
                cache,
                rate,
                &candidates,
                super::common::SEED,
            );
            for &v in &stream {
                minis.observe(v);
            }
            let chosen = minis.best_threshold();
            rows.push(Row {
                cache_size: cache,
                rate,
                threshold: chosen,
                gain: full_gain(cache, chosen),
            });
        }
    }
    rows
}

/// Renders the table artifact.
pub fn render(rows: &[Row]) -> String {
    let mut rates: Vec<f64> = rows.iter().map(|r| r.rate).collect();
    rates.sort_by(|a, b| b.partial_cmp(a).unwrap());
    rates.dedup();
    let mut header = vec!["size".to_string()];
    for &r in &rates {
        let label =
            if r >= 1.0 { "full cache".to_string() } else { format!("{:.0}% sampling", r * 100.0) };
        header.push(format!("{label}: t"));
        header.push("bw gain".to_string());
    }
    let mut t = TextTable::new(header);
    let mut caches: Vec<usize> = rows.iter().map(|r| r.cache_size).collect();
    caches.sort_unstable();
    caches.dedup();
    for &c in &caches {
        let mut cells = vec![c.to_string()];
        for &rate in &rates {
            let row = rows.iter().find(|r| r.cache_size == c && r.rate == rate).unwrap();
            cells.push(row.threshold.to_string());
            cells.push(pct(row.gain));
        }
        t.row(cells);
    }
    format!(
        "Table 2: miniature-cache threshold selection vs full-cache oracle (table 2)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        let caches = Scale::Quick.table2_cache_sizes();
        for &cache in &caches {
            let oracle = rows.iter().find(|r| r.cache_size == cache && r.rate >= 1.0).unwrap();
            for r in rows.iter().filter(|r| r.cache_size == cache && r.rate < 1.0) {
                // Sampled choices must be near-oracle: within 0.25 absolute
                // gain (the paper's Table 2 shows losses of a few tens of
                // percentage points at worst).
                assert!(
                    oracle.gain - r.gain <= 0.25,
                    "rate {} picked t={} with gain {} vs oracle t={} gain {}",
                    r.rate,
                    r.threshold,
                    r.gain,
                    oracle.threshold,
                    oracle.gain
                );
            }
        }
        // Larger caches pick thresholds <= smaller caches' (oracle column).
        let oracle_t = |cache: usize| {
            rows.iter().find(|r| r.cache_size == cache && r.rate >= 1.0).unwrap().threshold
        };
        assert!(oracle_t(*caches.last().unwrap()) <= oracle_t(caches[0]));
    }

    #[test]
    fn render_has_threshold_columns() {
        let s = render(&run(Scale::Quick));
        assert!(s.contains("full cache"));
        assert!(s.contains("sampling"));
    }
}
