//! Extension: accuracy of approximate MRC estimators (SHARDS, AET).
//!
//! Bandana's miniature caches are one member of a family of cheap hit-rate-
//! curve estimators the paper cites (SHARDS, AET, Counter Stacks). This
//! experiment measures, on the table 2 stream, how close fixed-rate
//! SHARDS, SHARDS-max, AET, and Counter Stacks come to the exact Mattson
//! curve — the same validation SHARDS' own paper reports as mean absolute
//! error (MAE).
//!
//! Expected shape: MAE well under a few points at 10% sampling, degrading
//! gracefully at 1% and 0.1%; AET is close despite needing only reuse
//! times. This justifies driving DRAM allocation from sampled curves.

use crate::output::TextTable;
use crate::scale::Scale;
use bandana_trace::{mean_absolute_error, AetModel, CounterStacks, Shards, StackDistances};
use serde::{Deserialize, Serialize};

/// One estimator's accuracy summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MrcRow {
    /// Estimator label.
    pub estimator: String,
    /// Mean absolute error vs the exact curve.
    pub mae: f64,
    /// Keys the estimator tracked (memory proxy).
    pub tracked_keys: usize,
}

/// Capacities at which the curves are compared.
fn capacities(scale: Scale) -> Vec<usize> {
    scale.table2_cache_sizes().into_iter().chain(scale.total_cache_sizes()).collect()
}

/// Runs every estimator against the exact curve for table 2.
pub fn run(scale: Scale) -> Vec<MrcRow> {
    let w = super::common::workload(scale);
    let t2 = super::common::TABLE2;
    let stream: Vec<u64> = w.eval.table_stream(t2).iter().map(|&v| v as u64).collect();
    let caps = capacities(scale);

    let mut sd = StackDistances::with_capacity(stream.len());
    sd.access_all(stream.iter().copied());
    let exact = sd.hit_rate_curve(&caps);
    let exact_tracked = {
        let mut ids = stream.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };

    let mut rows = vec![MrcRow {
        estimator: "exact (Mattson)".to_string(),
        mae: 0.0,
        tracked_keys: exact_tracked,
    }];

    // At Quick scale the stream is short, so the paper's production rates
    // would leave single-digit sampled keys; scale the rates instead (the
    // claim under test — sampled curves track exact ones — is rate-relative).
    let rates: [f64; 2] = match scale {
        Scale::Quick => [0.5, 0.1],
        Scale::Full => [0.1, 0.01],
    };
    for rate in rates {
        let mut shards = Shards::new(rate, super::common::SEED);
        shards.access_all(stream.iter().copied());
        rows.push(MrcRow {
            estimator: format!("SHARDS {}%", rate * 100.0),
            mae: mean_absolute_error(&exact, &shards.hit_rate_curve(&caps)),
            tracked_keys: shards.tracked_keys(),
        });
    }

    let max_keys = (exact_tracked / 8).max(64);
    let mut fixed = Shards::fixed_size(max_keys, super::common::SEED);
    fixed.access_all(stream.iter().copied());
    rows.push(MrcRow {
        estimator: format!("SHARDS-max ({max_keys} keys)"),
        mae: mean_absolute_error(&exact, &fixed.hit_rate_curve(&caps)),
        tracked_keys: fixed.tracked_keys(),
    });

    let mut aet = AetModel::new();
    aet.access_all(stream.iter().copied());
    rows.push(MrcRow {
        estimator: "AET".to_string(),
        mae: mean_absolute_error(&exact, &aet.hit_rate_curve(&caps)),
        tracked_keys: exact_tracked, // AET keeps one slot per distinct key
    });

    // Counter Stacks: the interval bounds the finest distance it can
    // resolve, so it must sit below the smallest cache size probed.
    let downsample = (caps.iter().copied().min().unwrap_or(64) / 2).max(16);
    let mut cs = CounterStacks::new(downsample, 12);
    cs.access_all(stream.iter().copied());
    cs.finish();
    rows.push(MrcRow {
        estimator: format!("Counter Stacks (ds {downsample})"),
        mae: mean_absolute_error(&exact, &cs.hit_rate_curve(&caps)),
        // One HLL is 4096 B ≈ the state of ~512 tracked u64 keys.
        tracked_keys: cs.live_counters() * 512,
    });

    rows
}

/// Renders the accuracy table.
pub fn render(rows: &[MrcRow]) -> String {
    let mut table = TextTable::new(vec!["estimator", "MAE vs exact", "tracked keys"]);
    for r in rows {
        table.row(vec![r.estimator.clone(), format!("{:.4}", r.mae), r.tracked_keys.to_string()]);
    }
    format!(
        "Extension: approximate MRC estimators vs exact stack distances (table 2)\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_row_has_zero_error() {
        let rows = run(Scale::Quick);
        assert_eq!(rows[0].estimator, "exact (Mattson)");
        assert_eq!(rows[0].mae, 0.0);
    }

    #[test]
    fn estimators_are_accurate() {
        let rows = run(Scale::Quick);
        for r in &rows {
            // Counter Stacks is the loosest of the family (HLL noise plus
            // interval quantization); the key-tracking estimators must be
            // tighter.
            let bound = if r.estimator.starts_with("Counter Stacks") { 0.20 } else { 0.10 };
            assert!(r.mae < bound, "{} strays {:.4} from the exact curve", r.estimator, r.mae);
        }
    }

    #[test]
    fn sampling_reduces_tracked_keys() {
        let rows = run(Scale::Quick);
        let exact = rows[0].tracked_keys;
        let shards10 = rows
            .iter()
            .find(|r| r.estimator.starts_with("SHARDS 1"))
            .expect("SHARDS 10% row")
            .tracked_keys;
        assert!(shards10 * 4 < exact, "10% sampling should track ≪ exact ({shards10} vs {exact})");
    }

    #[test]
    fn render_mentions_each_estimator() {
        let rows = run(Scale::Quick);
        let s = render(&rows);
        assert!(s.contains("SHARDS"));
        assert!(s.contains("AET"));
        assert!(s.contains("Counter Stacks"));
        assert!(s.contains("exact"));
    }
}
