//! Table 1: characterization of the user embedding tables.
//!
//! Columns: table size (vectors), mean lookups per request, share of total
//! lookups, and compulsory-miss rate.
//!
//! **Paper shape:** table 2 dominates lookups (25%); tables 1–2 have
//! single-digit compulsory-miss rates; table 8 is compulsory-miss bound
//! (60.8% in the paper) and the rest sit between 11% and 27%.

use crate::output::TextTable;
use crate::scale::Scale;
use bandana_trace::{characterize, TableCharacterization};
use serde::{Deserialize, Serialize};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// 1-based table number, as in the paper.
    pub table: usize,
    /// Vectors in the table.
    pub vectors: u32,
    /// Mean lookups per request.
    pub avg_request_lookups: f64,
    /// Share of total lookups.
    pub share: f64,
    /// Fraction of lookups that are first-time accesses.
    pub compulsory_miss_rate: f64,
}

impl From<&TableCharacterization> for Row {
    fn from(c: &TableCharacterization) -> Self {
        Row {
            table: c.table + 1,
            vectors: c.num_vectors,
            avg_request_lookups: c.mean_lookups_per_request,
            share: c.lookup_share,
            compulsory_miss_rate: c.compulsory_miss_rate,
        }
    }
}

/// Characterizes the evaluation trace.
pub fn run(scale: Scale) -> Vec<Row> {
    let w = super::common::workload(scale);
    let rows = characterize(&w.eval, &w.spec, &[1]);
    rows.iter().map(Row::from).collect()
}

/// Renders the table artifact.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec![
        "table",
        "vectors",
        "avg request lookups",
        "% of total lookups",
        "compulsory misses",
    ]);
    for r in rows {
        t.row(vec![
            r.table.to_string(),
            r.vectors.to_string(),
            format!("{:.2}", r.avg_request_lookups),
            format!("{:.2}%", r.share * 100.0),
            format!("{:.2}%", r.compulsory_miss_rate * 100.0),
        ]);
    }
    format!("Table 1: user embedding table characterization (synthetic workload)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 8);
        // Table 2 (index 1) has the largest share, near 25%.
        let max_share = rows.iter().max_by(|a, b| a.share.partial_cmp(&b.share).unwrap()).unwrap();
        assert_eq!(max_share.table, 2);
        assert!((max_share.share - 0.25).abs() < 0.05, "share {}", max_share.share);
        // Mean lookups track the paper's ordering: table 2 highest, 8 lowest.
        let min_lookups = rows
            .iter()
            .min_by(|a, b| a.avg_request_lookups.partial_cmp(&b.avg_request_lookups).unwrap())
            .unwrap();
        assert_eq!(min_lookups.table, 8);
        // Table 8 has the highest compulsory-miss rate.
        let worst = rows
            .iter()
            .max_by(|a, b| a.compulsory_miss_rate.partial_cmp(&b.compulsory_miss_rate).unwrap())
            .unwrap();
        assert_eq!(worst.table, 8);
        // Tables 1-2 are the most cacheable.
        assert!(rows[0].compulsory_miss_rate < rows[2].compulsory_miss_rate);
        assert!(rows[1].compulsory_miss_rate < rows[2].compulsory_miss_rate);
    }

    #[test]
    fn render_has_eight_rows() {
        let rows = run(Scale::Quick);
        let s = render(&rows);
        assert_eq!(s.lines().count(), 2 + 1 + 8); // title + header + rule + rows
    }
}
