//! Warm restart vs cold restart on identical traffic: does the
//! durability layer actually buy anything at startup?
//!
//! The scenario primes one persistent engine — closed-loop traffic warms
//! the DRAM caches, a retrain generates real drive writes — snapshots it,
//! and shuts it down. Then two engines serve the *identical* evaluation
//! trace, request by request:
//!
//! * **warm** — [`ShardedEngine::recover`] over the persist directory:
//!   the WAL replays the table catalog, the snapshot rehydrates every
//!   shard cache and restores the endurance counters *before* admission
//!   opens, so the first window of traffic lands on a hot cache.
//! * **cold** — [`ShardedEngine::new`] on an identical fresh store with
//!   no persist directory: the caches start empty and the first window
//!   pays a device read per miss (the simulated device queue charges
//!   real time, so the cold tail is physical, not cosmetic).
//!
//! One row per arm is merged into `BENCH_serve.json` (the `restart`
//! field distinguishes them; the sweep's and drift's rows are
//! preserved). `repro check-bench` gates the claim structurally: the
//! warm arm's first-window p99 must sit decisively below the cold
//! arm's, the restored drive-write accounting must match what the primed
//! engine had written, and the snapshot must have rehydrated keys.

use crate::output::{JsonObject, TextTable};
use crate::scale::Scale;
use bandana_core::BandanaStore;
use bandana_serve::{run_closed_loop, PersistConfig, ServeConfig, ShardedEngine};
use bandana_trace::{EmbeddingTable, ModelSpec, Trace, TraceGenerator};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Duration;

/// One shard: the warm arm serves the first window almost entirely from
/// DRAM, so its tail is pure thread scheduling — on a 1-CPU host every
/// extra worker thread is a hiccup source that pollutes the p99 the
/// gate compares. One shard still exercises the full recover path.
const SHARDS: usize = 1;
/// Window 0 = drain immediately, no timed batch-formation wait. The
/// sequential replay produces single-request batches anyway, and the
/// timed wakeup's scheduling jitter would dominate the warm arm's
/// all-DRAM latency.
const BATCH_WINDOW_US: u64 = 0;
const MAX_BATCH: usize = 16;
const BATCH_DEPTH: u32 = 4;
/// Closed-loop replay: the arrival clock is the caller, so the row's
/// `load_pct` is a label (picked outside the sweep's 25–90% band so the
/// restart rows never collide with a sweep operating point).
const RESTART_LOAD_PCT: u32 = 100;
/// Closed-loop callers for the cache-warming phase.
const WARM_CONCURRENCY: usize = 2 * SHARDS;
/// The table whose embeddings are retrained on the primed engine — the
/// paper's most-looked-up table, so the rewrite is real drive traffic.
const RETRAIN_TABLE: usize = super::common::TABLE2;
/// The restart scenario runs a much larger DRAM cache than the sweep.
/// Two reasons. First, the warm arm's advantage is bounded by how many
/// rehydrated keys the first window can hit — a sweep-sized cache is
/// ~3% of the window's lookups and buries the contrast. Second, and
/// less obvious: SHP packs co-accessed vectors into the same blocks,
/// so a *partially* warm cache barely saves block reads — the cached
/// vectors' blocks get read anyway for their uncached neighbors, and
/// the wall-clock gap drowns in scheduler noise. Only a cache that
/// covers whole hot blocks skips device reads outright; at 16× the
/// sweep's cache the rehydrated arm serves the first window from DRAM
/// (measured ~100% vs ~60% cold hit rate, ~0.3× first-window p99,
/// stable across runs) while the cold arm pays the full fill
/// transient.
const RESTART_CACHE_MULT: usize = 16;

/// One arm's measured outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RestartServeRow {
    /// Micro-batch window (matches the serve sweep's batched pipeline).
    pub window_us: u64,
    /// Label identifying the restart rows' operating point.
    pub load_pct: u32,
    /// Whether this arm recovered from the persist directory (warm) or
    /// started cold.
    pub restart: bool,
    /// Requests completed across the whole evaluation trace.
    pub completed: u64,
    /// Requests completed inside the first window.
    pub first_completed: u64,
    /// p99 latency over the first window only — the startup tail the
    /// warm restart exists to cut.
    pub p99_first_s: f64,
    /// DRAM hit rate inside the first window.
    pub hit_rate_first: f64,
    /// Device block reads issued *serving* the first window. Rehydration
    /// re-reads cached payloads from the device at recovery; those reads
    /// happen before the first request and are excluded here.
    pub device_reads_first: u64,
    /// Lifetime mean / p50 / p99 / p99.9 latency in seconds.
    pub mean_s: f64,
    /// Lifetime p50.
    pub p50_s: f64,
    /// Lifetime p99.
    pub p99_s: f64,
    /// Lifetime p99.9.
    pub p999_s: f64,
    /// Bytes the *primed* engine had written to its devices when the
    /// snapshot was taken (identical for both arms: same prime run).
    pub bytes_written_pre: u64,
    /// Bytes-written the arm's engine reported *before serving anything*
    /// — the warm arm must restore `bytes_written_pre` exactly, the cold
    /// arm starts from zero.
    pub bytes_written_restored: u64,
    /// WAL records the arm replayed at startup (zero for cold).
    pub replayed_records: u64,
    /// Cache keys rehydrated from the snapshot at startup (zero for
    /// cold).
    pub rehydrated_keys: u64,
}

/// The sizing knobs, split out so the unit test can run a miniature
/// version of the scenario.
#[derive(Debug, Clone, Copy)]
struct RestartParams {
    train_requests: usize,
    warm_requests: usize,
    eval_requests: usize,
    first_window: usize,
}

fn params(scale: Scale) -> RestartParams {
    let eval = scale.eval_requests();
    RestartParams {
        train_requests: scale.train_requests(),
        // The warming phase re-plays training-length traffic so the
        // caches converge on the hot set before the snapshot.
        warm_requests: scale.train_requests(),
        eval_requests: eval,
        // Short enough that the cold arm's cache-fill transient spans
        // it (the contrast decays once the cold cache converges).
        first_window: (eval / 16).max(12),
    }
}

struct RestartInputs {
    spec: ModelSpec,
    embeddings: Vec<EmbeddingTable>,
    train: Trace,
    warm: Trace,
    eval: Trace,
}

fn build_inputs(scale: Scale, p: RestartParams) -> RestartInputs {
    let spec = ModelSpec::paper_scaled(scale.spec_scale());
    let mut generator = TraceGenerator::new(&spec, super::common::SEED);
    let train = generator.generate_requests(p.train_requests);
    let warm = generator.generate_requests(p.warm_requests);
    let eval = generator.generate_requests(p.eval_requests);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    RestartInputs { spec, embeddings, train, warm, eval }
}

/// Both arms (and the primed engine) build byte-identical stores: the
/// builder is deterministic in the spec/trace/seed, so the only
/// difference between warm and cold is what recovery restores.
fn build_store(inputs: &RestartInputs, scale: Scale) -> BandanaStore {
    let config = bandana_core::BandanaConfig::default()
        .with_cache_vectors(scale.default_total_cache() * RESTART_CACHE_MULT)
        .with_seed(super::common::SEED);
    BandanaStore::build(&inputs.spec, &inputs.embeddings, &inputs.train, config)
        .expect("store builds on the restart workload")
}

fn build_config(persist: Option<PersistConfig>) -> ServeConfig {
    let mut config = ServeConfig::default()
        .with_shards(SHARDS)
        .with_batch_window(Duration::from_micros(BATCH_WINDOW_US))
        .with_max_batch(MAX_BATCH)
        .with_device_queue(BATCH_DEPTH);
    if let Some(p) = persist {
        config = config.with_persist(p);
    }
    config
}

/// Periodic snapshots off: the scenario installs exactly one snapshot,
/// explicitly, so the recovered state is deterministic.
fn persist_config(dir: &std::path::Path) -> PersistConfig {
    PersistConfig::new(dir).with_snapshot_every_ticks(0)
}

/// A scratch persist directory unique to this invocation.
fn scratch_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bandana-restart-{}-{name}", std::process::id()))
}

/// Serves the evaluation trace sequentially on one arm's engine,
/// checkpointing the metrics after the first window.
fn run_arm(
    engine: &ShardedEngine,
    eval: &Trace,
    first_window: usize,
    restart: bool,
    bytes_written_pre: u64,
) -> RestartServeRow {
    let m0 = engine.metrics();
    let bytes_restored: u64 = m0.per_shard.iter().map(|s| s.bytes_written).sum();
    // Rehydration re-reads cached payloads from the device, so the warm
    // arm's shard counters are non-zero before the first request; the
    // first-window figures are deltas against this pre-serve baseline.
    let reads0: u64 = m0.per_shard.iter().map(|s| s.device_reads).sum();
    let split = first_window.min(eval.requests.len());
    for request in &eval.requests[..split] {
        engine.serve(request).expect("restart arm serves the eval trace");
    }
    let first = engine.metrics();
    for request in &eval.requests[split..] {
        engine.serve(request).expect("restart arm serves the eval trace");
    }
    let full = engine.metrics();
    let hits_first = first.cache.hits - m0.cache.hits;
    let lookups_first = first.cache.lookups - m0.cache.lookups;
    RestartServeRow {
        window_us: BATCH_WINDOW_US,
        load_pct: RESTART_LOAD_PCT,
        restart,
        completed: full.completed,
        first_completed: first.completed,
        p99_first_s: first.latency.p99_s,
        hit_rate_first: hits_first as f64 / lookups_first.max(1) as f64,
        device_reads_first: first.per_shard.iter().map(|s| s.device_reads).sum::<u64>() - reads0,
        mean_s: full.latency.mean_s,
        p50_s: full.latency.p50_s,
        p99_s: full.latency.p99_s,
        p999_s: full.latency.p999_s,
        bytes_written_pre,
        bytes_written_restored: bytes_restored,
        replayed_records: m0.recovery.replayed_records,
        rehydrated_keys: m0.recovery.rehydrated_keys,
    }
}

/// Runs the full experiment: prime + snapshot one persistent engine,
/// then the warm-recovery and cold-start arms on identical traffic.
pub fn run(scale: Scale) -> Vec<RestartServeRow> {
    run_with(scale, params(scale), &scratch_dir("bench"))
}

fn run_with(scale: Scale, p: RestartParams, dir: &std::path::Path) -> Vec<RestartServeRow> {
    let _ = std::fs::remove_dir_all(dir);
    let inputs = build_inputs(scale, p);

    // Prime: warm the caches with closed-loop traffic, retrain the hot
    // table so the drive-write counters are non-trivial, snapshot.
    let primed =
        ShardedEngine::new(build_store(&inputs, scale), build_config(Some(persist_config(dir))))
            .expect("primed engine configuration is valid");
    run_closed_loop(&primed, &inputs.warm, WARM_CONCURRENCY.min(inputs.warm.requests.len().max(1)))
        .expect("closed-loop warming replay");
    primed
        .retrain(RETRAIN_TABLE, &inputs.embeddings[RETRAIN_TABLE])
        .expect("retraining the hot table on the primed engine");
    let bytes_written_pre: u64 = primed.metrics().per_shard.iter().map(|s| s.bytes_written).sum();
    primed.snapshot_now().expect("snapshot installs on the primed engine");
    drop(primed);

    // Warm arm: recover over the persist directory, then serve.
    let warm_engine = ShardedEngine::recover(
        build_store(&inputs, scale),
        build_config(Some(persist_config(dir))),
    )
    .expect("recovery over the primed persist directory");
    let warm_row = run_arm(&warm_engine, &inputs.eval, p.first_window, true, bytes_written_pre);
    drop(warm_engine);

    // Cold arm: identical store, identical traffic, nothing restored.
    let cold_engine = ShardedEngine::new(build_store(&inputs, scale), build_config(None))
        .expect("cold engine configuration is valid");
    let cold_row = run_arm(&cold_engine, &inputs.eval, p.first_window, false, bytes_written_pre);
    drop(cold_engine);

    let _ = std::fs::remove_dir_all(dir);
    vec![warm_row, cold_row]
}

/// Renders the restart table.
pub fn render(rows: &[RestartServeRow]) -> String {
    let mut table = TextTable::new(vec![
        "arm",
        "first p99",
        "first hits",
        "first dev reads",
        "overall p99",
        "completed",
        "bytes pre",
        "bytes restored",
        "wal replayed",
        "keys rehydrated",
    ]);
    for r in rows {
        table.row(vec![
            if r.restart { "warm".into() } else { "cold".to_string() },
            bandana_serve::fmt_secs(r.p99_first_s),
            format!("{:.0}%", r.hit_rate_first * 100.0),
            r.device_reads_first.to_string(),
            bandana_serve::fmt_secs(r.p99_s),
            r.completed.to_string(),
            r.bytes_written_pre.to_string(),
            r.bytes_written_restored.to_string(),
            r.replayed_records.to_string(),
            r.rehydrated_keys.to_string(),
        ]);
    }
    format!(
        "Warm restart (WAL + snapshot recovery) vs cold start on identical traffic \
         ({SHARDS} shards, {BATCH_WINDOW_US} µs window, device queue depth {BATCH_DEPTH}): \
         the warm arm rehydrates every shard cache and the endurance counters before \
         admission opens, so its first-window p99 must sit decisively below the cold \
         arm's and its drive-write accounting must survive the restart.\n{}",
        table.render()
    )
}

/// Renders the rows in `BENCH_serve.json` row format.
fn rows_to_json(rows: &[RestartServeRow]) -> Vec<JsonObject> {
    rows.iter()
        .map(|r| {
            JsonObject::new()
                .u64("window_us", r.window_us)
                .u64("load_pct", u64::from(r.load_pct))
                .u64("restart", u64::from(r.restart))
                .u64("completed", r.completed)
                .u64("first_completed", r.first_completed)
                .f64("p99_first_s", r.p99_first_s)
                .f64("hit_rate_first", r.hit_rate_first)
                .u64("device_reads_first", r.device_reads_first)
                .f64("mean_s", r.mean_s)
                .f64("p50_s", r.p50_s)
                .f64("p99_s", r.p99_s)
                .f64("p999_s", r.p999_s)
                .u64("bytes_written_pre", r.bytes_written_pre)
                .u64("bytes_written_restored", r.bytes_written_restored)
                .u64("replayed_records", r.replayed_records)
                .u64("rehydrated_keys", r.rehydrated_keys)
        })
        .collect()
}

/// Merges the restart rows into an existing `BENCH_serve.json` document
/// (replacing any previous restart rows, keeping the sweep's and
/// drift's rows), or builds a restart-only document when none exists.
fn merged_document(existing: Option<&str>, rows: &[RestartServeRow]) -> String {
    let mut objects: Vec<JsonObject> = Vec::new();
    if let Some(text) = existing {
        if let Ok(doc) = crate::baseline::parse_document(text) {
            for row in &doc.rows {
                // Restart rows carry `restart`; everything else is the
                // sweep's or drift's and is preserved verbatim (numeric
                // fields are the whole row format).
                if row.contains_key("restart") {
                    continue;
                }
                let mut object = JsonObject::new();
                for (k, v) in row {
                    object = object.f64(k, *v);
                }
                objects.push(object);
            }
        }
    }
    objects.extend(rows_to_json(rows));
    crate::output::json_document("serve", objects)
}

/// Runs the experiment and appends its rows to `BENCH_serve.json`
/// alongside the serve sweep's and drift's (run `repro serve
/// serve-drift` first; this preserves whatever rows are already there).
pub fn run_and_save(scale: Scale) -> String {
    let rows = run(scale);
    let artifact = render(&rows);
    let existing = std::fs::read_to_string("BENCH_serve.json").ok();
    let json = merged_document(existing.as_deref(), &rows);
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => {
            format!("{artifact}\n[merged {} restart rows into BENCH_serve.json]\n", rows.len())
        }
        Err(e) => format!("{artifact}\n[could not write BENCH_serve.json: {e}]\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run: sized for test wall-clock, checking
    /// the restart accounting identities that are deterministic at any
    /// size (the first-window p99 contrast itself is gated on the real
    /// run by `repro check-bench`).
    #[test]
    fn miniature_restart_run_has_sound_rows() {
        let rows = run_with(
            Scale::Quick,
            RestartParams {
                train_requests: 120,
                warm_requests: 150,
                eval_requests: 80,
                first_window: 40,
            },
            &scratch_dir("test"),
        );
        assert_eq!(rows.len(), 2, "one warm row, one cold row");
        let warm = rows.iter().find(|r| r.restart).expect("warm row present");
        let cold = rows.iter().find(|r| !r.restart).expect("cold row present");
        // Both arms served the identical trace to completion.
        assert_eq!(warm.completed, cold.completed);
        assert!(warm.completed > 0);
        assert_eq!(warm.first_completed, cold.first_completed);
        // The primed engine really wrote (build + retrain), and the warm
        // arm restored that accounting exactly — before serving anything.
        assert!(warm.bytes_written_pre > 0);
        assert_eq!(warm.bytes_written_restored, warm.bytes_written_pre);
        assert_eq!(cold.bytes_written_restored, 0);
        // Recovery replayed the journaled catalog and rehydrated cache
        // keys; the cold arm had nothing to replay.
        assert!(warm.replayed_records > 0);
        assert!(warm.rehydrated_keys > 0);
        assert_eq!(cold.replayed_records, 0);
        assert_eq!(cold.rehydrated_keys, 0);
        // The rehydrated cache absorbs first-window traffic: a strictly
        // higher hit rate (this is cache-determined, so it holds even at
        // miniature size where wall-clock percentiles are noisy). Raw
        // device-read counts are NOT compared — the cold arm's misses
        // concentrate on hot blocks and coalesce into fewer distinct
        // block reads, so that count can cross even with a working
        // warm cache.
        assert!(
            warm.hit_rate_first > cold.hit_rate_first,
            "warm {} vs cold {}",
            warm.hit_rate_first,
            cold.hit_rate_first
        );
        assert!(warm.device_reads_first > 0 && cold.device_reads_first > 0);
        for r in &rows {
            assert!(r.p50_s <= r.p99_s && r.p99_s <= r.p999_s, "{r:?}");
            assert!(r.p99_first_s > 0.0, "{r:?}");
        }
    }

    #[test]
    fn renders_and_merges_into_bench_document() {
        let warm = RestartServeRow {
            window_us: 50,
            load_pct: 100,
            restart: true,
            completed: 400,
            first_completed: 100,
            p99_first_s: 2e-3,
            hit_rate_first: 0.9,
            device_reads_first: 40,
            mean_s: 1e-3,
            p50_s: 8e-4,
            p99_s: 3e-3,
            p999_s: 6e-3,
            bytes_written_pre: 1_048_576,
            bytes_written_restored: 1_048_576,
            replayed_records: 8,
            rehydrated_keys: 512,
        };
        let cold = RestartServeRow {
            restart: false,
            p99_first_s: 2e-2,
            hit_rate_first: 0.1,
            device_reads_first: 900,
            bytes_written_restored: 0,
            replayed_records: 0,
            rehydrated_keys: 0,
            ..warm
        };
        let rows = vec![warm, cold];
        let rendered = render(&rows);
        assert!(rendered.contains("warm"));
        assert!(rendered.contains("cold"));
        assert!(rendered.contains("first p99"));
        assert!(rendered.contains("keys rehydrated"));

        // Merging keeps the sweep's and drift's rows, replaces stale
        // restart rows, and appends the fresh ones.
        let existing = "{\"experiment\":\"serve\",\"rows\":[\
                        {\"window_us\":200,\"load_pct\":50,\"p99_s\":0.001,\"completed\":60},\
                        {\"window_us\":200,\"load_pct\":400,\"slo_on\":1,\"tenant\":1,\"completed\":9},\
                        {\"window_us\":50,\"load_pct\":100,\"restart\":1,\"completed\":7}]}\n";
        let merged = merged_document(Some(existing), &rows);
        let doc = crate::baseline::parse_document(&merged).expect("merged document parses");
        assert_eq!(doc.experiment, "serve");
        assert_eq!(doc.rows.len(), 4, "sweep + drift rows + two fresh restart rows: {doc:?}");
        assert_eq!(doc.rows[0]["load_pct"], 50.0, "sweep row preserved");
        assert!(doc.rows[1].contains_key("slo_on"), "drift row preserved");
        assert!(
            !doc.rows.iter().any(|r| r.get("completed") == Some(&7.0)),
            "stale restart rows are replaced"
        );
        // Without an existing file the document is restart-only.
        let standalone = merged_document(None, &rows);
        let doc = crate::baseline::parse_document(&standalone).expect("standalone parses");
        assert_eq!(doc.rows.len(), 2);
        assert_eq!(doc.rows[0]["restart"], 1.0);
        assert_eq!(doc.rows[1]["restart"], 0.0);
        assert_eq!(doc.rows[0]["bytes_written_restored"], 1_048_576.0);
    }
}
