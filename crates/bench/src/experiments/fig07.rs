//! Figure 7: partitioner runtimes.
//!
//! (a) flat K-means runtime vs cluster count on table 4;
//! (b) two-stage K-means runtime vs total sub-clusters on table 4;
//! (c) SHP runtime per table.
//!
//! **Paper shape:** (a) grows superlinearly with cluster count (Faiss takes
//! 150 min at 8192 clusters); (b) stays nearly flat in the sub-cluster
//! count; (c) SHP is minutes per table, roughly proportional to table
//! lookups.

use crate::output::TextTable;
use crate::scale::Scale;
use bandana_partition::{
    kmeans, social_hash_partition, two_stage_kmeans, KMeansConfig, ShpConfig, TwoStageConfig,
};
use bandana_trace::EmbeddingTable;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Table used by sub-figures (a) and (b) — the paper uses table 4.
pub const TABLE4: usize = 3;

/// The three runtime studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Runtimes {
    /// (cluster count, seconds) for flat K-means.
    pub flat_kmeans: Vec<(usize, f64)>,
    /// (total sub-clusters, seconds) for two-stage K-means.
    pub two_stage: Vec<(usize, f64)>,
    /// (1-based table, seconds) for SHP.
    pub shp: Vec<(usize, f64)>,
}

/// Flat K-means cluster counts per scale.
pub fn flat_ks(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![4, 16, 64],
        Scale::Full => vec![4, 16, 64, 256],
    }
}

/// Two-stage total sub-cluster counts per scale.
pub fn two_stage_totals(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![32, 64, 128, 256],
        Scale::Full => vec![256, 512, 1024, 2048],
    }
}

/// Runs all three runtime studies.
pub fn run(scale: Scale) -> Runtimes {
    let w = super::common::workload(scale);
    let emb = EmbeddingTable::synthesize(
        w.spec.tables[TABLE4].num_vectors,
        w.spec.dim,
        w.generator.topic_model(TABLE4),
        super::common::SEED,
    );

    let flat_kmeans = flat_ks(scale)
        .into_iter()
        .map(|k| {
            let start = Instant::now();
            let _ = kmeans(
                emb.data(),
                w.spec.dim,
                &KMeansConfig { k, iterations: 10, seed: super::common::SEED },
            );
            (k, start.elapsed().as_secs_f64())
        })
        .collect();

    let first_stage_k = match scale {
        Scale::Quick => 8,
        Scale::Full => 32,
    };
    let two_stage = two_stage_totals(scale)
        .into_iter()
        .map(|total| {
            let start = Instant::now();
            let _ = two_stage_kmeans(
                emb.data(),
                w.spec.dim,
                &TwoStageConfig {
                    first_stage_k,
                    total_subclusters: total,
                    iterations: 10,
                    seed: super::common::SEED,
                },
            );
            (total, start.elapsed().as_secs_f64())
        })
        .collect();

    let shp = (0..w.spec.num_tables())
        .map(|t| {
            let cfg = ShpConfig {
                block_capacity: super::common::VECTORS_PER_BLOCK,
                iterations: scale.shp_iterations(),
                seed: super::common::SEED,
                parallel_depth: 3,
            };
            let start = Instant::now();
            let _ =
                social_hash_partition(w.spec.tables[t].num_vectors, w.train.table_queries(t), &cfg);
            (t + 1, start.elapsed().as_secs_f64())
        })
        .collect();

    Runtimes { flat_kmeans, two_stage, shp }
}

/// Renders the figure artifact.
pub fn render(r: &Runtimes) -> String {
    let mut out = String::from("Figure 7: partitioner runtimes\n");
    let mut a = TextTable::new(vec!["clusters", "seconds"]);
    for &(k, s) in &r.flat_kmeans {
        a.row(vec![k.to_string(), format!("{s:.3}")]);
    }
    out.push_str(&format!("\n(a) flat K-means on table 4\n{}", a.render()));
    let mut b = TextTable::new(vec!["sub-clusters", "seconds"]);
    for &(k, s) in &r.two_stage {
        b.row(vec![k.to_string(), format!("{s:.3}")]);
    }
    out.push_str(&format!("\n(b) two-stage K-means on table 4\n{}", b.render()));
    let mut c = TextTable::new(vec!["table", "seconds"]);
    for &(t, s) in &r.shp {
        c.row(vec![t.to_string(), format!("{s:.3}")]);
    }
    out.push_str(&format!("\n(c) SHP per table\n{}", c.render()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let r = run(Scale::Quick);
        assert_eq!(r.shp.len(), 8);
        // (a) flat K-means cost grows with cluster count.
        let first = r.flat_kmeans.first().unwrap().1;
        let last = r.flat_kmeans.last().unwrap().1;
        assert!(last > first, "flat K-means should slow down with k: {:?}", r.flat_kmeans);
        // (b) the point of two-stage K-means: at the same total cluster
        // count, it is far cheaper than flat K-means (the paper's 7a vs 7b:
        // 150 minutes vs ~15 at the top of the sweep).
        let (ts_total, ts_time) = *r.two_stage.last().unwrap();
        let w = super::super::common::workload(Scale::Quick);
        let emb = bandana_trace::EmbeddingTable::synthesize(
            w.spec.tables[TABLE4].num_vectors,
            w.spec.dim,
            w.generator.topic_model(TABLE4),
            super::super::common::SEED,
        );
        let start = std::time::Instant::now();
        let _ = kmeans(
            emb.data(),
            w.spec.dim,
            &KMeansConfig { k: ts_total, iterations: 10, seed: super::super::common::SEED },
        );
        let flat_time = start.elapsed().as_secs_f64();
        assert!(
            ts_time < flat_time,
            "two-stage at {ts_total} clusters ({ts_time:.3}s) should beat flat ({flat_time:.3}s)"
        );
        // (c) every SHP run completes in positive time.
        assert!(r.shp.iter().all(|&(_, s)| s > 0.0));
    }

    #[test]
    fn render_has_three_panels() {
        let s = render(&run(Scale::Quick));
        assert!(s.contains("(a)"));
        assert!(s.contains("(b)"));
        assert!(s.contains("(c)"));
    }
}
