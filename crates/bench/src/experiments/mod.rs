//! One module per table/figure of the paper's evaluation section.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`fig02`] | Fig. 2 — NVM latency/bandwidth vs queue depth |
//! | [`tab01`] | Table 1 — workload characterization |
//! | [`fig03`] | Fig. 3 — hit-rate curves |
//! | [`fig04`] | Fig. 4 — access histograms |
//! | [`fig05`] | Fig. 5 — latency vs throughput, baseline vs 4 KB reads |
//! | [`fig06`] | Fig. 6 — K-means clusters vs effective bandwidth |
//! | [`fig07`] | Fig. 7 — partitioner runtimes |
//! | [`fig08`] | Fig. 8 — recursive K-means sub-clusters |
//! | [`fig09`] | Fig. 9 — SHP training-set size (unlimited cache) |
//! | [`fig10`] | Fig. 10 — cache-all prefetches vs original order |
//! | [`fig11`] | Fig. 11 — insertion position / shadow cache / combined |
//! | [`fig12`] | Fig. 12 — admission threshold sweep |
//! | [`tab02`] | Table 2 — miniature-cache threshold selection |
//! | [`fig13`] | Fig. 13 — end-to-end gain vs total cache size |
//! | [`fig14`] | Fig. 14 — gain vs mini-cache sampling rate |
//! | [`fig15`] | Fig. 15 — gain vs SHP training requests |
//! | [`fig16`] | Fig. 16 — gain vs vector size |
//! | [`ablate`] | ablations: SHP refinement iterations, DRAM division policies |
//! | [`ext_eviction`] | extension: eviction-policy ablation (LRU/FIFO/CLOCK/LFU/2Q) |
//! | [`ext_mrc`] | extension: SHARDS/AET MRC-estimator accuracy |
//! | [`ext_drift`] | extension: trained-configuration decay under hot-set drift |
//! | [`serve_latency`] | serving engine: open-loop latency vs offered load (`BENCH_serve.json`) |
//! | [`serve_drift`] | serving under drift: SLO controller on vs off, per-tenant windowed p99 and shed composition (appends to `BENCH_serve.json`) |
//! | [`serve_restart`] | warm restart (WAL + snapshot recovery) vs cold start: first-window p99 and drive-write accounting across a restart (appends to `BENCH_serve.json`) |
//! | [`serve_rebudget`] | online DRAM re-budgeting under hot-table migration: cache budget controller on vs off, tail-window hit rate and p99 recovery (appends to `BENCH_serve.json`) |
//! | [`serve_relayout`] | online hot-block re-layout under hot-set drift: re-layout controller on vs off, tail-window device reads per request and p99 recovery (appends to `BENCH_serve.json`) |

pub mod ablate;
pub mod common;
pub mod ext_drift;
pub mod ext_eviction;
pub mod ext_mrc;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod serve_drift;
pub mod serve_latency;
pub mod serve_rebudget;
pub mod serve_relayout;
pub mod serve_restart;
pub mod tab01;
pub mod tab02;

/// Every experiment id accepted by the `repro` binary, in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig2",
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table2",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "ablations",
    "ablation-eviction",
    "ablation-mrc",
    "ablation-drift",
    "serve",
    "serve-drift",
    "serve-restart",
    "serve-rebudget",
    "serve-relayout",
];

/// Runs one experiment by id and returns its rendered artifact.
///
/// # Panics
///
/// Panics on an unknown id; `ALL_EXPERIMENTS` lists the valid ones.
pub fn run_by_id(id: &str, scale: crate::Scale) -> String {
    match id {
        "fig2" => fig02::render(&fig02::run(scale)),
        "table1" => tab01::render(&tab01::run(scale)),
        "fig3" => fig03::render(&fig03::run(scale)),
        "fig4" => fig04::render(&fig04::run(scale)),
        "fig5" => fig05::render(&fig05::run(scale)),
        "fig6" => fig06::render(&fig06::run(scale)),
        "fig7" => fig07::render(&fig07::run(scale)),
        "fig8" => fig08::render(&fig08::run(scale)),
        "fig9" => fig09::render(&fig09::run(scale)),
        "fig10" => fig10::render(&fig10::run(scale)),
        "fig11" => fig11::render(&fig11::run(scale)),
        "fig12" => fig12::render(&fig12::run(scale)),
        "table2" => tab02::render(&tab02::run(scale)),
        "fig13" => fig13::render(&fig13::run(scale)),
        "fig14" => fig14::render(&fig14::run(scale)),
        "fig15" => fig15::render(&fig15::run(scale)),
        "fig16" => fig16::render(&fig16::run(scale)),
        "ablations" => {
            ablate::render(&ablate::shp_iterations(scale), &ablate::allocation_policies(scale))
        }
        "ablation-eviction" => ext_eviction::render(&ext_eviction::run(scale)),
        "ablation-mrc" => ext_mrc::render(&ext_mrc::run(scale)),
        "ablation-drift" => ext_drift::render(&ext_drift::run(scale)),
        "serve" => serve_latency::run_and_save(scale),
        "serve-drift" => serve_drift::run_and_save(scale),
        "serve-restart" => serve_restart::run_and_save(scale),
        "serve-rebudget" => serve_rebudget::run_and_save(scale),
        "serve-relayout" => serve_relayout::run_and_save(scale),
        other => panic!("unknown experiment id {other:?}; valid ids: {ALL_EXPERIMENTS:?}"),
    }
}
