//! Shared fixtures: the paper workload, SHP layouts, and evaluation
//! utilities used by several experiments.

use crate::scale::Scale;
use bandana_partition::{social_hash_partition, AccessFrequency, BlockLayout, ShpConfig};
use bandana_trace::{ModelSpec, Trace, TraceGenerator};

/// Master seed shared by all experiments so the artifacts in EXPERIMENTS.md
/// are exactly reproducible.
pub const SEED: u64 = 0xBA9DA9A;

/// The paper's vectors-per-4KB-block at the default 128 B vector size.
pub const VECTORS_PER_BLOCK: usize = 32;

/// Index of the paper's "table 2" (the most-looked-up table, used by
/// Figures 10–12 and Table 2).
pub const TABLE2: usize = 1;

/// The generated workload: model spec plus disjoint train/eval traces.
#[derive(Debug)]
pub struct Workload {
    /// The 8-table paper model at this scale.
    pub spec: ModelSpec,
    /// Training trace (drives SHP, frequencies, tuning).
    pub train: Trace,
    /// Evaluation trace (all reported numbers come from this).
    pub eval: Trace,
    /// The generator (kept for topic models / embedding synthesis).
    pub generator: TraceGenerator,
}

/// Builds the standard workload for a scale.
pub fn workload(scale: Scale) -> Workload {
    let spec = ModelSpec::paper_scaled(scale.spec_scale());
    let mut generator = TraceGenerator::new(&spec, SEED);
    let train = generator.generate_requests(scale.train_requests());
    let eval = generator.generate_requests(scale.eval_requests());
    Workload { spec, train, eval, generator }
}

/// Builds a workload with a custom-length training trace (Figures 9/15).
pub fn workload_with_train(scale: Scale, train_requests: usize) -> Workload {
    let spec = ModelSpec::paper_scaled(scale.spec_scale());
    let mut generator = TraceGenerator::new(&spec, SEED);
    let train = generator.generate_requests(train_requests);
    let eval = generator.generate_requests(scale.eval_requests());
    Workload { spec, train, eval, generator }
}

/// SHP layout for one table from the training trace.
pub fn shp_layout(w: &Workload, table: usize, scale: Scale) -> BlockLayout {
    shp_layout_with_block(w, table, scale, VECTORS_PER_BLOCK)
}

/// SHP layout with an explicit block capacity (Figure 16 varies it).
pub fn shp_layout_with_block(
    w: &Workload,
    table: usize,
    scale: Scale,
    vectors_per_block: usize,
) -> BlockLayout {
    let cfg = ShpConfig {
        block_capacity: vectors_per_block,
        iterations: scale.shp_iterations(),
        seed: SEED.wrapping_add(table as u64),
        parallel_depth: 3,
    };
    let order =
        social_hash_partition(w.spec.tables[table].num_vectors, w.train.table_queries(table), &cfg);
    BlockLayout::from_order(order, vectors_per_block)
}

/// SHP layouts for every table.
pub fn shp_layouts(w: &Workload, scale: Scale) -> Vec<BlockLayout> {
    (0..w.spec.num_tables()).map(|t| shp_layout(w, t, scale)).collect()
}

/// Training-time access frequencies for every table.
pub fn frequencies(w: &Workload) -> Vec<AccessFrequency> {
    (0..w.spec.num_tables())
        .map(|t| {
            AccessFrequency::from_queries(w.spec.tables[t].num_vectors, w.train.table_queries(t))
        })
        .collect()
}

/// The training-share weights used to divide DRAM (Table 1's "% of total").
pub fn lookup_weights(w: &Workload) -> Vec<f64> {
    let total = w.train.total_lookups().max(1) as f64;
    (0..w.spec.num_tables()).map(|t| w.train.table_lookups(t) as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let a = workload(Scale::Quick);
        let b = workload(Scale::Quick);
        assert_eq!(a.train, b.train);
        assert_eq!(a.eval, b.eval);
    }

    #[test]
    fn weights_sum_to_one() {
        let w = workload(Scale::Quick);
        let sum: f64 = lookup_weights(&w).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shp_layout_is_valid() {
        let w = workload(Scale::Quick);
        let layout = shp_layout(&w, 0, Scale::Quick);
        assert_eq!(layout.num_vectors(), w.spec.tables[0].num_vectors);
        assert_eq!(layout.vectors_per_block(), VECTORS_PER_BLOCK);
    }
}
