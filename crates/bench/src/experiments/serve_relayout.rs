//! Online hot-block re-layout under hot-set drift: the re-layout
//! controller on vs off on identical traffic.
//!
//! The paper's SHP layout is solved once, offline, from a training
//! trace (§4.2). This scenario starts both arms from the layout that
//! offline pass cannot save — identity placement, so every co-access
//! group's members straddle many device blocks — and drives Zipf-popular
//! group traffic ([`ZipfDriftGenerator`]) whose hot set rotates mid-run.
//! Two engines serve the identical request stream:
//!
//! * **relayout-on** — the engine runs the
//!   [`ReLayoutSettings`] controller:
//!   shard workers tee sampled co-access sets onto the metrics bus, the
//!   controller accumulates a windowed co-access hypergraph, and when
//!   observed blocks-per-request degrades past the threshold it refines
//!   the hottest blocks' placement and live-applies the new layout
//!   (real device rewrites, charged to the endurance meter). Within a
//!   few windows of the drift the newly-hot groups are packed and the
//!   tail-window device reads per request recover to the pre-drift
//!   (also controller-packed) level.
//! * **relayout-off** — same store, same traffic, no controller. The
//!   scattered layout is frozen; every request keeps paying one device
//!   read per straddled block, before the drift and after it.
//!
//! One row per arm is merged into `BENCH_serve.json` (the `relayout`
//! field distinguishes the arms; every other scenario's rows are
//! preserved). `repro check-bench` gates the claim structurally: the on
//! arm's post-drift device-reads-per-completed-request must sit within
//! a band of its own pre-drift level with its tail p99 under the off
//! arm's, the off arm must stay degraded, rewrite traffic must show up
//! in the on arm's shard write accounting, applied re-layouts must be
//! audit-logged, and the off arm must show none of it.

use crate::output::{JsonObject, TextTable};
use crate::scale::Scale;
use bandana_core::BandanaStore;
use bandana_partition::BlockLayout;
use bandana_serve::{ControlConfig, ReLayoutSettings, ServeConfig, ShardedEngine};
use bandana_trace::{
    EmbeddingTable, ModelSpec, Request, TableQuery, TableSpec, Trace, TraceGenerator,
    ZipfDriftConfig, ZipfDriftGenerator,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One shard: the arms' contrast is layout-determined, and on a 1-CPU
/// host extra worker threads only add scheduling noise to the p99s the
/// gate compares.
const SHARDS: usize = 1;
/// Window 0 = drain immediately (see serve_rebudget: the sequential
/// replay produces single-request batches and a timed wakeup's jitter
/// would pollute the tail-window p99s).
const BATCH_WINDOW_US: u64 = 0;
const MAX_BATCH: usize = 16;
/// Device queue depth 1: every block read pays the device's full QD1
/// latency, so a request that straddles ~120 blocks costs ~1.3 ms of
/// simulated reads — a layout story decisively above host scheduling
/// noise (same operating point as the rebudget scenario).
const BATCH_DEPTH: u32 = 1;
/// Closed-loop replay label, off every other serve scenario's value.
const RELAYOUT_LOAD_PCT: u32 = 130;
/// Zipf-drawn co-access groups merged into each request per table: 6
/// draws of 16 ids give ~100 unique lookups per table per request, so
/// the scattered arm pays ~120 QD1 block reads per request and the
/// packed arm a fraction of that.
const DRAWS_PER_REQUEST: usize = 6;
/// Ids per co-access group — exactly one 4 KB block's worth at the
/// 64-dim geometry below, so a perfectly packed group costs one read.
const GROUP_SIZE: usize = 16;
/// Zipf exponent over group ranks: a head of ~8 groups dominates but
/// each request's draws still spread over several distinct groups, so
/// the scattered arm pays for every one of them. (Steeper collapses
/// nearly all draws onto one group and with it the arms' contrast.)
const ZIPF_EXPONENT: f64 = 1.2;
/// Fraction of each table's group deck displaced at the drift boundary:
/// the post-drift head is dealt from mid-deck ranks the pre-drift
/// refinement never saw enough of to pack.
const ROTATE_FRACTION: f64 = 0.5;

/// The controller's tuning, chosen so it *quiesces* once converged —
/// the tail windows the gate measures must be free of rewrite pauses —
/// and so the bus's per-tick fold stays small. The second point is a
/// 1-CPU-host subtlety the gate would catch: at `sample_every: 1`
/// every bus wake folds ~200 queued samples, each wake preempts the
/// single shard worker for a scheduler timeslice, and those ~4 ms
/// stalls (every 5 ms tick, all run long) become the on arm's p99 —
/// sampling 1-in-3 parts cuts both the tee and the fold to where a
/// wake costs less than a request:
///
/// * a 1-in-3 stride because [`merged_request`] makes each request
///   exactly two co-access parts (one merged query per table): an even
///   stride would alias against that period and sample one table's
///   parts *only*, leaving the other table scattered forever — the
///   stride must be co-prime with parts-per-request;
/// * windows of 60 sampled parts per table (one table part every 3
///   requests, so a window spans ~180 requests) — big enough that one
///   unlucky request cannot spike the window's observed/ideal ratio
///   past the solve bar, and wide enough Zipf coverage of the 48-group
///   deck that a single solve can pack nearly all of it;
/// * a solve only at observed ≥ 2× ideal — scattered identity layout
///   sits at ~6-7×, a converged layout at ~1×, so the bar separates
///   the two regimes with margin in both directions;
/// * refinement over the 128 hottest blocks — a full table's deck at
///   this geometry, so convergence can actually reach the ideal (a
///   smaller budget leaves the Zipf tail scattered, parks the ratio
///   above the bar, and the controller re-applies forever, paying an
///   apply pause in every window including the measured ones);
/// * a one-window cooldown after each apply so consecutive solves see
///   the rewritten layout's traffic.
fn relayout_settings() -> ReLayoutSettings {
    ReLayoutSettings {
        window_requests: 60,
        sample_every: 3,
        degrade_ratio: 2.0,
        hot_blocks: 128,
        iterations: 8,
        cooldown_windows: 1,
        ..ReLayoutSettings::default()
    }
}

/// One arm's measured outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelayoutServeRow {
    /// Micro-batch window (matches the serve sweep's batched pipeline).
    pub window_us: u64,
    /// Label identifying the relayout rows' operating point.
    pub load_pct: u32,
    /// Whether the re-layout controller ran in this arm.
    pub relayout: bool,
    /// Requests completed across the whole run.
    pub completed: u64,
    /// Device block reads per completed request over the pre-drift tail
    /// window (in the on arm, measured after the controller converges).
    pub reads_per_req_pre: f64,
    /// Device block reads per completed request over the post-drift tail
    /// window — the figure the controller exists to recover.
    pub reads_per_req_post: f64,
    /// Client-observed p99 over the pre-drift tail window, in seconds.
    pub p99_pre_s: f64,
    /// Client-observed p99 over the post-drift tail window.
    pub p99_post_s: f64,
    /// Refinement solves the controller ran (zero in the off arm).
    pub relayout_solves: u64,
    /// `ApplyLayout` commands applied to shards (zero off).
    pub relayout_applied: u64,
    /// Device blocks rewritten by applied re-layouts (zero off).
    pub relayout_rewritten_blocks: u64,
    /// `ApplyLayout` entries in the audit log (zero off).
    pub layout_moves: u64,
    /// Total bytes written to the shard devices — the re-layout rewrite
    /// traffic the endurance meter charges (zero off: this scenario
    /// never retrains or snapshots).
    pub bytes_written: u64,
    /// Final observed blocks-per-request gauge (0 in the off arm — no
    /// controller, no completed windows).
    pub bpr_observed: f64,
    /// Final ideal (perfectly packed) blocks-per-request gauge.
    pub bpr_ideal: f64,
    /// Lifetime mean / p50 / p99 / p99.9 latency in seconds.
    pub mean_s: f64,
    /// Lifetime p50.
    pub p50_s: f64,
    /// Lifetime p99.
    pub p99_s: f64,
    /// Lifetime p99.9.
    pub p999_s: f64,
    /// Steady-state heap allocations per lookup on the worker read path
    /// with a controller-applied re-layout live and the co-access tee
    /// sampling every part (−1 when the counting allocator is off;
    /// gated to exactly 0 when counted).
    pub steady_allocs_per_lookup: f64,
}

/// The sizing knobs, split out so the unit test can run a miniature
/// version of the scenario.
#[derive(Debug, Clone, Copy)]
struct RelayoutParams {
    /// Requests in the pre-drift phase (epoch-0 hot set).
    phase_a: usize,
    /// Requests in the post-drift phase (rotated hot set).
    phase_b: usize,
    /// Tail-window length, in requests, over which each phase's device
    /// reads and p99 are measured.
    window: usize,
    /// Requests in the training trace (epoch-0-shaped; the build uses it
    /// for admission statistics only — placement is identity).
    train_requests: usize,
}

fn params(scale: Scale) -> RelayoutParams {
    match scale {
        // Phase A gives the controller ~8 windows to pack the epoch-0
        // head before its tail is measured; phase B leaves ~8 more
        // between the drift and the post-drift tail.
        Scale::Quick => {
            RelayoutParams { phase_a: 400, phase_b: 600, window: 200, train_requests: 300 }
        }
        Scale::Full => {
            RelayoutParams { phase_a: 800, phase_b: 1200, window: 400, train_requests: 600 }
        }
    }
}

struct RelayoutInputs {
    spec: ModelSpec,
    embeddings: Vec<EmbeddingTable>,
    train: Trace,
    phase_a: Vec<Request>,
    phase_b: Vec<Request>,
}

/// The two-table model the scenario serves. 64-dim f32 vectors are
/// 256 B, so 16 fit a 4 KB block — a [`GROUP_SIZE`] co-access group is
/// exactly one block when packed and up to 16 blocks when scattered.
/// 768 vectors per table keep the whole deck at 48 groups, small
/// enough that the controller's sampled windows witness essentially
/// every group and convergence can reach the packed ideal (a deeper
/// deck leaves sampled-window-blind tail groups scattered forever,
/// stranding the observed/ideal ratio near the solve bar where noise
/// fires late solves into the measured tail windows).
fn relayout_spec() -> ModelSpec {
    ModelSpec {
        tables: vec![TableSpec::test_small(768), TableSpec::test_small(768)],
        dim: 64,
        element_bytes: 4,
    }
}

fn drift_config(p: RelayoutParams) -> ZipfDriftConfig {
    ZipfDriftConfig {
        group_size: GROUP_SIZE,
        exponent: ZIPF_EXPONENT,
        // The generator counts raw draws; each serve request merges
        // DRAWS_PER_REQUEST of them, so the epoch flips exactly at the
        // phase boundary.
        requests_per_epoch: p.phase_a * DRAWS_PER_REQUEST,
        rotate_fraction: ROTATE_FRACTION,
    }
}

/// Merges [`DRAWS_PER_REQUEST`] generator draws into one serve request:
/// per table, the concatenation of the drawn groups' ids.
fn merged_request(generator: &mut ZipfDriftGenerator, num_tables: usize) -> Request {
    let mut ids: Vec<Vec<u32>> = vec![Vec::new(); num_tables];
    for _ in 0..DRAWS_PER_REQUEST {
        for q in generator.generate_request().queries {
            ids[q.table].extend_from_slice(&q.ids);
        }
    }
    Request {
        queries: ids.into_iter().enumerate().map(|(t, ids)| TableQuery::new(t, ids)).collect(),
    }
}

fn build_inputs(p: RelayoutParams) -> RelayoutInputs {
    let spec = relayout_spec();
    let topic_generator = TraceGenerator::new(&spec, super::common::SEED);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                topic_generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    // The training trace is epoch-0-shaped (a fresh generator, same
    // seed, never advanced past the first epoch): the build consumes it
    // for admission statistics, while placement stays identity — the
    // scattered starting point both arms share.
    let mut train_generator = ZipfDriftGenerator::new(&spec, super::common::SEED, drift_config(p));
    let train = Trace {
        num_tables: spec.num_tables(),
        requests: (0..p.train_requests)
            .map(|_| merged_request(&mut train_generator, spec.num_tables()))
            .collect(),
    };
    // Both arms replay the identical serving stream: one generator,
    // epochs flipping at the phase boundary.
    let mut generator = ZipfDriftGenerator::new(&spec, super::common::SEED, drift_config(p));
    let phase_a: Vec<Request> =
        (0..p.phase_a).map(|_| merged_request(&mut generator, spec.num_tables())).collect();
    let phase_b: Vec<Request> =
        (0..p.phase_b).map(|_| merged_request(&mut generator, spec.num_tables())).collect();
    RelayoutInputs { spec, embeddings, train, phase_a, phase_b }
}

/// Both arms build byte-identical stores: identity placement (the
/// layout the controller must repair online) and no cache admission, so
/// every lookup is a device read and the arms' contrast is purely how
/// many blocks those reads coalesce into.
fn build_store(inputs: &RelayoutInputs) -> BandanaStore {
    let config = bandana_core::BandanaConfig::default()
        .with_cache_vectors(256)
        .with_partitioner(bandana_core::PartitionerKind::Identity)
        .with_admission(bandana_cache::AdmissionPolicy::None)
        .with_seed(super::common::SEED);
    BandanaStore::build(&inputs.spec, &inputs.embeddings, &inputs.train, config)
        .expect("store builds on the relayout workload")
}

fn build_config(controller_on: bool) -> ServeConfig {
    let mut config = ServeConfig::default()
        .with_shards(SHARDS)
        .with_batch_window(Duration::from_micros(BATCH_WINDOW_US))
        .with_max_batch(MAX_BATCH)
        .with_device_queue(BATCH_DEPTH)
        // A coarse bus tick, as in the rebudget scenario: on a 1-CPU
        // host every tick preempts the shard worker and the gate
        // compares tail p99s across arms.
        .with_control(ControlConfig { tick: Duration::from_millis(5), ..ControlConfig::default() });
    if controller_on {
        config = config.with_relayout(relayout_settings());
    }
    config
}

/// p99 of a set of per-request wall-clock latencies.
fn p99_of(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((samples.len() as f64 * 0.99).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Serves `requests` sequentially, timing each of the last `window`
/// calls; returns their p99.
fn serve_phase(engine: &ShardedEngine, requests: &[Request], window: usize) -> f64 {
    let split = requests.len().saturating_sub(window.min(requests.len()));
    for request in &requests[..split] {
        engine.serve(request).expect("relayout arm serves its trace");
    }
    let mut latencies = Vec::with_capacity(requests.len() - split);
    for request in &requests[split..] {
        let started = Instant::now();
        engine.serve(request).expect("relayout arm serves its trace");
        latencies.push(started.elapsed().as_secs_f64());
    }
    p99_of(&mut latencies)
}

/// Runs one arm over both phases, checkpointing the device counters
/// around each phase's tail window.
fn run_arm(
    inputs: &RelayoutInputs,
    window: usize,
    controller_on: bool,
    steady_allocs: f64,
) -> RelayoutServeRow {
    let engine = ShardedEngine::new(build_store(inputs), build_config(controller_on))
        .expect("relayout engine configuration is valid");
    let window_a = window.min(inputs.phase_a.len());
    let window_b = window.min(inputs.phase_b.len());

    // Pre-drift phase: in the on arm the controller packs the epoch-0
    // head over the warmup, then the tail window is measured.
    let split_a = inputs.phase_a.len() - window_a;
    serve_phase(&engine, &inputs.phase_a[..split_a], 0);
    let m0 = engine.metrics();
    let p99_pre_s = serve_phase(&engine, &inputs.phase_a[split_a..], window_a);
    let m_pre = engine.metrics();

    // The drift: the Zipf deck rotates, the packed head goes cold, and
    // the new head's groups are scattered again. The on arm's controller
    // re-solves within a few windows; the off arm's layout is frozen.
    let split_b = inputs.phase_b.len() - window_b;
    serve_phase(&engine, &inputs.phase_b[..split_b], 0);
    let m_mid = engine.metrics();
    let p99_post_s = serve_phase(&engine, &inputs.phase_b[split_b..], window_b);
    let m_post = engine.metrics();

    let device_reads =
        |m: &bandana_serve::EngineMetrics| m.per_shard.iter().map(|s| s.device_reads).sum::<u64>();
    RelayoutServeRow {
        window_us: BATCH_WINDOW_US,
        load_pct: RELAYOUT_LOAD_PCT,
        relayout: controller_on,
        completed: m_post.completed,
        reads_per_req_pre: (device_reads(&m_pre) - device_reads(&m0)) as f64
            / window_a.max(1) as f64,
        reads_per_req_post: (device_reads(&m_post) - device_reads(&m_mid)) as f64
            / window_b.max(1) as f64,
        p99_pre_s,
        p99_post_s,
        relayout_solves: m_post.relayout_solves,
        relayout_applied: m_post.relayout_applied,
        relayout_rewritten_blocks: m_post.relayout_rewritten_blocks,
        layout_moves: m_post
            .audit
            .iter()
            .filter(|e| e.controller == "re-layout" && e.action.contains("ApplyLayout"))
            .count() as u64,
        bytes_written: m_post.per_shard.iter().map(|s| s.bytes_written).sum(),
        bpr_observed: m_post.blocks_per_request_observed,
        bpr_ideal: m_post.blocks_per_request_ideal,
        mean_s: m_post.latency.mean_s,
        p50_s: m_post.latency.p50_s,
        p99_s: m_post.latency.p99_s,
        p999_s: m_post.latency.p999_s,
        steady_allocs_per_lookup: steady_allocs,
    }
}

/// Measures steady-state heap allocations per lookup on the worker read
/// path *with the controller's work applied*: the table carries a live
/// re-layout (its block order rewritten on-device the way an applied
/// `ApplyLayout` rewrites it) and every part's ids are teed into a
/// bounded co-access channel the way the shard worker samples traffic.
/// Two warmup passes, a measured third; deterministic, so the gate
/// demands exactly zero. Returns `None` when the counting allocator is
/// off.
fn steady_state_allocs_per_lookup(inputs: &RelayoutInputs) -> Option<f64> {
    crate::alloc_track::thread_allocations()?;
    let parts = build_store(inputs).into_raw_parts();
    let mut device = parts.device;
    let mut tables = parts.tables;
    // The applied re-layout: rotate table 0's order by one block, a
    // dense permutation that rewrites every block.
    let per_block = tables[0].layout().vectors_per_block();
    let mut order = tables[0].layout().order().to_vec();
    order.rotate_left(per_block);
    tables[0]
        .apply_layout(&mut device, BlockLayout::from_order(order, per_block))
        .expect("probe re-layout applies");
    let total: usize = tables.iter().map(|t| t.cache_capacity()).sum();
    let mut scratch = bandana_core::BatchScratch::new();
    let mut pool = nvm_sim::BlockBufPool::for_cache(total);
    let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, u32, u64)>(4096);
    let mut generator = ZipfDriftGenerator::new(
        &inputs.spec,
        super::common::SEED ^ 0xA110C,
        drift_config(params(Scale::Quick)),
    );
    let queries: Vec<(usize, Vec<u32>)> = (0..32)
        .map(|_| merged_request(&mut generator, inputs.spec.num_tables()))
        .flat_map(|r| r.queries.into_iter().map(|q| (q.table, q.ids)))
        .collect();
    let mut seq = 0u64;
    let mut replay = |tables: &mut Vec<bandana_core::TableStore>,
                      device: &mut nvm_sim::NvmDevice| {
        let mut lookups = 0u64;
        for (t, ids) in &queries {
            tables[*t]
                .lookup_batch_with(device, ids, &mut scratch, &mut pool)
                .expect("relayout probe ids are valid");
            seq += 1;
            let group = seq << 8;
            for &v in ids {
                let _ = tx.try_send((*t, v, group));
            }
            lookups += ids.len() as u64;
        }
        for _ in rx.try_iter() {}
        lookups
    };
    for _ in 0..2 {
        replay(&mut tables, &mut device);
    }
    let before = crate::alloc_track::thread_allocations()?;
    let lookups = replay(&mut tables, &mut device);
    let after = crate::alloc_track::thread_allocations()?;
    Some((after - before) as f64 / lookups.max(1) as f64)
}

/// Runs the full experiment: identical traffic through the relayout-on
/// and relayout-off arms.
pub fn run(scale: Scale) -> Vec<RelayoutServeRow> {
    run_with(params(scale))
}

fn run_with(p: RelayoutParams) -> Vec<RelayoutServeRow> {
    let inputs = build_inputs(p);
    let steady_allocs = steady_state_allocs_per_lookup(&inputs).unwrap_or(-1.0);
    vec![
        run_arm(&inputs, p.window, true, steady_allocs),
        // The probe models the on arm's re-laid-out steady state; the
        // off arm's row carries the counting-off sentinel.
        run_arm(&inputs, p.window, false, -1.0),
    ]
}

/// Renders the relayout table.
pub fn render(rows: &[RelayoutServeRow]) -> String {
    let mut table = TextTable::new(vec![
        "arm",
        "pre reads/req",
        "post reads/req",
        "pre p99",
        "post p99",
        "solves",
        "applied",
        "rewritten",
        "audit moves",
        "bytes written",
        "completed",
    ]);
    for r in rows {
        table.row(vec![
            if r.relayout { "relayout-on".into() } else { "relayout-off".to_string() },
            format!("{:.1}", r.reads_per_req_pre),
            format!("{:.1}", r.reads_per_req_post),
            bandana_serve::fmt_secs(r.p99_pre_s),
            bandana_serve::fmt_secs(r.p99_post_s),
            r.relayout_solves.to_string(),
            r.relayout_applied.to_string(),
            r.relayout_rewritten_blocks.to_string(),
            r.layout_moves.to_string(),
            r.bytes_written.to_string(),
            r.completed.to_string(),
        ]);
    }
    format!(
        "Online hot-block re-layout under hot-set drift ({SHARDS} shard, identity \
         build layout, {GROUP_SIZE}-id Zipf co-access groups rotating {ROTATE_FRACTION} \
         of the deck mid-run): re-layout controller on vs off on identical traffic. \
         The gate: relayout-on recovers its pre-drift tail-window device reads per \
         request (p99 inside relayout-off's tail band) with audit-logged ApplyLayout \
         evidence and real rewrite bytes; relayout-off stays degraded on its frozen \
         scattered layout.\n{}",
        table.render()
    )
}

/// Renders the rows in `BENCH_serve.json` row format.
fn rows_to_json(rows: &[RelayoutServeRow]) -> Vec<JsonObject> {
    rows.iter()
        .map(|r| {
            JsonObject::new()
                .u64("window_us", r.window_us)
                .u64("load_pct", u64::from(r.load_pct))
                .u64("relayout", u64::from(r.relayout))
                .u64("completed", r.completed)
                .f64("reads_per_req_pre", r.reads_per_req_pre)
                .f64("reads_per_req_post", r.reads_per_req_post)
                .f64("p99_pre_s", r.p99_pre_s)
                .f64("p99_post_s", r.p99_post_s)
                .u64("relayout_solves", r.relayout_solves)
                .u64("relayout_applied", r.relayout_applied)
                .u64("relayout_rewritten_blocks", r.relayout_rewritten_blocks)
                .u64("layout_moves", r.layout_moves)
                .u64("bytes_written", r.bytes_written)
                .f64("bpr_observed", r.bpr_observed)
                .f64("bpr_ideal", r.bpr_ideal)
                .f64("mean_s", r.mean_s)
                .f64("p50_s", r.p50_s)
                .f64("p99_s", r.p99_s)
                .f64("p999_s", r.p999_s)
                .f64("steady_allocs_per_lookup", r.steady_allocs_per_lookup)
        })
        .collect()
}

/// Merges the relayout rows into an existing `BENCH_serve.json`
/// document (replacing any previous relayout rows, keeping everyone
/// else's), or builds a relayout-only document when none exists.
fn merged_document(existing: Option<&str>, rows: &[RelayoutServeRow]) -> String {
    let mut objects: Vec<JsonObject> = Vec::new();
    if let Some(text) = existing {
        if let Ok(doc) = crate::baseline::parse_document(text) {
            for row in &doc.rows {
                // Relayout rows carry `relayout`; everything else is
                // another scenario's and is preserved verbatim (numeric
                // fields are the whole row format).
                if row.contains_key("relayout") {
                    continue;
                }
                let mut object = JsonObject::new();
                for (k, v) in row {
                    object = object.f64(k, *v);
                }
                objects.push(object);
            }
        }
    }
    objects.extend(rows_to_json(rows));
    crate::output::json_document("serve", objects)
}

/// Runs the experiment and appends its rows to `BENCH_serve.json`
/// alongside the other serve scenarios' (run `repro serve` first; this
/// preserves whatever rows are already there).
pub fn run_and_save(scale: Scale) -> String {
    let rows = run(scale);
    let artifact = render(&rows);
    let existing = std::fs::read_to_string("BENCH_serve.json").ok();
    let json = merged_document(existing.as_deref(), &rows);
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => {
            format!("{artifact}\n[merged {} relayout rows into BENCH_serve.json]\n", rows.len())
        }
        Err(e) => format!("{artifact}\n[could not write BENCH_serve.json: {e}]\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run: sized for test wall-clock, checking
    /// row structure and the controller-presence invariants that hold
    /// at any size (the recovery claims themselves are gated on the
    /// real run by `repro check-bench`).
    #[test]
    fn miniature_relayout_run_has_sound_rows() {
        let rows =
            run_with(RelayoutParams { phase_a: 100, phase_b: 160, window: 50, train_requests: 60 });
        assert_eq!(rows.len(), 2, "one relayout-on row, one relayout-off row");
        let on = rows.iter().find(|r| r.relayout).expect("on row present");
        let off = rows.iter().find(|r| !r.relayout).expect("off row present");
        // Both arms served the identical trace to completion.
        assert_eq!(on.completed, off.completed);
        assert!(on.completed > 0);
        // The controller really ran in the on arm — the identity layout
        // scatters every group, so the first completed window already
        // clears the degradation bar — and never in the off arm.
        assert!(on.relayout_solves >= 1, "{on:?}");
        assert_eq!(off.relayout_solves, 0, "{off:?}");
        assert_eq!(off.relayout_applied, 0, "{off:?}");
        assert_eq!(off.relayout_rewritten_blocks, 0, "{off:?}");
        assert_eq!(off.layout_moves, 0, "{off:?}");
        assert_eq!(off.bytes_written, 0, "no controller, no rewrites: {off:?}");
        // Applies, audit evidence, rewritten blocks, and write bytes
        // travel together.
        assert_eq!(on.relayout_applied > 0, on.layout_moves > 0, "{on:?}");
        assert_eq!(on.relayout_applied > 0, on.relayout_rewritten_blocks > 0, "{on:?}");
        assert_eq!(on.relayout_applied > 0, on.bytes_written > 0, "{on:?}");
        // A completed window published its gauges.
        assert!(on.bpr_observed > 0.0 && on.bpr_ideal > 0.0, "{on:?}");
        for r in &rows {
            assert!(r.reads_per_req_pre > 0.0, "{r:?}");
            assert!(r.reads_per_req_post > 0.0, "{r:?}");
            assert!(r.p99_pre_s > 0.0 && r.p99_post_s > 0.0, "{r:?}");
            assert!(r.p50_s <= r.p99_s && r.p99_s <= r.p999_s, "{r:?}");
            // The steady-state alloc probe: 0 with the counting
            // allocator on (the on arm carries the measurement), the
            // -1 sentinel otherwise.
            if r.relayout && crate::alloc_track::thread_allocations().is_some() {
                assert_eq!(r.steady_allocs_per_lookup, 0.0, "{r:?}");
            }
        }
    }

    #[test]
    fn renders_and_merges_into_bench_document() {
        let on = RelayoutServeRow {
            window_us: 0,
            load_pct: 130,
            relayout: true,
            completed: 1000,
            reads_per_req_pre: 30.0,
            reads_per_req_post: 33.0,
            p99_pre_s: 4e-4,
            p99_post_s: 5e-4,
            relayout_solves: 14,
            relayout_applied: 9,
            relayout_rewritten_blocks: 310,
            layout_moves: 9,
            bytes_written: 310 * 4096,
            bpr_observed: 12.5,
            bpr_ideal: 6.0,
            mean_s: 3e-4,
            p50_s: 2.5e-4,
            p99_s: 9e-4,
            p999_s: 2e-3,
            steady_allocs_per_lookup: 0.0,
        };
        let off = RelayoutServeRow {
            relayout: false,
            reads_per_req_post: 120.0,
            reads_per_req_pre: 118.0,
            p99_post_s: 1.6e-3,
            relayout_solves: 0,
            relayout_applied: 0,
            relayout_rewritten_blocks: 0,
            layout_moves: 0,
            bytes_written: 0,
            bpr_observed: 0.0,
            bpr_ideal: 0.0,
            steady_allocs_per_lookup: -1.0,
            ..on
        };
        let rows = vec![on, off];
        let rendered = render(&rows);
        assert!(rendered.contains("relayout-on"));
        assert!(rendered.contains("relayout-off"));
        assert!(rendered.contains("post reads/req"));
        assert!(rendered.contains("bytes written"));

        // Merging keeps every other scenario's rows, replaces stale
        // relayout rows, and appends the fresh ones.
        let existing = "{\"experiment\":\"serve\",\"rows\":[\
                        {\"window_us\":200,\"load_pct\":50,\"p99_s\":0.001,\"completed\":60},\
                        {\"window_us\":0,\"load_pct\":120,\"rebudget\":1,\"completed\":9},\
                        {\"window_us\":0,\"load_pct\":130,\"relayout\":1,\"completed\":5}]}\n";
        let merged = merged_document(Some(existing), &rows);
        let doc = crate::baseline::parse_document(&merged).expect("merged document parses");
        assert_eq!(doc.experiment, "serve");
        assert_eq!(doc.rows.len(), 4, "sweep + rebudget + two fresh relayout rows: {doc:?}");
        assert_eq!(doc.rows[0]["load_pct"], 50.0, "sweep row preserved");
        assert!(doc.rows[1].contains_key("rebudget"), "rebudget row preserved");
        assert!(
            !doc.rows.iter().any(|r| r.get("completed") == Some(&5.0)),
            "stale relayout rows are replaced"
        );
        // Without an existing file the document is relayout-only.
        let standalone = merged_document(None, &rows);
        let doc = crate::baseline::parse_document(&standalone).expect("standalone parses");
        assert_eq!(doc.rows.len(), 2);
        assert_eq!(doc.rows[0]["relayout"], 1.0);
        assert_eq!(doc.rows[1]["relayout"], 0.0);
        assert_eq!(doc.rows[1]["reads_per_req_post"], 120.0);
    }
}
