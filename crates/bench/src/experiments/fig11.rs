//! Figure 11: where to insert prefetches — queue position, shadow cache,
//! and their combination (table 2, SHP layout).
//!
//! (a) insert all prefetches at queue fraction p ∈ {0, 0.3, 0.5, 0.7, 0.9};
//! (b) admit only shadow-cache hits, shadow multiplier ∈ {1, 1.5, 2};
//! (c) shadow hits to the top, shadow misses to position p.
//!
//! All gains are relative to the no-prefetch baseline at the same cache
//! size.
//!
//! **Paper shape:** (a) lower positions reduce the damage but gains remain
//! small or negative at small caches; (b) the shadow filter alone is nearly
//! useless (±5%); (c) the combination helps somewhat but does not rescue
//! small caches — motivating the frequency threshold of Figure 12.

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_cache::{AdmissionPolicy, PrefetchCacheSim};
use bandana_partition::AccessFrequency;
use serde::{Deserialize, Serialize};

/// Queue positions swept in sub-figures (a) and (c).
pub const POSITIONS: [f64; 5] = [0.0, 0.3, 0.5, 0.7, 0.9];
/// Shadow multipliers swept in sub-figure (b).
pub const MULTIPLIERS: [f64; 3] = [1.0, 1.5, 2.0];

/// The three sweeps; each row is (x-value, cache size, gain).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sweeps {
    /// (insertion position, cache size, gain).
    pub position: Vec<(f64, usize, f64)>,
    /// (shadow multiplier, cache size, gain).
    pub shadow: Vec<(f64, usize, f64)>,
    /// (insertion position for shadow misses, cache size, gain).
    pub combined: Vec<(f64, usize, f64)>,
}

/// Runs all three sweeps on table 2.
pub fn run(scale: Scale) -> Sweeps {
    let w = super::common::workload(scale);
    let t2 = super::common::TABLE2;
    let layout = super::common::shp_layout(&w, t2, scale);
    let freq =
        AccessFrequency::from_queries(w.spec.tables[t2].num_vectors, w.train.table_queries(t2));
    let stream = w.eval.table_stream(t2);
    let caches = scale.table2_cache_sizes();

    let reads = |policy: AdmissionPolicy, cache: usize, mult: f64| {
        let mut sim =
            PrefetchCacheSim::with_shadow_multiplier(&layout, cache, policy, freq.clone(), mult);
        for &v in &stream {
            sim.lookup(v);
        }
        sim.metrics().block_reads
    };

    let mut sweeps = Sweeps { position: Vec::new(), shadow: Vec::new(), combined: Vec::new() };
    for &cache in &caches {
        let baseline = reads(AdmissionPolicy::None, cache, 1.5);
        for &p in &POSITIONS {
            let r = reads(AdmissionPolicy::All { position: p }, cache, 1.5);
            sweeps.position.push((p, cache, baseline as f64 / r as f64 - 1.0));
        }
        for &m in &MULTIPLIERS {
            let r = reads(AdmissionPolicy::Shadow, cache, m);
            sweeps.shadow.push((m, cache, baseline as f64 / r as f64 - 1.0));
        }
        for &p in &POSITIONS {
            let r = reads(AdmissionPolicy::ShadowPosition { position: p }, cache, 1.5);
            sweeps.combined.push((p, cache, baseline as f64 / r as f64 - 1.0));
        }
    }
    sweeps
}

fn render_grid(rows: &[(f64, usize, f64)], x_label: &str) -> String {
    let mut xs: Vec<f64> = rows.iter().map(|r| r.0).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.dedup();
    let mut caches: Vec<usize> = rows.iter().map(|r| r.1).collect();
    caches.sort_unstable();
    caches.dedup();
    let mut header = vec![x_label.to_string()];
    header.extend(caches.iter().map(|c| format!("cache {c}")));
    let mut t = TextTable::new(header);
    for &x in &xs {
        let mut cells = vec![format!("{x}")];
        for &c in &caches {
            cells.push(
                rows.iter().find(|r| r.0 == x && r.1 == c).map(|r| pct(r.2)).unwrap_or_default(),
            );
        }
        t.row(cells);
    }
    t.render()
}

/// Renders the figure artifact.
pub fn render(s: &Sweeps) -> String {
    format!(
        "Figure 11: prefetch insertion studies on table 2 (vs no prefetching)\n\n\
         (a) insertion position\n{}\n\
         (b) shadow-cache admission, by shadow size multiplier\n{}\n\
         (c) combined: shadow hit -> top, miss -> position\n{}",
        render_grid(&s.position, "position"),
        render_grid(&s.shadow, "multiplier"),
        render_grid(&s.combined, "position"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let s = run(Scale::Quick);
        let caches: Vec<usize> = Scale::Quick.table2_cache_sizes();
        let smallest = caches[0];
        // (a) at the smallest cache, lower insertion beats top insertion.
        let gain_at = |rows: &[(f64, usize, f64)], x: f64, c: usize| {
            rows.iter().find(|r| r.0 == x && r.1 == c).unwrap().2
        };
        let top = gain_at(&s.position, 0.0, smallest);
        let low = gain_at(&s.position, 0.9, smallest);
        assert!(low >= top, "position 0.9 ({low}) should not lose to top ({top})");
        // (b) the shadow filter alone is weak: a fraction of what threshold
        // admission achieves (paper: single-digit percentages vs 27-130%).
        // Our scaled caches are a larger fraction of the table, so the
        // absolute numbers run higher; the qualitative bound still holds.
        for &(m, c, g) in &s.shadow {
            assert!(g < 0.35, "shadow-only gain should stay small: mult {m} cache {c} gain {g}");
        }
        // (c) combined produces at least one strictly positive point.
        assert!(
            s.combined.iter().any(|&(_, _, g)| g > 0.0),
            "combined policy should help somewhere: {:?}",
            s.combined
        );
    }

    #[test]
    fn render_has_three_panels() {
        let out = render(&run(Scale::Quick));
        assert!(out.contains("(a)"));
        assert!(out.contains("(b)"));
        assert!(out.contains("(c)"));
    }
}
