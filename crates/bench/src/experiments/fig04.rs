//! Figure 4: access histograms of the top-lookup tables.
//!
//! For each table, how many vectors were accessed how many times over the
//! evaluation trace.
//!
//! **Paper shape:** heavy-tailed everywhere, but with very different maxima:
//! table 2 has vectors accessed orders of magnitude more often than table
//! 7's hottest vectors, while table 6's histogram is squeezed toward small
//! counts.

use crate::output::TextTable;
use crate::scale::Scale;
use bandana_trace::{characterize, AccessHistogram};
use serde::{Deserialize, Serialize};

/// Paper tables plotted in Figure 4 (0-based indices).
pub const TABLES: [usize; 4] = [0, 1, 5, 6];

/// One table's access histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hist {
    /// 1-based table number.
    pub table: usize,
    /// The histogram (bucket upper bounds and per-bucket vector counts).
    pub histogram: AccessHistogram,
}

/// Computes histograms for the Figure 4 tables.
pub fn run(scale: Scale) -> Vec<Hist> {
    let w = super::common::workload(scale);
    let rows = characterize(&w.eval, &w.spec, &[1]);
    TABLES
        .iter()
        .map(|&t| Hist { table: t + 1, histogram: rows[t].access_histogram.clone() })
        .collect()
}

/// Renders the figure artifact.
pub fn render(hists: &[Hist]) -> String {
    let mut out = String::from("Figure 4: access histograms of the top-lookup tables\n");
    for h in hists {
        let mut t = TextTable::new(vec!["accesses <=", "vectors"]);
        for (bound, count) in h.histogram.bucket_bounds.iter().zip(&h.histogram.counts) {
            t.row(vec![bound.to_string(), count.to_string()]);
        }
        out.push_str(&format!(
            "\n(table {}; hottest vector: {} accesses)\n{}",
            h.table,
            h.histogram.max_accesses,
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let hists = run(Scale::Quick);
        assert_eq!(hists.len(), 4);
        let max = |n: usize| hists.iter().find(|h| h.table == n).unwrap().histogram.max_accesses;
        // Table 2's hottest vector dwarfs table 7's (paper: 50k vs 6k per
        // 10^9 lookups).
        assert!(max(2) > 2 * max(7), "table2 max {} vs table7 max {}", max(2), max(7));
        // Every histogram is right-skewed: the mode sits in the coldest
        // buckets. Table 7's histogram is deliberately flatter than the
        // others (the paper's table 7 has no ultra-hot vectors), so its
        // mode may land in either of the first two buckets; everywhere
        // else the coldest bucket must be the mode outright.
        for h in &hists {
            let max_bucket = h.histogram.counts.iter().copied().max().unwrap_or(0);
            if h.table == 7 {
                let cold2 = h.histogram.counts.iter().take(2).copied().max().unwrap_or(0);
                assert_eq!(
                    cold2, max_bucket,
                    "table 7 histogram mode left the cold buckets: {:?}",
                    h.histogram.counts
                );
            } else {
                assert_eq!(
                    h.histogram.counts[0], max_bucket,
                    "table {} histogram mode is not the cold bucket: {:?}",
                    h.table, h.histogram.counts
                );
            }
        }
    }

    #[test]
    fn render_contains_max_accesses() {
        let hists = run(Scale::Quick);
        let s = render(&hists);
        assert!(s.contains("hottest vector"));
    }
}
