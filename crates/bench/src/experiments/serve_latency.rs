//! Serving-engine latency under offered load, batch window × load.
//!
//! The paper's Figure 5 plots device latency against offered throughput;
//! this experiment applies the same open-loop methodology to the whole
//! serving stack: build the paper workload's store, wrap it in the
//! sharded engine ([`bandana_serve::ShardedEngine`]) with block reads
//! charged through the calibrated NVM queue model, measure closed-loop
//! capacity, then sweep Poisson offered load from a fraction of that
//! capacity past saturation. The sweep runs twice: once with the
//! single-read pipeline (`max_batch` 1, device depth 1 — the paper's
//! unbatched baseline) and once with cross-request micro-batching
//! (200 µs window, depth 4), recording batch-size and queue-depth
//! distributions plus the queue-wait vs device-time latency breakdown at
//! every operating point. Expected shape: flat latency at low load, a
//! tail blow-up approaching capacity, non-zero shedding past it, and
//! mean batch size > 1 for the batched pipeline at moderate load.
//!
//! A final **two-tenant QoS scenario** re-runs the batched pipeline at
//! 5× capacity with a weight-9 and a weight-1 tenant splitting the same
//! Poisson arrivals ([`run_open_loop_tenants`]): one extra row per
//! tenant records per-tenant p99 and shed counts, and `repro
//! check-bench` asserts structurally that the weighted tenant's
//! completions dominate per its weight.
//!
//! A **network arm** re-runs the batched pipeline at moderate load over
//! the TCP front-end ([`bandana_serve::NetServer`] driven by the socket
//! loadgen, [`run_open_loop_net`]), recording *client-side*
//! submit-to-receipt latency. `repro check-bench` gates its p99 against
//! the in-process row at the same load from the same run — the
//! protocol-overhead budget.

use crate::output::{JsonObject, TextTable};
use crate::scale::Scale;
use bandana_core::BandanaStore;
use bandana_serve::{
    run_closed_loop, run_open_loop, run_open_loop_net, run_open_loop_tenants, LoadGenConfig,
    NetServer, NetServerConfig, ServeConfig, ShardedEngine, ShedPolicy, TenantId, TenantSpec,
    TraceConfig,
};
use bandana_trace::{ArrivalProcess, EmbeddingTable};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Shards used by the experiment engine.
const SHARDS: usize = 4;
/// Per-shard queue bound: small enough that saturation sheds visibly.
const QUEUE_CAPACITY: usize = 64;
/// Offered load as a percentage of measured closed-loop capacity.
const LOAD_PCTS: [u32; 5] = [25, 50, 75, 90, 150];
/// The micro-batching window of the batched pipeline, in microseconds.
const BATCH_WINDOW_US: u64 = 200;
/// Most requests merged per micro-batch in the batched pipeline.
const MAX_BATCH: usize = 16;
/// Bounded in-flight device reads in the batched pipeline (the paper's
/// sweet-spot region of Figure 2).
const BATCH_DEPTH: u32 = 4;
/// Offered load of the two-tenant QoS scenario, as % of the batched
/// pipeline's closed-loop capacity — far enough past saturation that
/// *both* tenants individually exceed their weighted service shares, so
/// completion shares expose the DRR scheduler.
const TENANT_LOAD_PCT: u32 = 500;
/// The QoS scenario replays the eval trace this many times back to
/// back: the overload must be *sustained*, or the end-of-run queue
/// drain (every accepted request eventually completes) washes the DRR
/// completion shares out toward the admission split.
const TENANT_TRACE_REPEATS: usize = 8;
/// Per-tenant lane capacity of the QoS scenario: deep enough that the
/// heavy tenant's lanes stay backlogged through batch-sized pops and
/// bursty reactor arrivals (an empty lane forfeits its DRR quantum to
/// the other tenant — work conservation), yet bounded so the scenario
/// sheds visibly.
const TENANT_QUEUE_CAPACITY: usize = 64;
/// The heavy tenant of the QoS scenario (DRR weight 9).
const TENANT_HEAVY: (TenantId, u32) = (TenantId(1), 9);
/// The light tenant of the QoS scenario (DRR weight 1).
const TENANT_LIGHT: (TenantId, u32) = (TenantId(2), 1);
/// Flight-recorder sampling rate of the trace-overhead arm (1-in-N).
const TRACE_SAMPLE_EVERY: u64 = 64;
/// Offered load of the trace-overhead arm, as % of the batched
/// pipeline's capacity — matched to an untraced sweep row so
/// `check-bench` can compare the two p99s structurally.
const TRACE_LOAD_PCT: u32 = 50;
/// Offered load of the network arm, as % of the batched pipeline's
/// capacity — matched to an in-process sweep row so `check-bench` can
/// gate the TCP front-end's protocol overhead against the in-process
/// twin from the same run.
const NET_LOAD_PCT: u32 = 50;
/// Reactor connections of the network arm. One: on the bench host the
/// loadgen shares the CPU with the engine it measures, and extra
/// client connections only add scheduler preemption to the number
/// under test.
const NET_REACTORS: usize = 1;

/// One measured operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeRow {
    /// Micro-batch window in microseconds (0 = single-read pipeline).
    pub window_us: u64,
    /// Offered load as % of measured closed-loop capacity (0 = the
    /// closed-loop capacity row itself).
    pub load_pct: u32,
    /// Offered requests per second (capacity row: achieved).
    pub offered_qps: f64,
    /// Completed requests per second.
    pub achieved_qps: f64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Mean end-to-end latency in seconds.
    pub mean_s: f64,
    /// Median end-to-end latency in seconds.
    pub p50_s: f64,
    /// P99 end-to-end latency in seconds.
    pub p99_s: f64,
    /// P99.9 end-to-end latency in seconds.
    pub p999_s: f64,
    /// Mean requests merged per device micro-batch.
    pub mean_batch: f64,
    /// Largest micro-batch observed.
    pub largest_batch: u64,
    /// Mean device queue depth experienced by block reads.
    pub mean_depth: f64,
    /// Peak device queue depth.
    pub peak_depth: u32,
    /// Mean simulated device time charged per served request, in seconds.
    pub device_mean_s: f64,
    /// Mean host queue wait per served request, in seconds.
    pub queue_wait_mean_s: f64,
    /// P99 host queue wait, in seconds.
    pub queue_wait_p99_s: f64,
    /// Heap allocations per lookup on the warmed store read path, from
    /// the steady-state probe run once per sweep (`-1` when the
    /// `count-allocs` feature is off). Must be exactly `0` — gated by
    /// `repro check-bench`.
    pub steady_allocs_per_lookup: f64,
    /// Percentage of shard-worker block reads served from recycled pool
    /// buffers instead of fresh allocations.
    pub pool_reuse_pct: f64,
    /// Tenant id of a per-tenant QoS row (`-1` for aggregate rows).
    pub tenant: i64,
    /// The tenant's DRR weight (`0` for aggregate rows).
    pub tenant_weight: u64,
    /// `1` when the flight recorder sampled this run (the trace-overhead
    /// arm, 1-in-`TRACE_SAMPLE_EVERY`), `0` for untraced rows.
    pub traced: u64,
    /// `1` when the run was driven over the TCP front-end
    /// ([`bandana_serve::NetServer`]) with client-side latency, `0` for
    /// in-process rows.
    pub transport: u64,
}

/// The shared inputs of every engine in the sweep: built once, reused —
/// only the store itself must be fresh per operating point (cold caches).
struct SweepInputs {
    workload: super::common::Workload,
    embeddings: Vec<EmbeddingTable>,
}

fn sweep_inputs(scale: Scale) -> SweepInputs {
    let workload = super::common::workload(scale);
    let embeddings: Vec<EmbeddingTable> = (0..workload.spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                workload.spec.tables[t].num_vectors,
                workload.spec.dim,
                workload.generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    SweepInputs { workload, embeddings }
}

/// One pipeline configuration of the sweep.
#[derive(Debug, Clone, Copy)]
struct Pipeline {
    window_us: u64,
    max_batch: usize,
    device_queue: u32,
}

const PIPELINES: [Pipeline; 2] = [
    // The single-read baseline: every request is its own submission at
    // queue depth 1.
    Pipeline { window_us: 0, max_batch: 1, device_queue: 1 },
    // Cross-request micro-batching with bounded in-flight reads.
    Pipeline { window_us: BATCH_WINDOW_US, max_batch: MAX_BATCH, device_queue: BATCH_DEPTH },
];

fn build_engine(
    inputs: &SweepInputs,
    scale: Scale,
    pipeline: Pipeline,
    trace: TraceConfig,
) -> ShardedEngine {
    let config = bandana_core::BandanaConfig::default()
        .with_cache_vectors(scale.default_total_cache())
        .with_seed(super::common::SEED);
    let store = BandanaStore::build(
        &inputs.workload.spec,
        &inputs.embeddings,
        &inputs.workload.train,
        config,
    )
    .expect("store builds on the paper workload");
    ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(SHARDS)
            .with_queue_capacity(QUEUE_CAPACITY)
            .with_shed_policy(ShedPolicy::DropNewest)
            .with_batch_window(Duration::from_micros(pipeline.window_us))
            .with_max_batch(pipeline.max_batch)
            .with_device_queue(pipeline.device_queue)
            .with_trace(trace),
    )
    .expect("engine configuration is valid")
}

/// Measures steady-state heap allocations per `lookup_batch` on the
/// store read path, with the counting allocator (`count-allocs` feature):
/// a store is built exactly like the sweep's, its tables are driven
/// directly with a worker-style scratch + pool through two warmup passes
/// over the eval queries, and a third pass is measured on this thread.
/// Fully deterministic — the read path takes no clocks — so the gate can
/// demand exactly zero. Returns `None` when counting is off.
fn steady_state_allocs_per_lookup(inputs: &SweepInputs, scale: Scale) -> Option<f64> {
    crate::alloc_track::thread_allocations()?;
    let config = bandana_core::BandanaConfig::default()
        .with_cache_vectors(scale.default_total_cache())
        .with_seed(super::common::SEED);
    let store = BandanaStore::build(
        &inputs.workload.spec,
        &inputs.embeddings,
        &inputs.workload.train,
        config,
    )
    .expect("store builds on the paper workload");
    let parts = store.into_raw_parts();
    let mut device = parts.device;
    let mut tables = parts.tables;
    let mut scratch = bandana_core::BatchScratch::new();
    let mut pool =
        nvm_sim::BlockBufPool::for_cache(tables.iter().map(|t| t.cache_capacity()).sum());
    let queries: Vec<(usize, &[u32])> = inputs
        .workload
        .eval
        .requests
        .iter()
        .flat_map(|r| r.queries.iter().map(|q| (q.table, q.ids.as_slice())))
        .collect();
    let replay = |tables: &mut Vec<bandana_core::TableStore>,
                  device: &mut nvm_sim::NvmDevice,
                  scratch: &mut bandana_core::BatchScratch,
                  pool: &mut nvm_sim::BlockBufPool| {
        let mut lookups = 0u64;
        for &(t, ids) in &queries {
            tables[t]
                .lookup_batch_with(device, ids, scratch, pool)
                .expect("eval trace ids are valid");
            lookups += ids.len() as u64;
        }
        lookups
    };
    for _ in 0..2 {
        replay(&mut tables, &mut device, &mut scratch, &mut pool);
    }
    let before = crate::alloc_track::thread_allocations()?;
    let lookups = replay(&mut tables, &mut device, &mut scratch, &mut pool);
    let after = crate::alloc_track::thread_allocations()?;
    Some((after - before) as f64 / lookups.max(1) as f64)
}

/// Folds one finished engine's metrics into a [`ServeRow`].
#[allow(clippy::too_many_arguments)]
fn row_from(
    pipeline: Pipeline,
    load_pct: u32,
    offered_qps: f64,
    achieved_qps: f64,
    completed: u64,
    shed: u64,
    engine: &ShardedEngine,
    steady_allocs_per_lookup: f64,
) -> ServeRow {
    let m = engine.metrics();
    ServeRow {
        window_us: pipeline.window_us,
        load_pct,
        offered_qps,
        achieved_qps,
        completed,
        shed,
        mean_s: m.latency.mean_s,
        p50_s: m.latency.p50_s,
        p99_s: m.latency.p99_s,
        p999_s: m.latency.p999_s,
        mean_batch: m.batching.mean_batch(),
        largest_batch: m.batching.largest_batch,
        mean_depth: m.batching.depth.mean_depth(),
        peak_depth: m.batching.depth.peak_depth,
        device_mean_s: m.device_time.mean_s,
        queue_wait_mean_s: m.queue_wait.mean_s,
        queue_wait_p99_s: m.queue_wait.p99_s,
        steady_allocs_per_lookup,
        pool_reuse_pct: m.pool.reuse_rate() * 100.0,
        tenant: -1,
        tenant_weight: 0,
        traced: 0,
        transport: 0,
    }
}

/// Builds the QoS-scenario engine: the batched pipeline plus the two
/// weighted tenants.
fn build_tenant_engine(inputs: &SweepInputs, scale: Scale, pipeline: Pipeline) -> ShardedEngine {
    let config = bandana_core::BandanaConfig::default()
        .with_cache_vectors(scale.default_total_cache())
        .with_seed(super::common::SEED);
    let store = BandanaStore::build(
        &inputs.workload.spec,
        &inputs.embeddings,
        &inputs.workload.train,
        config,
    )
    .expect("store builds on the paper workload");
    ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(SHARDS)
            .with_queue_capacity(TENANT_QUEUE_CAPACITY)
            .with_shed_policy(ShedPolicy::DropNewest)
            .with_batch_window(Duration::from_micros(pipeline.window_us))
            .with_max_batch(pipeline.max_batch)
            .with_device_queue(pipeline.device_queue)
            .with_tenant(TENANT_HEAVY.0, TenantSpec::new(TENANT_HEAVY.1))
            .with_tenant(TENANT_LIGHT.0, TenantSpec::new(TENANT_LIGHT.1)),
    )
    .expect("tenant engine configuration is valid")
}

/// Runs the two-tenant overload scenario against the batched pipeline
/// and folds each tenant's slice into one [`ServeRow`].
fn tenant_scenario_rows(
    inputs: &SweepInputs,
    scale: Scale,
    trace: &bandana_trace::Trace,
    batched_capacity_qps: f64,
    steady_allocs: f64,
) -> Vec<ServeRow> {
    let pipeline = PIPELINES[1];
    let engine = build_tenant_engine(inputs, scale, pipeline);
    let rate = (batched_capacity_qps * f64::from(TENANT_LOAD_PCT) / 100.0).max(1.0);
    let process = ArrivalProcess::Poisson { rate_rps: rate };
    // The arrivals split 1:1 — deliberately: with identical offered
    // load, a weight-blind scheduler completes ~1:1, so any completion
    // skew is pure DRR signal (a skewed split would re-introduce the
    // admission ratio into the completions and mask a dead scheduler).
    // The measured skew lands well below the ideal 9:1 — ramp-up and
    // drain tails admit both tenants alike, and a work-conserving
    // scheduler serves the light lane whenever bursty arrivals leave the
    // heavy lane momentarily empty — which is why the check-bench floor
    // is a fraction of the weight ratio rather than the ratio itself.
    let slots = [TENANT_HEAVY.0, TENANT_LIGHT.0];
    let mut sustained = trace.clone();
    for _ in 1..TENANT_TRACE_REPEATS {
        sustained.requests.extend(trace.requests.iter().cloned());
    }
    let report = run_open_loop_tenants(
        &engine,
        &slots,
        &sustained,
        &process,
        super::common::SEED ^ u64::from(TENANT_LOAD_PCT),
    );
    let m = engine.metrics();
    [TENANT_HEAVY.0, TENANT_LIGHT.0]
        .iter()
        .map(|&id| {
            let t =
                m.per_tenant.iter().find(|t| t.id == id).expect("scenario tenants are registered");
            let slot_share = slots.iter().filter(|&&s| s == id).count() as f64 / slots.len() as f64;
            ServeRow {
                window_us: pipeline.window_us,
                load_pct: TENANT_LOAD_PCT,
                offered_qps: rate * slot_share,
                achieved_qps: t.completed as f64 / report.wall_s,
                completed: t.completed,
                shed: t.shed,
                mean_s: t.latency.mean_s,
                p50_s: t.latency.p50_s,
                p99_s: t.latency.p99_s,
                p999_s: t.latency.p999_s,
                // Batching/depth/queue-wait/pool metrics are engine-wide
                // aggregates with no per-tenant attribution; zero them
                // here rather than stamping identical aggregate values
                // into both tenants' rows as if they were per-tenant
                // measurements. Only the counters and the latency
                // distribution above are genuinely this tenant's.
                mean_batch: 0.0,
                largest_batch: 0,
                mean_depth: 0.0,
                peak_depth: 0,
                device_mean_s: 0.0,
                queue_wait_mean_s: 0.0,
                queue_wait_p99_s: 0.0,
                steady_allocs_per_lookup: steady_allocs,
                pool_reuse_pct: 0.0,
                tenant: i64::from(t.id.0),
                tenant_weight: u64::from(t.weight),
                traced: 0,
                transport: 0,
            }
        })
        .collect()
}

/// Measures closed-loop capacity, then the open-loop sweep, for both
/// pipelines. Each pipeline's first row (`load_pct == 0`) is its capacity
/// measurement.
pub fn run(scale: Scale) -> Vec<ServeRow> {
    let inputs = sweep_inputs(scale);
    run_on(&inputs, scale, &inputs.workload.eval)
}

fn run_on(inputs: &SweepInputs, scale: Scale, trace: &bandana_trace::Trace) -> Vec<ServeRow> {
    let mut rows = Vec::with_capacity(PIPELINES.len() * (LOAD_PCTS.len() + 1) + 4);
    // One steady-state allocation probe per sweep (it is a property of the
    // store read path, not of an operating point); -1 marks "not counted".
    let steady_allocs = steady_state_allocs_per_lookup(inputs, scale).unwrap_or(-1.0);

    for pipeline in PIPELINES {
        // Closed-loop capacity with one caller per shard.
        let capacity_engine = build_engine(inputs, scale, pipeline, TraceConfig::default());
        let capacity = run_closed_loop(&capacity_engine, trace, SHARDS)
            .expect("closed-loop replay of the eval trace");
        rows.push(row_from(
            pipeline,
            0,
            capacity.achieved_qps,
            capacity.achieved_qps,
            capacity.completed,
            0,
            &capacity_engine,
            steady_allocs,
        ));
        drop(capacity_engine);

        // Open-loop sweep: a fresh engine per point so caches, histograms,
        // and depth accounting start cold at every operating point.
        for pct in LOAD_PCTS {
            let rate = (capacity.achieved_qps * f64::from(pct) / 100.0).max(1.0);
            let engine = build_engine(inputs, scale, pipeline, TraceConfig::default());
            let process = ArrivalProcess::Poisson { rate_rps: rate };
            let report =
                run_open_loop(&engine, trace, &process, super::common::SEED ^ u64::from(pct));
            rows.push(row_from(
                pipeline,
                pct,
                report.offered_qps,
                report.achieved_qps,
                report.completed,
                report.shed,
                &engine,
                steady_allocs,
            ));
        }
    }

    // The two-tenant QoS scenario and the trace-overhead arm both ride
    // on the batched pipeline's measured capacity (its `load_pct == 0`
    // row).
    let batched_capacity = rows
        .iter()
        .find(|r| r.window_us == BATCH_WINDOW_US && r.load_pct == 0)
        .expect("the batched pipeline measured its capacity")
        .achieved_qps;

    // Trace-overhead arm: the batched pipeline at the same moderate load
    // as an untraced sweep row, with 1-in-TRACE_SAMPLE_EVERY
    // flight-recorder sampling on. `check-bench` asserts its p99 stays
    // inside the matched untraced row's band and that the steady-state
    // alloc probe still reads exactly zero.
    {
        let pipeline = PIPELINES[1];
        let rate = (batched_capacity * f64::from(TRACE_LOAD_PCT) / 100.0).max(1.0);
        let engine =
            build_engine(inputs, scale, pipeline, TraceConfig::sampled(TRACE_SAMPLE_EVERY));
        let process = ArrivalProcess::Poisson { rate_rps: rate };
        let report = run_open_loop(
            &engine,
            trace,
            &process,
            super::common::SEED ^ u64::from(TRACE_LOAD_PCT),
        );
        let mut row = row_from(
            pipeline,
            TRACE_LOAD_PCT,
            report.offered_qps,
            report.achieved_qps,
            report.completed,
            report.shed,
            &engine,
            steady_allocs,
        );
        row.traced = 1;
        rows.push(row);
    }

    // Network arm: the batched pipeline at the same moderate load as an
    // in-process sweep row, driven over the TCP front-end with the
    // socket loadgen. Latency here is *client-side* submit-to-receipt,
    // so the row measures protocol + transport overhead on top of the
    // engine time its in-process twin measures; `check-bench` gates the
    // two p99s against each other (the protocol-overhead budget).
    {
        let pipeline = PIPELINES[1];
        let rate = (batched_capacity * f64::from(NET_LOAD_PCT) / 100.0).max(1.0);
        let engine =
            std::sync::Arc::new(build_engine(inputs, scale, pipeline, TraceConfig::default()));
        let server = NetServer::start(std::sync::Arc::clone(&engine), NetServerConfig::default())
            .expect("net server binds a loopback port");
        let process = ArrivalProcess::Poisson { rate_rps: rate };
        let report = run_open_loop_net(
            server.local_addr(),
            TenantId::DEFAULT,
            trace,
            &process,
            super::common::SEED ^ u64::from(NET_LOAD_PCT),
            LoadGenConfig { reactors: NET_REACTORS },
        )
        .expect("socket-mode open loop against the loopback server");
        server.shutdown();
        let mut row = row_from(
            pipeline,
            NET_LOAD_PCT,
            report.offered_qps,
            report.achieved_qps,
            report.completed,
            report.shed + report.timed_out + report.failed,
            &engine,
            steady_allocs,
        );
        // The engine's server-side histogram never sees the wire;
        // overwrite the latency fields with the client-side measurement
        // — that distribution *is* what this row exists to record.
        row.mean_s = report.latency.mean_s;
        row.p50_s = report.latency.p50_s;
        row.p99_s = report.latency.p99_s;
        row.p999_s = report.latency.p999_s;
        row.transport = 1;
        rows.push(row);
    }

    rows.extend(tenant_scenario_rows(inputs, scale, trace, batched_capacity, steady_allocs));
    rows
}

/// Renders the latency table.
pub fn render(rows: &[ServeRow]) -> String {
    let mut table = TextTable::new(vec![
        "window µs",
        "load %",
        "tenant(w)",
        "trace",
        "wire",
        "offered qps",
        "achieved qps",
        "completed",
        "shed",
        "mean",
        "p50",
        "p99",
        "p999",
        "batch",
        "depth",
        "device",
        "q-wait",
        "allocs/lk",
        "pool %",
    ]);
    for r in rows {
        let label = if r.load_pct == 0 { "closed".to_string() } else { r.load_pct.to_string() };
        let tenant = if r.tenant < 0 {
            "-".to_string()
        } else {
            format!("{}({})", r.tenant, r.tenant_weight)
        };
        let trace_label =
            if r.traced != 0 { format!("1/{TRACE_SAMPLE_EVERY}") } else { "-".to_string() };
        let wire = if r.transport != 0 { "tcp" } else { "-" };
        table.row(vec![
            r.window_us.to_string(),
            label,
            tenant,
            trace_label,
            wire.to_string(),
            format!("{:.0}", r.offered_qps),
            format!("{:.0}", r.achieved_qps),
            r.completed.to_string(),
            r.shed.to_string(),
            bandana_serve::fmt_secs(r.mean_s),
            bandana_serve::fmt_secs(r.p50_s),
            bandana_serve::fmt_secs(r.p99_s),
            bandana_serve::fmt_secs(r.p999_s),
            format!("{:.2}", r.mean_batch),
            format!("{:.2}", r.mean_depth),
            bandana_serve::fmt_secs(r.device_mean_s),
            bandana_serve::fmt_secs(r.queue_wait_mean_s),
            if r.steady_allocs_per_lookup < 0.0 {
                "off".to_string()
            } else {
                format!("{:.3}", r.steady_allocs_per_lookup)
            },
            format!("{:.0}", r.pool_reuse_pct),
        ]);
    }
    format!(
        "Serving engine: open-loop latency vs offered load ({SHARDS} shards, \
         queue {QUEUE_CAPACITY}, drop-newest shedding, NVM reads charged through \
         the queue model; window 0 = single-read pipeline at depth 1, window \
         {BATCH_WINDOW_US} = ≤{MAX_BATCH}-request micro-batches at depth {BATCH_DEPTH}; \
         tenant rows = the {TENANT_LOAD_PCT}% QoS scenario, weights \
         {}:{} splitting the same arrivals; trace 1/{TRACE_SAMPLE_EVERY} = the \
         flight-recorder overhead arm; wire tcp = the socket arm with \
         client-side latency over the TCP front-end)\n{}",
        TENANT_HEAVY.1,
        TENANT_LIGHT.1,
        table.render()
    )
}

/// Renders the rows as a `BENCH_serve.json`-compatible document.
pub fn to_json(rows: &[ServeRow]) -> String {
    crate::output::json_document(
        "serve",
        rows.iter().map(|r| {
            JsonObject::new()
                .u64("window_us", r.window_us)
                .u64("load_pct", u64::from(r.load_pct))
                .f64("offered_qps", r.offered_qps)
                .f64("achieved_qps", r.achieved_qps)
                .u64("completed", r.completed)
                .u64("shed", r.shed)
                .f64("mean_s", r.mean_s)
                .f64("p50_s", r.p50_s)
                .f64("p99_s", r.p99_s)
                .f64("p999_s", r.p999_s)
                .f64("mean_batch", r.mean_batch)
                .u64("largest_batch", r.largest_batch)
                .f64("mean_depth", r.mean_depth)
                .u64("peak_depth", u64::from(r.peak_depth))
                .f64("device_mean_s", r.device_mean_s)
                .f64("queue_wait_mean_s", r.queue_wait_mean_s)
                .f64("queue_wait_p99_s", r.queue_wait_p99_s)
                .f64("steady_allocs_per_lookup", r.steady_allocs_per_lookup)
                .f64("pool_reuse_pct", r.pool_reuse_pct)
                .f64("tenant", r.tenant as f64)
                .u64("tenant_weight", r.tenant_weight)
                .u64("traced", r.traced)
                .u64("transport", r.transport)
        }),
    )
}

/// Runs the sweep, writes `BENCH_serve.json` next to the working
/// directory, and returns the rendered table (the `repro serve` artifact).
pub fn run_and_save(scale: Scale) -> String {
    let rows = run(scale);
    let json = to_json(&rows);
    let artifact = render(&rows);
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => format!("{artifact}\n[wrote BENCH_serve.json]\n"),
        Err(e) => format!("{artifact}\n[could not write BENCH_serve.json: {e}]\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_expected_shape() {
        // A shortened training trace keeps the twelve store builds (SHP +
        // tuning per operating point) test-sized, and a truncated eval
        // trace keeps the open-loop pacing (wall-clock = requests /
        // offered rate) short; the CI bench-smoke job runs the full quick
        // sweep in release mode.
        let workload = super::super::common::workload_with_train(Scale::Quick, 60);
        let embeddings: Vec<EmbeddingTable> = (0..workload.spec.num_tables())
            .map(|t| {
                EmbeddingTable::synthesize(
                    workload.spec.tables[t].num_vectors,
                    workload.spec.dim,
                    workload.generator.topic_model(t),
                    t as u64,
                )
            })
            .collect();
        let inputs = SweepInputs { workload, embeddings };
        let mut trace = inputs.workload.eval.clone();
        trace.requests.truncate(60);
        let rows = run_on(&inputs, Scale::Quick, &trace);
        assert_eq!(rows.len(), PIPELINES.len() * (LOAD_PCTS.len() + 1) + 4);
        let n = trace.requests.len() as u64;
        for pipeline in PIPELINES {
            let group: Vec<&ServeRow> = rows
                .iter()
                .filter(|r| {
                    r.tenant < 0
                        && r.traced == 0
                        && r.transport == 0
                        && r.window_us == pipeline.window_us
                })
                .collect();
            assert_eq!(group.len(), LOAD_PCTS.len() + 1);
            // Capacity row completes the whole trace without shedding.
            assert_eq!(group[0].shed, 0);
            assert!(group[0].achieved_qps > 0.0);
            // Offered load is monotone across the sweep rows.
            for w in group[1..].windows(2) {
                assert!(w[1].offered_qps > w[0].offered_qps);
            }
            for r in &group {
                // Every row orders its percentiles.
                assert!(r.p50_s <= r.p99_s && r.p99_s <= r.p999_s, "{r:?}");
                // The steady-state alloc probe: 0 with the counting
                // allocator on, the -1 sentinel with it off.
                if crate::alloc_track::thread_allocations().is_some() {
                    assert_eq!(r.steady_allocs_per_lookup, 0.0, "{r:?}");
                } else {
                    assert_eq!(r.steady_allocs_per_lookup, -1.0, "{r:?}");
                }
                assert!((0.0..=100.0).contains(&r.pool_reuse_pct), "{r:?}");
                // Device charging is on in both pipelines, so served
                // requests carry a device-time component and the depth
                // bound is respected.
                assert!(r.device_mean_s > 0.0, "{r:?}");
                assert!(u64::from(r.peak_depth) <= u64::from(pipeline.device_queue), "{r:?}");
                assert!(r.largest_batch <= pipeline.max_batch as u64, "{r:?}");
            }
            // Every submitted request is either completed or shed.
            for r in &group[1..] {
                assert_eq!(r.completed + r.shed, n, "{r:?}");
            }
        }
        // The single-read pipeline really is single-read.
        for r in rows.iter().filter(|r| r.window_us == 0) {
            assert!((r.mean_batch - 1.0).abs() < 1e-9, "{r:?}");
            assert_eq!(r.peak_depth, 1, "{r:?}");
        }
        // The batched pipeline merges requests at moderate offered load.
        let merged = rows
            .iter()
            .filter(|r| r.window_us > 0 && (25..=90).contains(&r.load_pct))
            .any(|r| r.mean_batch > 1.0);
        assert!(merged, "no moderate-load batched row merged requests: {rows:?}");
        // The QoS scenario: one row per tenant, each offered half the
        // (split) trace, with the heavy tenant completing strictly more.
        let tenant_rows: Vec<&ServeRow> = rows.iter().filter(|r| r.tenant >= 0).collect();
        assert_eq!(tenant_rows.len(), 2);
        let heavy = tenant_rows
            .iter()
            .find(|r| r.tenant == i64::from(TENANT_HEAVY.0 .0))
            .expect("heavy tenant row");
        let light = tenant_rows
            .iter()
            .find(|r| r.tenant == i64::from(TENANT_LIGHT.0 .0))
            .expect("light tenant row");
        assert_eq!(heavy.tenant_weight, u64::from(TENANT_HEAVY.1));
        assert_eq!(light.tenant_weight, u64::from(TENANT_LIGHT.1));
        for r in &tenant_rows {
            assert_eq!(r.load_pct, TENANT_LOAD_PCT);
            assert!(r.p50_s <= r.p99_s && r.p99_s <= r.p999_s, "{r:?}");
        }
        // The round-robin split hands each tenant half the (repeated)
        // arrivals.
        assert_eq!(
            heavy.completed + heavy.shed + light.completed + light.shed,
            n * TENANT_TRACE_REPEATS as u64
        );
        assert!(heavy.completed > 0 && light.completed > 0, "{tenant_rows:?}");
        // The trace-overhead arm: exactly one traced aggregate row, on
        // the batched pipeline at the matched moderate load, accounting
        // for every submitted request like any sweep row.
        let traced: Vec<&ServeRow> = rows.iter().filter(|r| r.traced != 0).collect();
        assert_eq!(traced.len(), 1);
        let tr = traced[0];
        assert_eq!((tr.window_us, tr.load_pct, tr.tenant), (BATCH_WINDOW_US, TRACE_LOAD_PCT, -1));
        assert_eq!(tr.traced, 1);
        assert_eq!(tr.transport, 0, "the trace arm runs in-process: {tr:?}");
        assert_eq!(tr.completed + tr.shed, n, "{tr:?}");
        assert!(tr.p50_s <= tr.p99_s && tr.p99_s <= tr.p999_s, "{tr:?}");
        // The network arm: exactly one socket row, on the batched
        // pipeline at the load of its in-process twin, accounting for
        // every request it put on the wire.
        let net: Vec<&ServeRow> = rows.iter().filter(|r| r.transport != 0).collect();
        assert_eq!(net.len(), 1);
        let nr = net[0];
        assert_eq!(
            (nr.window_us, nr.load_pct, nr.tenant, nr.traced),
            (BATCH_WINDOW_US, NET_LOAD_PCT, -1, 0)
        );
        assert_eq!(nr.completed + nr.shed, n, "{nr:?}");
        assert!(nr.completed > 0, "{nr:?}");
        assert!(nr.p50_s <= nr.p99_s && nr.p99_s <= nr.p999_s, "{nr:?}");
        // Its in-process twin exists in the same run — the row
        // check-bench compares the socket p99 against.
        assert!(
            rows.iter().any(|r| r.transport == 0
                && r.traced == 0
                && r.tenant < 0
                && r.window_us == nr.window_us
                && r.load_pct == nr.load_pct),
            "the net arm has no in-process twin: {rows:?}"
        );
    }

    #[test]
    fn renders_and_serializes() {
        let aggregate = ServeRow {
            window_us: 200,
            load_pct: 50,
            offered_qps: 1000.0,
            achieved_qps: 990.0,
            completed: 400,
            shed: 0,
            mean_s: 1e-4,
            p50_s: 9e-5,
            p99_s: 4e-4,
            p999_s: 9e-4,
            mean_batch: 2.5,
            largest_batch: 7,
            mean_depth: 3.1,
            peak_depth: 4,
            device_mean_s: 2e-5,
            queue_wait_mean_s: 3e-5,
            queue_wait_p99_s: 2e-4,
            steady_allocs_per_lookup: 0.0,
            pool_reuse_pct: 93.5,
            tenant: -1,
            tenant_weight: 0,
            traced: 0,
            transport: 0,
        };
        let tenant = ServeRow { load_pct: 300, tenant: 1, tenant_weight: 9, shed: 37, ..aggregate };
        let traced = ServeRow { traced: 1, ..aggregate };
        let net = ServeRow { transport: 1, ..aggregate };
        let rows = vec![aggregate, tenant, traced, net];
        let s = render(&rows);
        assert!(s.contains("offered qps"));
        assert!(s.contains("50"));
        assert!(s.contains("2.50"));
        assert!(s.contains("allocs/lk"));
        assert!(s.contains("94"), "pool reuse column missing: {s}");
        assert!(s.contains("tenant(w)"));
        assert!(s.contains("1(9)"), "tenant row label missing: {s}");
        assert!(s.contains("trace"));
        assert!(s.contains(&format!("1/{TRACE_SAMPLE_EVERY}")), "traced row label missing: {s}");
        assert!(s.contains("wire"));
        assert!(s.contains("tcp"), "net row label missing: {s}");
        let j = to_json(&rows);
        assert!(j.contains("\"experiment\":\"serve\""));
        assert!(j.contains("\"window_us\":200"));
        assert!(j.contains("\"load_pct\":50"));
        assert!(j.contains("\"p999_s\":0.0009"));
        assert!(j.contains("\"mean_batch\":2.5"));
        assert!(j.contains("\"peak_depth\":4"));
        assert!(j.contains("\"steady_allocs_per_lookup\":0"));
        assert!(j.contains("\"pool_reuse_pct\":93.5"));
        assert!(j.contains("\"tenant\":-1"));
        assert!(j.contains("\"tenant\":1"));
        assert!(j.contains("\"tenant_weight\":9"));
        assert!(j.contains("\"traced\":0"));
        assert!(j.contains("\"traced\":1"));
        assert!(j.contains("\"transport\":0"));
        assert!(j.contains("\"transport\":1"));
    }
}
