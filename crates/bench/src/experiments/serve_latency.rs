//! Serving-engine latency under offered load.
//!
//! The paper's Figure 5 plots device latency against offered throughput;
//! this experiment applies the same open-loop methodology to the whole
//! serving stack: build the paper workload's store, wrap it in the
//! sharded engine ([`bandana_serve::ShardedEngine`]), measure its
//! closed-loop capacity, then sweep Poisson offered load from a fraction
//! of that capacity past saturation and record the latency percentiles
//! and shed counters at each point. Expected shape: flat latency at low
//! load, a tail blow-up approaching capacity, and non-zero shedding past
//! it — the signature of any open-loop-tested serving system.

use crate::output::{JsonObject, TextTable};
use crate::scale::Scale;
use bandana_core::BandanaStore;
use bandana_serve::{run_closed_loop, run_open_loop, ServeConfig, ShardedEngine, ShedPolicy};
use bandana_trace::{ArrivalProcess, EmbeddingTable};
use serde::{Deserialize, Serialize};

/// Shards used by the experiment engine.
const SHARDS: usize = 4;
/// Per-shard queue bound: small enough that saturation sheds visibly.
const QUEUE_CAPACITY: usize = 64;
/// Offered load as a percentage of measured closed-loop capacity.
const LOAD_PCTS: [u32; 5] = [25, 50, 75, 90, 150];

/// One measured operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeRow {
    /// Offered load as % of measured closed-loop capacity (0 = the
    /// closed-loop capacity row itself).
    pub load_pct: u32,
    /// Offered requests per second (capacity row: achieved).
    pub offered_qps: f64,
    /// Completed requests per second.
    pub achieved_qps: f64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Mean end-to-end latency in seconds.
    pub mean_s: f64,
    /// Median end-to-end latency in seconds.
    pub p50_s: f64,
    /// P99 end-to-end latency in seconds.
    pub p99_s: f64,
    /// P99.9 end-to-end latency in seconds.
    pub p999_s: f64,
}

/// The shared inputs of every engine in the sweep: built once, reused —
/// only the store itself must be fresh per operating point (cold caches).
struct SweepInputs {
    workload: super::common::Workload,
    embeddings: Vec<EmbeddingTable>,
}

fn sweep_inputs(scale: Scale) -> SweepInputs {
    let workload = super::common::workload(scale);
    let embeddings: Vec<EmbeddingTable> = (0..workload.spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                workload.spec.tables[t].num_vectors,
                workload.spec.dim,
                workload.generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    SweepInputs { workload, embeddings }
}

fn build_engine(inputs: &SweepInputs, scale: Scale) -> ShardedEngine {
    let config = bandana_core::BandanaConfig::default()
        .with_cache_vectors(scale.default_total_cache())
        .with_seed(super::common::SEED);
    let store = BandanaStore::build(
        &inputs.workload.spec,
        &inputs.embeddings,
        &inputs.workload.train,
        config,
    )
    .expect("store builds on the paper workload");
    ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(SHARDS)
            .with_queue_capacity(QUEUE_CAPACITY)
            .with_shed_policy(ShedPolicy::DropNewest),
    )
    .expect("engine configuration is valid")
}

/// Measures closed-loop capacity, then the open-loop sweep. The first row
/// (`load_pct == 0`) is the capacity measurement itself.
pub fn run(scale: Scale) -> Vec<ServeRow> {
    let inputs = sweep_inputs(scale);
    let trace = &inputs.workload.eval;

    // Closed-loop capacity with one caller per shard.
    let capacity_engine = build_engine(&inputs, scale);
    let capacity = run_closed_loop(&capacity_engine, trace, SHARDS)
        .expect("closed-loop replay of the eval trace");
    drop(capacity_engine);
    let mut rows = vec![ServeRow {
        load_pct: 0,
        offered_qps: capacity.achieved_qps,
        achieved_qps: capacity.achieved_qps,
        completed: capacity.completed,
        shed: 0,
        mean_s: capacity.latency.mean_s,
        p50_s: capacity.latency.p50_s,
        p99_s: capacity.latency.p99_s,
        p999_s: capacity.latency.p999_s,
    }];

    // Open-loop sweep: a fresh engine per point so caches and histograms
    // start cold at every operating point.
    for pct in LOAD_PCTS {
        let rate = (capacity.achieved_qps * f64::from(pct) / 100.0).max(1.0);
        let engine = build_engine(&inputs, scale);
        let process = ArrivalProcess::Poisson { rate_rps: rate };
        let report = run_open_loop(&engine, trace, &process, super::common::SEED ^ u64::from(pct));
        rows.push(ServeRow {
            load_pct: pct,
            offered_qps: report.offered_qps,
            achieved_qps: report.achieved_qps,
            completed: report.completed,
            shed: report.shed,
            mean_s: report.latency.mean_s,
            p50_s: report.latency.p50_s,
            p99_s: report.latency.p99_s,
            p999_s: report.latency.p999_s,
        });
    }
    rows
}

/// Renders the latency table.
pub fn render(rows: &[ServeRow]) -> String {
    let mut table = TextTable::new(vec![
        "load %",
        "offered qps",
        "achieved qps",
        "completed",
        "shed",
        "mean",
        "p50",
        "p99",
        "p999",
    ]);
    for r in rows {
        let label = if r.load_pct == 0 { "closed".to_string() } else { r.load_pct.to_string() };
        table.row(vec![
            label,
            format!("{:.0}", r.offered_qps),
            format!("{:.0}", r.achieved_qps),
            r.completed.to_string(),
            r.shed.to_string(),
            bandana_serve::fmt_secs(r.mean_s),
            bandana_serve::fmt_secs(r.p50_s),
            bandana_serve::fmt_secs(r.p99_s),
            bandana_serve::fmt_secs(r.p999_s),
        ]);
    }
    format!(
        "Serving engine: open-loop latency vs offered load ({SHARDS} shards, \
         queue {QUEUE_CAPACITY}, drop-newest shedding)\n{}",
        table.render()
    )
}

/// Renders the rows as a `BENCH_serve.json`-compatible document.
pub fn to_json(rows: &[ServeRow]) -> String {
    crate::output::json_document(
        "serve",
        rows.iter().map(|r| {
            JsonObject::new()
                .u64("load_pct", u64::from(r.load_pct))
                .f64("offered_qps", r.offered_qps)
                .f64("achieved_qps", r.achieved_qps)
                .u64("completed", r.completed)
                .u64("shed", r.shed)
                .f64("mean_s", r.mean_s)
                .f64("p50_s", r.p50_s)
                .f64("p99_s", r.p99_s)
                .f64("p999_s", r.p999_s)
        }),
    )
}

/// Runs the sweep, writes `BENCH_serve.json` next to the working
/// directory, and returns the rendered table (the `repro serve` artifact).
pub fn run_and_save(scale: Scale) -> String {
    let rows = run(scale);
    let json = to_json(&rows);
    let artifact = render(&rows);
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => format!("{artifact}\n[wrote BENCH_serve.json]\n"),
        Err(e) => format!("{artifact}\n[could not write BENCH_serve.json: {e}]\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_expected_shape() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), LOAD_PCTS.len() + 1);
        // Capacity row completes the whole trace without shedding.
        assert_eq!(rows[0].shed, 0);
        assert!(rows[0].achieved_qps > 0.0);
        // Offered load is monotone across the sweep rows.
        for w in rows[1..].windows(2) {
            assert!(w[1].offered_qps > w[0].offered_qps);
        }
        // Every row orders its percentiles.
        for r in &rows {
            assert!(r.p50_s <= r.p99_s && r.p99_s <= r.p999_s, "{r:?}");
        }
        // Every submitted request is either completed or shed.
        let n = sweep_inputs(Scale::Quick).workload.eval.requests.len() as u64;
        for r in &rows[1..] {
            assert_eq!(r.completed + r.shed, n, "{r:?}");
        }
    }

    #[test]
    fn renders_and_serializes() {
        let rows = vec![ServeRow {
            load_pct: 50,
            offered_qps: 1000.0,
            achieved_qps: 990.0,
            completed: 400,
            shed: 0,
            mean_s: 1e-4,
            p50_s: 9e-5,
            p99_s: 4e-4,
            p999_s: 9e-4,
        }];
        let s = render(&rows);
        assert!(s.contains("offered qps"));
        assert!(s.contains("50"));
        let j = to_json(&rows);
        assert!(j.contains("\"experiment\":\"serve\""));
        assert!(j.contains("\"load_pct\":50"));
        assert!(j.contains("\"p999_s\":0.0009"));
    }
}
