//! Serving under drift with the control plane on vs off: per-tenant SLO
//! enforcement and tuner feedback over long simulated traffic.
//!
//! `ablation-drift` showed a *trained configuration* decaying as the hot
//! set rotates; this experiment extends the question to the *serving
//! layer*: with traffic drifting and one tenant flooding far past
//! capacity, does the engine's control plane keep the other tenant's SLO
//! intact? Two tenants split one Poisson arrival clock:
//!
//! * the **protected** tenant offers a fraction of capacity and carries a
//!   p99 budget sized well below the latency its lane would reach if the
//!   offender were allowed to saturate the engine;
//! * the **offender** carries most of the DRR weight *and* several times
//!   the engine's capacity in offered load, with a tight budget its own
//!   flood latency must blow.
//!
//! The scenario runs twice on identical traffic (a
//! [`DriftingTraceGenerator`] stream whose hot set rotates every epoch,
//! so the online tuner has real work):
//!
//! * **controller-on** — the engine runs the
//!   [`SloController`](bandana_serve::SloController) (plus the online
//!   tuner). The offender blows its own recent-window p99 within tens of
//!   milliseconds of flooding, trips its breaker, and is shed at
//!   admission (`slo_shed`); exponential backoff keeps a re-offending
//!   tenant mostly shed, so the protected tenant's recent-window p99
//!   settles far under its budget.
//! * **controller-off** — same tenants, same budgets, no controller. The
//!   protected tenant is starved to its lane-full latency and its
//!   recent-window p99 blows the budget it was promised.
//!
//! One row per tenant per arm is appended to `BENCH_serve.json`
//! (`slo_on` distinguishes the arms) with the windowed p99, the budget,
//! and the shed-reason breakdown; `repro check-bench` gates the claim
//! structurally: SLO-on must keep the protected tenant under budget with
//! a nonzero offender `slo_shed`, SLO-off must blow it.

use crate::output::{JsonObject, TextTable};
use crate::scale::Scale;
use bandana_core::BandanaStore;
use bandana_serve::{
    run_closed_loop, run_open_loop_with, ControlConfig, LoadGenConfig, OnlineTunerSettings,
    ServeConfig, ShardedEngine, ShedPolicy, SloControllerConfig, TenantId, TenantMetrics,
    TenantSpec,
};
use bandana_trace::{ArrivalProcess, DriftConfig, DriftingTraceGenerator, EmbeddingTable, Trace};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Shards of the drift engine (kept small: the drift runs are long and
/// this box may be a single core).
const SHARDS: usize = 2;
/// Per-tenant lane capacity: bounded so starvation shows up as lane-full
/// latency rather than unbounded queueing.
const LANE_CAPACITY: usize = 64;
/// The batched pipeline of the serve sweep (window µs, max batch, device
/// queue depth).
const BATCH_WINDOW_US: u64 = 200;
const MAX_BATCH: usize = 16;
const BATCH_DEPTH: u32 = 4;
/// Offered load of the scenario as % of measured closed-loop capacity.
const DRIFT_LOAD_PCT: u32 = 400;
/// Closed-loop callers for the capacity measurement: several per shard,
/// or the measurement is submission-bound and understates the batched
/// pipeline (which then understates the overload the scenario offers).
const CAPACITY_CONCURRENCY: usize = 4 * SHARDS;
/// The protected tenant's budget as a multiple of its measured *clean*
/// p99 (protected-only traffic on an idle engine): high enough that
/// drift-induced slowdown in the controlled arm stays well under it
/// (measured ~1.8× clean by end of run), an order of magnitude below the
/// lane-full latency starvation pins the tenant at (measured ~13× the
/// budget in the off arm).
const PROTECTED_BUDGET_MULTIPLE: f64 = 8.0;
/// The latency-sensitive tenant with the SLO to protect.
const PROTECTED: (TenantId, u32) = (TenantId(1), 1);
/// The bulk tenant that floods the engine (and holds most of the DRR
/// weight, so without SLO shedding it starves the protected tenant).
const OFFENDER: (TenantId, u32) = (TenantId(2), 19);
/// Arrival slots: 1 in 16 requests belongs to the protected tenant, so
/// its offered load is 25% of capacity at the 400% operating point —
/// comfortably servable alone even after drift erodes the trained
/// placement, while the offender alone oversubscribes the engine ~4×.
const PROTECTED_SLOT_SHARE: usize = 16;
/// Epochs the serving trace drifts across.
const DRIFT_EPOCHS: usize = 4;
/// Hot-set rotation per epoch (same spirit as `ablation-drift`).
const ROTATE_FRACTION: f64 = 0.2;

/// Wall-clock length of each arm's open-loop run.
fn run_secs(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => 6.0,
        Scale::Full => 12.0,
    }
}

/// The protected tenant's p99 budget from its measured clean p99: the
/// promise is "about what you get from an unloaded engine, with drift
/// headroom" — and the off arm starves the tenant to its lane-full
/// latency, one to two orders of magnitude above clean, so the contrast
/// is wide on both sides.
fn protected_budget(clean_p99_s: f64) -> Duration {
    Duration::from_secs_f64(clean_p99_s.max(1e-3) * PROTECTED_BUDGET_MULTIPLE)
}

/// The offender's p99 budget: a third of the lane-full latency its own
/// flood pins it at, so it reliably blows its budget (and trips the
/// breaker) within tens of milliseconds of saturating its lanes.
fn offender_budget(capacity_qps: f64) -> Duration {
    let share = f64::from(OFFENDER.1) / f64::from(PROTECTED.1 + OFFENDER.1);
    let lane_full_s = LANE_CAPACITY as f64 / (share * capacity_qps).max(1.0);
    Duration::from_secs_f64(lane_full_s / 3.0)
}

/// The breaker tuning of the on arm: first trip holds one second, and a
/// tenant that re-blows on release earns an 8× longer hold — a sustained
/// offender converges to permanently shed within a couple of bursts, so
/// the tail of the run (and the final recent window the gate reads) is
/// clean.
fn slo_config() -> SloControllerConfig {
    SloControllerConfig {
        min_samples: 8,
        release_fraction: 0.5,
        base_hold: Duration::from_secs(1),
        backoff: 8,
        max_hold: Duration::from_secs(60),
        trip_cooldown_windows: 2,
        // Longer than any run: the offender's escalation never resets
        // mid-experiment.
        forgive_after: Duration::from_secs(60),
    }
}

/// Bus cadence for the drift runs: 5 ms ticks, a 400 ms recent window.
fn control_config() -> ControlConfig {
    ControlConfig {
        tick: Duration::from_millis(5),
        window_slot: Duration::from_millis(50),
        window_slots: 8,
    }
}

/// One tenant's measured outcome in one arm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftServeRow {
    /// Micro-batch window (matches the serve sweep's batched pipeline).
    pub window_us: u64,
    /// Offered load as % of measured capacity.
    pub load_pct: u32,
    /// Whether the control plane ran in this arm.
    pub slo_on: bool,
    /// Tenant id of the row.
    pub tenant: i64,
    /// The tenant's DRR weight.
    pub tenant_weight: u64,
    /// Whether this is the protected tenant (the one whose budget the
    /// gate checks).
    pub protected: bool,
    /// The tenant's p99 budget in seconds.
    pub slo_p99_s: f64,
    /// Offered requests per second for this tenant.
    pub offered_qps: f64,
    /// Completed requests per second.
    pub achieved_qps: f64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed at admission (all causes).
    pub shed: u64,
    /// ...because a shard lane was full.
    pub shed_lane_full: u64,
    /// ...because the admission quota was exhausted.
    pub shed_quota: u64,
    /// ...because the SLO breaker was tripped.
    pub shed_slo: u64,
    /// Parts reclaimed from other shards' lanes on mid-dispatch sheds.
    pub reclaimed: u64,
    /// Lifetime mean / p50 / p99 / p99.9 latency in seconds.
    pub mean_s: f64,
    /// Lifetime p50.
    pub p50_s: f64,
    /// Lifetime p99.
    pub p99_s: f64,
    /// Lifetime p99.9.
    pub p999_s: f64,
    /// Recent-window p99 at end of run (what the SLO gate reads).
    pub p99_recent_s: f64,
    /// Samples inside the recent window at end of run.
    pub recent_count: u64,
    /// Admission-policy hot-swaps the tuner applied during the run
    /// (engine-wide; zero in the off arm).
    pub tuner_swaps: u64,
}

/// The sizing knobs, split out so the unit test can run a miniature
/// version of the scenario.
#[derive(Debug, Clone, Copy)]
struct DriftParams {
    run_secs: f64,
    train_requests: usize,
    capacity_requests: usize,
}

fn params(scale: Scale) -> DriftParams {
    DriftParams {
        run_secs: run_secs(scale),
        train_requests: scale.train_requests(),
        capacity_requests: scale.eval_requests(),
    }
}

struct DriftInputs {
    spec: bandana_trace::ModelSpec,
    embeddings: Vec<EmbeddingTable>,
    train: Trace,
}

fn build_store(inputs: &DriftInputs, scale: Scale) -> BandanaStore {
    let config = bandana_core::BandanaConfig::default()
        .with_cache_vectors(scale.default_total_cache())
        .with_seed(super::common::SEED);
    BandanaStore::build(&inputs.spec, &inputs.embeddings, &inputs.train, config)
        .expect("store builds on the drift workload")
}

/// Builds one arm's engine: the batched pipeline, both tenants with
/// their budgets, and — in the on arm — the SLO controller plus the
/// online tuner.
fn build_engine(
    inputs: &DriftInputs,
    scale: Scale,
    budgets: (Duration, Duration),
    controllers_on: bool,
) -> ShardedEngine {
    let (protect_budget, offend_budget) = budgets;
    let mut config = ServeConfig::default()
        .with_shards(SHARDS)
        .with_queue_capacity(LANE_CAPACITY)
        .with_shed_policy(ShedPolicy::DropNewest)
        .with_batch_window(Duration::from_micros(BATCH_WINDOW_US))
        .with_max_batch(MAX_BATCH)
        .with_device_queue(BATCH_DEPTH)
        .with_control(control_config())
        .with_tenant(PROTECTED.0, TenantSpec::new(PROTECTED.1).with_slo_p99(protect_budget))
        .with_tenant(OFFENDER.0, TenantSpec::new(OFFENDER.1).with_slo_p99(offend_budget));
    if controllers_on {
        config = config.with_slo_controller(slo_config()).with_tuner(OnlineTunerSettings {
            // Sampled-lookup epochs sized so several tuning decisions land
            // inside one run without the mini-simulators dominating a
            // single-core host.
            epoch_lookups: 10_000,
            sample_every: 16,
            ..Default::default()
        });
    }
    ShardedEngine::new(build_store(inputs, scale), config)
        .expect("drift engine configuration is valid")
}

/// Runs one arm and folds each tenant's metrics into a row.
fn run_arm(
    inputs: &DriftInputs,
    scale: Scale,
    trace: &Trace,
    rate: f64,
    budgets: (Duration, Duration),
    slo_on: bool,
) -> Vec<DriftServeRow> {
    let engine = build_engine(inputs, scale, budgets, slo_on);
    // One protected arrival slot, the rest offender: identical clock,
    // asymmetric offered load.
    let mut slots = vec![OFFENDER.0; PROTECTED_SLOT_SHARE];
    slots[0] = PROTECTED.0;
    let process = ArrivalProcess::Poisson { rate_rps: rate };
    let report = run_open_loop_with(
        &engine,
        &slots,
        trace,
        &process,
        // The same seed in both arms: the A/B comparison is only about
        // the controller, so the arrival schedule must be identical too.
        super::common::SEED ^ u64::from(DRIFT_LOAD_PCT),
        // Satellite of the same PR: a single reactor, because extra
        // pacing threads on a single-core host only preempt the shard
        // workers they are measuring.
        LoadGenConfig { reactors: 1 },
    );
    let m = engine.metrics();
    let row_of = |t: &TenantMetrics, protected: bool, slot_share: f64| DriftServeRow {
        window_us: BATCH_WINDOW_US,
        load_pct: DRIFT_LOAD_PCT,
        slo_on,
        tenant: i64::from(t.id.0),
        tenant_weight: u64::from(t.weight),
        protected,
        slo_p99_s: t.slo_p99.map(|d| d.as_secs_f64()).unwrap_or(0.0),
        offered_qps: rate * slot_share,
        achieved_qps: t.completed as f64 / report.wall_s,
        completed: t.completed,
        shed: t.shed,
        shed_lane_full: t.shed_reasons.lane_full,
        shed_quota: t.shed_reasons.quota,
        shed_slo: t.shed_reasons.slo,
        reclaimed: t.shed_reasons.reclaimed,
        mean_s: t.latency.mean_s,
        p50_s: t.latency.p50_s,
        p99_s: t.latency.p99_s,
        p999_s: t.latency.p999_s,
        p99_recent_s: t.recent.p99_s,
        recent_count: t.recent.count,
        tuner_swaps: m.tuner_swaps,
    };
    let tenant = |id: TenantId| {
        m.per_tenant.iter().find(|t| t.id == id).expect("scenario tenants are registered")
    };
    let protected_share = 1.0 / PROTECTED_SLOT_SHARE as f64;
    vec![
        row_of(tenant(PROTECTED.0), true, protected_share),
        row_of(tenant(OFFENDER.0), false, 1.0 - protected_share),
    ]
}

/// Runs the full experiment: measure capacity, derive the budgets and
/// the drifting trace, then run the controller-on and controller-off
/// arms on identical traffic.
pub fn run(scale: Scale) -> Vec<DriftServeRow> {
    run_with(scale, params(scale))
}

fn run_with(scale: Scale, p: DriftParams) -> Vec<DriftServeRow> {
    // The drifting generator produces the training trace inside epoch 0
    // (undrifted — the store is trained exactly like the serve sweep's)
    // and the serving trace across DRIFT_EPOCHS later epochs, so the hot
    // set the engine was placed for rotates away mid-run.
    let spec = bandana_trace::ModelSpec::paper_scaled(scale.spec_scale());
    let mut base = bandana_trace::TraceGenerator::new(&spec, super::common::SEED);
    let train = base.generate_requests(p.train_requests);
    let capacity_trace = base.generate_requests(p.capacity_requests);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                base.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let inputs = DriftInputs { spec, embeddings, train };

    // Closed-loop capacity of the batched pipeline on undrifted traffic,
    // with enough callers that the measurement is engine-bound.
    let placeholder = Duration::from_secs(3600);
    let capacity_engine = build_engine(&inputs, scale, (placeholder, placeholder), false);
    let capacity = run_closed_loop(
        &capacity_engine,
        &capacity_trace,
        CAPACITY_CONCURRENCY.min(capacity_trace.requests.len().max(1)),
    )
    .expect("closed-loop capacity replay");
    drop(capacity_engine);
    let capacity_qps = capacity.achieved_qps.max(1.0);
    let rate = capacity_qps * f64::from(DRIFT_LOAD_PCT) / 100.0;
    let protected_rate = rate / PROTECTED_SLOT_SHARE as f64;

    // The drifting serving trace, sized to the offered rate and run
    // length; both arms replay the identical request stream.
    let total_requests = ((rate * p.run_secs).ceil() as usize).max(DRIFT_EPOCHS);
    let mut driftgen = DriftingTraceGenerator::new(
        &inputs.spec,
        super::common::SEED ^ 0x0D21F7,
        DriftConfig {
            requests_per_epoch: total_requests.div_ceil(DRIFT_EPOCHS),
            rotate_fraction: ROTATE_FRACTION,
        },
    );
    let trace = driftgen.generate_requests(total_requests);

    // Calibrate the protected tenant's budget from its *clean* p99:
    // protected-only traffic at its scenario rate on an otherwise idle
    // engine (a slice of the same drifting trace, a fresh engine).
    let clean_engine = build_engine(&inputs, scale, (placeholder, placeholder), false);
    let mut clean_trace = trace.clone();
    clean_trace.requests.truncate(
        ((protected_rate * p.run_secs / 4.0).ceil() as usize).clamp(1, trace.requests.len()),
    );
    let clean = run_open_loop_with(
        &clean_engine,
        &[PROTECTED.0],
        &clean_trace,
        &ArrivalProcess::Poisson { rate_rps: protected_rate.max(1.0) },
        super::common::SEED ^ 0xC1EA,
        LoadGenConfig { reactors: 1 },
    );
    drop(clean_engine);
    let budgets = (protected_budget(clean.latency.p99_s), offender_budget(capacity_qps));

    let mut rows = run_arm(&inputs, scale, &trace, rate, budgets, true);
    rows.extend(run_arm(&inputs, scale, &trace, rate, budgets, false));
    rows
}

/// Renders the drift table.
pub fn render(rows: &[DriftServeRow]) -> String {
    let mut table = TextTable::new(vec![
        "arm",
        "tenant(w)",
        "role",
        "offered qps",
        "achieved qps",
        "completed",
        "shed",
        "lane-full",
        "quota",
        "slo",
        "p99",
        "recent p99",
        "budget",
        "tuner swaps",
    ]);
    for r in rows {
        table.row(vec![
            if r.slo_on { "slo-on".into() } else { "slo-off".to_string() },
            format!("{}({})", r.tenant, r.tenant_weight),
            if r.protected { "protected".into() } else { "offender".to_string() },
            format!("{:.0}", r.offered_qps),
            format!("{:.0}", r.achieved_qps),
            r.completed.to_string(),
            r.shed.to_string(),
            r.shed_lane_full.to_string(),
            r.shed_quota.to_string(),
            r.shed_slo.to_string(),
            bandana_serve::fmt_secs(r.p99_s),
            bandana_serve::fmt_secs(r.p99_recent_s),
            bandana_serve::fmt_secs(r.slo_p99_s),
            r.tuner_swaps.to_string(),
        ]);
    }
    format!(
        "Serving under drift at {DRIFT_LOAD_PCT}% of capacity ({SHARDS} shards, lane \
         capacity {LANE_CAPACITY}, drop-newest, {DRIFT_EPOCHS} drift epochs rotating \
         {ROTATE_FRACTION} of the hot set each): controller-on (SLO breaker + online \
         tuner) vs controller-off on identical traffic. The gate: slo-on keeps the \
         protected tenant's recent-window p99 under its budget by shedding the \
         offender; slo-off blows it.\n{}",
        table.render()
    )
}

/// Renders the rows in `BENCH_serve.json` row format.
fn rows_to_json(rows: &[DriftServeRow]) -> Vec<JsonObject> {
    rows.iter()
        .map(|r| {
            JsonObject::new()
                .u64("window_us", r.window_us)
                .u64("load_pct", u64::from(r.load_pct))
                .u64("slo_on", u64::from(r.slo_on))
                .f64("tenant", r.tenant as f64)
                .u64("tenant_weight", r.tenant_weight)
                .u64("protected", u64::from(r.protected))
                .f64("slo_p99_s", r.slo_p99_s)
                .f64("offered_qps", r.offered_qps)
                .f64("achieved_qps", r.achieved_qps)
                .u64("completed", r.completed)
                .u64("shed", r.shed)
                .u64("shed_lane_full", r.shed_lane_full)
                .u64("shed_quota", r.shed_quota)
                .u64("shed_slo", r.shed_slo)
                .u64("reclaimed", r.reclaimed)
                .f64("mean_s", r.mean_s)
                .f64("p50_s", r.p50_s)
                .f64("p99_s", r.p99_s)
                .f64("p999_s", r.p999_s)
                .f64("p99_recent_s", r.p99_recent_s)
                .u64("recent_count", r.recent_count)
                .u64("tuner_swaps", r.tuner_swaps)
        })
        .collect()
}

/// Merges the drift rows into an existing `BENCH_serve.json` document
/// (replacing any previous drift rows, keeping the sweep's rows), or
/// builds a drift-only document when none exists.
fn merged_document(existing: Option<&str>, rows: &[DriftServeRow]) -> String {
    let mut objects: Vec<JsonObject> = Vec::new();
    if let Some(text) = existing {
        if let Ok(doc) = crate::baseline::parse_document(text) {
            for row in &doc.rows {
                // Drift rows carry `slo_on`; everything else is the serve
                // sweep's and is preserved verbatim (numeric fields are
                // the whole row format).
                if row.contains_key("slo_on") {
                    continue;
                }
                let mut object = JsonObject::new();
                for (k, v) in row {
                    object = object.f64(k, *v);
                }
                objects.push(object);
            }
        }
    }
    objects.extend(rows_to_json(rows));
    crate::output::json_document("serve", objects)
}

/// Runs the experiment and appends its rows to `BENCH_serve.json`
/// alongside the serve sweep's (run `repro serve` first; this preserves
/// whatever rows are already there).
pub fn run_and_save(scale: Scale) -> String {
    let rows = run(scale);
    let artifact = render(&rows);
    let existing = std::fs::read_to_string("BENCH_serve.json").ok();
    let json = merged_document(existing.as_deref(), &rows);
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => format!("{artifact}\n[merged {} drift rows into BENCH_serve.json]\n", rows.len()),
        Err(e) => format!("{artifact}\n[could not write BENCH_serve.json: {e}]\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run: sized for test wall-clock, checking
    /// row structure and accounting identities (the SLO-protection claims
    /// themselves are gated on the real run by `repro check-bench`).
    #[test]
    fn miniature_drift_run_has_sound_rows() {
        let rows = run_with(
            Scale::Quick,
            DriftParams { run_secs: 0.8, train_requests: 120, capacity_requests: 60 },
        );
        assert_eq!(rows.len(), 4, "two tenants × two arms");
        for arm in [true, false] {
            let arm_rows: Vec<&DriftServeRow> = rows.iter().filter(|r| r.slo_on == arm).collect();
            assert_eq!(arm_rows.len(), 2);
            let protected = arm_rows.iter().find(|r| r.protected).expect("protected row present");
            let offender = arm_rows.iter().find(|r| !r.protected).expect("offender row present");
            assert_eq!(protected.tenant, i64::from(PROTECTED.0 .0));
            assert_eq!(offender.tenant_weight, u64::from(OFFENDER.1));
            for r in &arm_rows {
                // Budgets were derived from measured capacity.
                assert!(r.slo_p99_s > 0.0, "{r:?}");
                // The shed breakdown partitions the aggregate.
                assert_eq!(r.shed_lane_full + r.shed_quota + r.shed_slo, r.shed, "{r:?}");
                assert!(r.p50_s <= r.p99_s && r.p99_s <= r.p999_s, "{r:?}");
                assert!(r.completed > 0, "{r:?}");
            }
            // The offender's offered load dwarfs the protected tenant's.
            assert!(offender.offered_qps > protected.offered_qps * 10.0);
            if !arm {
                // No controller: nothing may be SLO-shed.
                assert_eq!(protected.shed_slo + offender.shed_slo, 0, "{arm_rows:?}");
            }
        }
        // Both arms offered each tenant the identical request slice (the
        // per-tenant totals pin the slot split, not just the trace
        // length) at the identical rate.
        for tenant in [PROTECTED.0, OFFENDER.0] {
            let per_arm: Vec<&DriftServeRow> =
                rows.iter().filter(|r| r.tenant == i64::from(tenant.0)).collect();
            assert_eq!(per_arm.len(), 2);
            assert_eq!(
                per_arm[0].completed + per_arm[0].shed,
                per_arm[1].completed + per_arm[1].shed,
                "arms must offer {tenant} the same requests"
            );
            assert_eq!(per_arm[0].offered_qps, per_arm[1].offered_qps);
        }
    }

    #[test]
    fn renders_and_merges_into_bench_document() {
        let row = DriftServeRow {
            window_us: 200,
            load_pct: 400,
            slo_on: true,
            tenant: 1,
            tenant_weight: 1,
            protected: true,
            slo_p99_s: 0.15,
            offered_qps: 500.0,
            achieved_qps: 480.0,
            completed: 2_000,
            shed: 120,
            shed_lane_full: 80,
            shed_quota: 0,
            shed_slo: 40,
            reclaimed: 7,
            mean_s: 2e-3,
            p50_s: 1e-3,
            p99_s: 2e-2,
            p999_s: 5e-2,
            p99_recent_s: 3e-3,
            recent_count: 400,
            tuner_swaps: 6,
        };
        let offender = DriftServeRow {
            tenant: 2,
            tenant_weight: 19,
            protected: false,
            slo_p99_s: 0.01,
            shed_slo: 5_000,
            shed: 5_080,
            ..row
        };
        let rows = vec![row, offender];
        let rendered = render(&rows);
        assert!(rendered.contains("slo-on"));
        assert!(rendered.contains("protected"));
        assert!(rendered.contains("offender"));
        assert!(rendered.contains("recent p99"));

        // Merging keeps the sweep's rows, replaces stale drift rows, and
        // appends the fresh ones.
        let sweep = "{\"experiment\":\"serve\",\"rows\":[\
                     {\"window_us\":200,\"load_pct\":50,\"p99_s\":0.001,\"completed\":60},\
                     {\"window_us\":200,\"load_pct\":400,\"slo_on\":1,\"tenant\":1,\"completed\":9}]}\n";
        let merged = merged_document(Some(sweep), &rows);
        let doc = crate::baseline::parse_document(&merged).expect("merged document parses");
        assert_eq!(doc.experiment, "serve");
        assert_eq!(doc.rows.len(), 3, "sweep row + two fresh drift rows: {doc:?}");
        assert_eq!(doc.rows[0]["load_pct"], 50.0, "sweep row preserved");
        assert!(doc.rows.iter().filter(|r| r.contains_key("slo_on")).count() == 2);
        assert!(
            !doc.rows.iter().any(|r| r.get("completed") == Some(&9.0)),
            "stale drift rows are replaced"
        );
        // Without an existing file the document is drift-only.
        let standalone = merged_document(None, &rows);
        let doc = crate::baseline::parse_document(&standalone).expect("standalone parses");
        assert_eq!(doc.rows.len(), 2);
        assert_eq!(doc.rows[0]["slo_p99_s"], 0.15);
        assert_eq!(doc.rows[1]["shed_slo"], 5_000.0);
    }
}
