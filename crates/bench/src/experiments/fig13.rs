//! Figure 13: end-to-end effective-bandwidth increase vs total cache size.
//!
//! The full Bandana configuration — SHP placement, per-table DRAM division
//! by hit-rate curves, miniature-cache-tuned thresholds — swept over total
//! cache sizes (the paper's 1 M–5 M vectors, scaled).
//!
//! **Paper shape:** gains grow with cache size, up to ~5× for table 2;
//! tables with near-random access (8) stay low and flat.

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_cache::{allocate_dram, AdmissionPolicy, HitRateCurve};
use bandana_core::{effective_bandwidth_sweep, tune_thresholds, TunerConfig};
use bandana_trace::StackDistances;
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// 1-based table number.
    pub table: usize,
    /// Total cache size (vectors, across all tables).
    pub total_cache: usize,
    /// Effective-bandwidth increase over the baseline at the same per-table
    /// cache size.
    pub gain: f64,
}

/// Runs the end-to-end cache-size sweep.
pub fn run(scale: Scale) -> Vec<Row> {
    let w = super::common::workload(scale);
    let layouts = super::common::shp_layouts(&w, scale);
    let freqs = super::common::frequencies(&w);
    let weights = super::common::lookup_weights(&w);

    // Hit-rate curves from the training trace, reused for every total.
    let max_total = *scale.total_cache_sizes().last().unwrap();
    let sizes: Vec<usize> =
        [64usize, 16, 8, 4, 2, 1].iter().map(|d| (max_total / d).max(1)).collect();
    let curves: Vec<HitRateCurve> = (0..w.spec.num_tables())
        .map(|t| {
            let stream = w.train.table_stream(t);
            let mut sd = StackDistances::with_capacity(stream.len().max(1));
            sd.access_all(stream.iter().map(|&v| v as u64));
            HitRateCurve::new(sd.hit_rate_curve(&sizes))
        })
        .collect();

    let mut rows = Vec::new();
    for &total in &scale.total_cache_sizes() {
        let capacities: Vec<usize> = allocate_dram(total, &curves, &weights, (total / 64).max(1))
            .into_iter()
            .map(|c| c.max(1))
            .collect();
        let policies: Vec<AdmissionPolicy> = (0..w.spec.num_tables())
            .map(|t| {
                let chosen = tune_thresholds(
                    &layouts[t],
                    &freqs[t],
                    &w.train.table_stream(t),
                    &TunerConfig {
                        cache_capacity: capacities[t],
                        sampling_rate: 0.25,
                        candidate_thresholds: super::fig12::thresholds(scale),
                        salt: super::common::SEED,
                    },
                );
                AdmissionPolicy::Threshold { t: chosen }
            })
            .collect();
        let gains =
            effective_bandwidth_sweep(&w.eval, &layouts, &freqs, &capacities, &policies, 1.5);
        for g in gains {
            rows.push(Row { table: g.table + 1, total_cache: total, gain: g.gain });
        }
    }
    rows
}

/// Renders the figure artifact.
pub fn render(rows: &[Row]) -> String {
    let mut totals: Vec<usize> = rows.iter().map(|r| r.total_cache).collect();
    totals.sort_unstable();
    totals.dedup();
    let mut header = vec!["table".to_string()];
    header.extend(totals.iter().map(|t| format!("total {t}")));
    let mut t = TextTable::new(header);
    for table in 1..=8usize {
        let mut cells = vec![table.to_string()];
        for &total in &totals {
            cells.push(
                rows.iter()
                    .find(|r| r.table == table && r.total_cache == total)
                    .map(|r| pct(r.gain))
                    .unwrap_or_default(),
            );
        }
        t.row(cells);
    }
    format!(
        "Figure 13: end-to-end effective-bandwidth increase vs total cache size\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        let totals = Scale::Quick.total_cache_sizes();
        let gain = |table: usize, total: usize| {
            rows.iter().find(|r| r.table == table && r.total_cache == total).unwrap().gain
        };
        // Table 2 is the big winner and grows with cache size.
        let t2_small = gain(2, totals[0]);
        let t2_large = gain(2, *totals.last().unwrap());
        assert!(t2_large > 0.2, "table 2 should gain substantially: {t2_large}");
        assert!(t2_large >= t2_small, "table 2 gain should grow: {t2_small} -> {t2_large}");
        // Table 8 (random-ish) trails table 2 at the largest cache.
        assert!(gain(8, *totals.last().unwrap()) < t2_large);
        // The paper's headline: overall positive effective-bandwidth gains.
        let mean: f64 = rows.iter().map(|r| r.gain).sum::<f64>() / rows.len() as f64;
        assert!(mean > 0.0, "mean gain {mean}");
    }

    #[test]
    fn render_has_eight_tables() {
        let s = render(&run(Scale::Quick));
        assert!(s.lines().count() >= 11);
    }
}
