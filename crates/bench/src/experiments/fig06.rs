//! Figure 6: effective-bandwidth increase vs number of K-means clusters
//! (unlimited DRAM cache).
//!
//! Orders each table by flat K-means over its embedding values and measures
//! the unlimited-cache effective-bandwidth increase of the resulting layout
//! on the evaluation trace.
//!
//! **Paper shape:** gains grow with cluster count and plateau; tables 1–2
//! benefit most (up to ~180%), tables with high compulsory-miss rates (8)
//! barely move.

use crate::output::pct;
use crate::output::TextTable;
use crate::scale::Scale;
use bandana_partition::{fanout_report, kmeans, order_from_assignments, BlockLayout, KMeansConfig};
use bandana_trace::EmbeddingTable;
use serde::{Deserialize, Serialize};

/// One sweep point: a table at a cluster count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// 1-based table number.
    pub table: usize,
    /// K-means cluster count.
    pub clusters: usize,
    /// Unlimited-cache effective-bandwidth increase.
    pub gain: f64,
    /// Average query fanout (blocks per query; lower is better). Unlike the
    /// gain, this metric never saturates at small scales.
    pub fanout: f64,
}

/// Cluster counts for a scale.
pub fn cluster_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 4, 16, 64],
        Scale::Full => vec![1, 4, 16, 64, 256],
    }
}

/// Runs the K-means cluster sweep over all 8 tables.
pub fn run(scale: Scale) -> Vec<Row> {
    let w = super::common::workload(scale);
    // Partial-coverage evaluation window (see Scale::unlimited_eval_requests).
    let (eval, _) = w.eval.split_at(scale.unlimited_eval_requests().min(w.eval.requests.len()));
    let mut rows = Vec::new();
    for t in 0..w.spec.num_tables() {
        let emb = EmbeddingTable::synthesize(
            w.spec.tables[t].num_vectors,
            w.spec.dim,
            w.generator.topic_model(t),
            super::common::SEED.wrapping_add(t as u64),
        );
        for &k in &cluster_counts(scale) {
            let result = kmeans(
                emb.data(),
                w.spec.dim,
                &KMeansConfig { k, iterations: 10, seed: super::common::SEED },
            );
            let layout = BlockLayout::from_order(
                order_from_assignments(&result.assignments),
                super::common::VECTORS_PER_BLOCK,
            );
            let report = fanout_report(&layout, eval.table_queries(t));
            rows.push(Row {
                table: t + 1,
                clusters: k,
                gain: report.unlimited_cache_gain(),
                fanout: report.average_fanout,
            });
        }
    }
    rows
}

/// Renders the figure artifact.
pub fn render(rows: &[Row]) -> String {
    let clusters: Vec<usize> = {
        let mut c: Vec<usize> = rows.iter().map(|r| r.clusters).collect();
        c.sort_unstable();
        c.dedup();
        c
    };
    let mut header = vec!["table".to_string()];
    header.extend(clusters.iter().map(|k| format!("k={k}")));
    let mut t = TextTable::new(header);
    for table in 1..=8usize {
        let mut cells = vec![table.to_string()];
        for &k in &clusters {
            let gain = rows
                .iter()
                .find(|r| r.table == table && r.clusters == k)
                .map(|r| pct(r.gain))
                .unwrap_or_default();
            cells.push(gain);
        }
        t.row(cells);
    }
    format!(
        "Figure 6: effective-bandwidth increase vs K-means clusters (unlimited cache)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        let gain = |table: usize, k: usize| {
            rows.iter().find(|r| r.table == table && r.clusters == k).unwrap().gain
        };
        let fanout = |table: usize, k: usize| {
            rows.iter().find(|r| r.table == table && r.clusters == k).unwrap().fanout
        };
        let ks = cluster_counts(Scale::Quick);
        let (k_min, k_max) = (ks[0], *ks.last().unwrap());
        // More clusters improve locality on table 2. (At Quick scale the
        // unlimited-cache *gain* saturates — every layout of a 32-block
        // table touches all blocks — so the assertion uses fanout; at Full
        // scale the rendered gains separate as in the paper.)
        assert!(
            fanout(2, k_max) < fanout(2, k_min) * 0.95,
            "table 2: k={k_max} fanout {} vs k={k_min} fanout {}",
            fanout(2, k_max),
            fanout(2, k_min)
        );
        // Table 8 (compulsory-miss bound) never beats table 2's gain.
        assert!(
            gain(8, k_max) <= gain(2, k_max) + 1e-9,
            "table 8 ({}) should trail table 2 ({})",
            gain(8, k_max),
            gain(2, k_max)
        );
        // Gains are never meaningfully negative (ordering cannot hurt an
        // unlimited cache).
        assert!(rows.iter().all(|r| r.gain > -1e-9));
    }

    #[test]
    fn render_is_a_grid() {
        let rows = run(Scale::Quick);
        let s = render(&rows);
        assert!(s.contains("k=1"));
        assert!(s.lines().count() >= 10);
    }
}
