//! Extension ablation: does the DRAM eviction policy matter?
//!
//! The paper fixes LRU (§4.3) and never revisits it. This experiment
//! replays the full Bandana pipeline — SHP placement plus threshold
//! admission — on table 2 under five eviction policies (LRU, FIFO, CLOCK,
//! LFU, 2Q) across the Figure 12 cache sizes, reporting the effective-
//! bandwidth increase over the no-prefetch baseline for each.
//!
//! Measured shape (robust across scales on this workload): the recency
//! family — LRU, CLOCK, FIFO — clusters within a couple of points of each
//! other, so the paper's LRU choice is as good as any of its cheap
//! variants. LFU is flattest: it avoids the worst small-cache losses but
//! caps low. The interesting cell is 2Q, which *beats* LRU at small
//! caches: its probation queue keeps threshold-admitted prefetches from
//! evicting the protected working set — eviction-layer scan resistance
//! recovering some of what Figure 10 loses to prefetch pollution.

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_cache::{baseline_block_reads, AdmissionPolicy, PolicyKind, PolicySim};
use serde::{Deserialize, Serialize};

/// The admission threshold the sweep holds fixed (Figure 12's mid value).
const THRESHOLD: u32 = 2;

/// One measured cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvictionRow {
    /// Eviction policy name.
    pub policy: String,
    /// Per-cache-size effective-bandwidth gain over the baseline.
    pub gains: Vec<(usize, f64)>,
}

/// Runs the eviction-policy sweep on table 2.
pub fn run(scale: Scale) -> Vec<EvictionRow> {
    let w = super::common::workload(scale);
    let t2 = super::common::TABLE2;
    let layout = super::common::shp_layout(&w, t2, scale);
    let freqs = super::common::frequencies(&w);
    let stream = w.eval.table_stream(t2);
    let cache_sizes = scale.table2_cache_sizes();

    PolicyKind::ALL
        .iter()
        .map(|&kind| {
            let gains = cache_sizes
                .iter()
                .map(|&cap| {
                    let baseline = baseline_block_reads(&layout, w.eval.table_queries(t2), cap);
                    let mut sim = PolicySim::new(
                        &layout,
                        cap,
                        AdmissionPolicy::Threshold { t: THRESHOLD },
                        freqs[t2].clone(),
                        kind,
                    );
                    for &v in &stream {
                        sim.lookup(v);
                    }
                    let gain = sim.metrics().effective_bandwidth_increase(baseline);
                    (cap, gain)
                })
                .collect();
            EvictionRow { policy: kind.name().to_string(), gains }
        })
        .collect()
}

/// Renders the sweep as one row per policy.
pub fn render(rows: &[EvictionRow]) -> String {
    let mut headers = vec!["policy".to_string()];
    if let Some(first) = rows.first() {
        for (cap, _) in &first.gains {
            headers.push(format!("cache {cap}"));
        }
    }
    let mut table = TextTable::new(headers.iter().map(|s| s.as_str()).collect());
    for r in rows {
        let mut cells = vec![r.policy.clone()];
        cells.extend(r.gains.iter().map(|&(_, g)| pct(g)));
        table.row(cells);
    }
    format!(
        "Extension ablation: eviction policy under SHP + threshold admission (table 2)\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gain_of(rows: &[EvictionRow], policy: &str) -> f64 {
        // Largest cache size = the regime the paper reports end-to-end.
        rows.iter()
            .find(|r| r.policy == policy)
            .unwrap_or_else(|| panic!("policy {policy} missing"))
            .gains
            .last()
            .expect("non-empty sweep")
            .1
    }

    #[test]
    fn covers_all_policies_and_sizes() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), PolicyKind::ALL.len());
        let sizes = Scale::Quick.table2_cache_sizes().len();
        for r in &rows {
            assert_eq!(r.gains.len(), sizes);
        }
    }

    #[test]
    fn recency_family_clusters() {
        // LRU, FIFO, and CLOCK differ only in how precisely they order
        // recency; under the same admission filter they must land within a
        // few points of each other at every cache size.
        let rows = run(Scale::Quick);
        let sizes = Scale::Quick.table2_cache_sizes().len();
        for i in 0..sizes {
            let at = |p: &str| rows.iter().find(|r| r.policy == p).expect("present").gains[i].1;
            let (lru, fifo, clock) = (at("lru"), at("fifo"), at("clock"));
            for (name, g) in [("fifo", fifo), ("clock", clock)] {
                assert!(
                    (lru - g).abs() < 0.05,
                    "{name} ({g:.3}) strays from LRU ({lru:.3}) at size index {i}"
                );
            }
        }
    }

    #[test]
    fn two_q_resists_prefetch_pollution() {
        // 2Q's probation queue shields the protected set from speculative
        // prefetches, so it must not lose to plain LRU end-to-end.
        let rows = run(Scale::Quick);
        let lru = gain_of(&rows, "lru");
        let two_q = gain_of(&rows, "2q");
        assert!(two_q + 0.02 >= lru, "2Q ({two_q:.3}) should match or beat LRU ({lru:.3}) here");
    }

    #[test]
    fn clock_approximates_lru() {
        let rows = run(Scale::Quick);
        let lru = gain_of(&rows, "lru");
        let clock = gain_of(&rows, "clock");
        assert!((lru - clock).abs() < 0.15, "CLOCK ({clock:.3}) should track LRU ({lru:.3})");
    }

    #[test]
    fn render_lists_every_policy() {
        let rows = run(Scale::Quick);
        let s = render(&rows);
        for kind in PolicyKind::ALL {
            assert!(s.contains(kind.name()), "missing {kind}");
        }
    }
}
