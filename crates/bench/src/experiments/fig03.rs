//! Figure 3: hit-rate curves of the top-lookup tables.
//!
//! Stack distances over each table's lookup stream give the LRU hit rate at
//! every cache size in one pass. The paper plots tables 1, 2, 6, 7 (the
//! four with the most lookups).
//!
//! **Paper shape:** tables 1 and 2 climb steeply (high reuse); table 7
//! climbs more gradually; all plateau below 100% at the compulsory-miss
//! ceiling.

use crate::output::TextTable;
use crate::scale::Scale;
use bandana_trace::StackDistances;
use serde::{Deserialize, Serialize};

/// Paper tables plotted in Figure 3 (0-based indices).
pub const TABLES: [usize; 4] = [0, 1, 5, 6];

/// The hit-rate curve of one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// 1-based table number.
    pub table: usize,
    /// `(cache size in vectors, hit rate)` samples.
    pub points: Vec<(usize, f64)>,
}

/// Computes hit-rate curves for the Figure 3 tables.
pub fn run(scale: Scale) -> Vec<Curve> {
    let w = super::common::workload(scale);
    TABLES
        .iter()
        .map(|&t| {
            let stream = w.eval.table_stream(t);
            let n = w.spec.tables[t].num_vectors as usize;
            let sizes: Vec<usize> =
                [100, 50, 20, 10, 5, 2, 1].iter().map(|d| (n / d).max(1)).collect();
            let mut sd = StackDistances::with_capacity(stream.len().max(1));
            sd.access_all(stream.iter().map(|&v| v as u64));
            Curve { table: t + 1, points: sd.hit_rate_curve(&sizes) }
        })
        .collect()
}

/// Renders the figure artifact.
pub fn render(curves: &[Curve]) -> String {
    let mut out = String::from("Figure 3: hit-rate curves of the top-lookup tables\n");
    for c in curves {
        let mut t = TextTable::new(vec!["cache size (vectors)", "hit rate"]);
        for &(size, hr) in &c.points {
            t.row(vec![size.to_string(), format!("{:.3}", hr)]);
        }
        out.push_str(&format!("\n(table {})\n{}", c.table, t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let curves = run(Scale::Quick);
        assert_eq!(curves.len(), 4);
        for c in &curves {
            // Monotone non-decreasing in cache size.
            for w in c.points.windows(2) {
                assert!(w[1].1 + 1e-12 >= w[0].1, "table {} curve not monotone", c.table);
            }
        }
        // Table 2 (most reuse) ends higher than table 7-analogue at full size.
        let top = |c: &Curve| c.points.last().unwrap().1;
        let t2 = curves.iter().find(|c| c.table == 2).unwrap();
        let t6 = curves.iter().find(|c| c.table == 6).unwrap();
        assert!(
            top(t2) > top(t6),
            "table 2 plateau {} should exceed table 6 plateau {}",
            top(t2),
            top(t6)
        );
    }

    #[test]
    fn render_mentions_each_table() {
        let s = render(&run(Scale::Quick));
        for t in [1, 2, 6, 7] {
            assert!(s.contains(&format!("(table {t})")));
        }
    }
}
