//! Figure 8: effective-bandwidth increase vs recursive K-means sub-cluster
//! count (unlimited cache).
//!
//! The two-stage approximation should match flat K-means' bandwidth while
//! scaling to far more clusters (its runtime is Figure 7b).
//!
//! **Paper shape:** same per-table ordering as Figure 6; gains flatten
//! beyond a few thousand sub-clusters.

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_partition::{fanout_report, two_stage_kmeans, BlockLayout, TwoStageConfig};
use bandana_trace::EmbeddingTable;
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// 1-based table number.
    pub table: usize,
    /// Total sub-clusters.
    pub subclusters: usize,
    /// Unlimited-cache effective-bandwidth increase.
    pub gain: f64,
    /// Average query fanout (blocks per query; lower is better).
    pub fanout: f64,
}

/// Sub-cluster counts per scale.
pub fn subcluster_counts(scale: Scale) -> Vec<usize> {
    super::fig07::two_stage_totals(scale)
}

/// Runs the sweep over all 8 tables.
pub fn run(scale: Scale) -> Vec<Row> {
    let w = super::common::workload(scale);
    // Partial-coverage evaluation window (see Scale::unlimited_eval_requests).
    let (eval, _) = w.eval.split_at(scale.unlimited_eval_requests().min(w.eval.requests.len()));
    let first_stage_k = match scale {
        Scale::Quick => 8,
        Scale::Full => 32,
    };
    let mut rows = Vec::new();
    for t in 0..w.spec.num_tables() {
        let emb = EmbeddingTable::synthesize(
            w.spec.tables[t].num_vectors,
            w.spec.dim,
            w.generator.topic_model(t),
            super::common::SEED.wrapping_add(t as u64),
        );
        for &total in &subcluster_counts(scale) {
            let order = two_stage_kmeans(
                emb.data(),
                w.spec.dim,
                &TwoStageConfig {
                    first_stage_k,
                    total_subclusters: total,
                    iterations: 10,
                    seed: super::common::SEED,
                },
            );
            let layout = BlockLayout::from_order(order, super::common::VECTORS_PER_BLOCK);
            let report = fanout_report(&layout, eval.table_queries(t));
            rows.push(Row {
                table: t + 1,
                subclusters: total,
                gain: report.unlimited_cache_gain(),
                fanout: report.average_fanout,
            });
        }
    }
    rows
}

/// Renders the figure artifact.
pub fn render(rows: &[Row]) -> String {
    let mut counts: Vec<usize> = rows.iter().map(|r| r.subclusters).collect();
    counts.sort_unstable();
    counts.dedup();
    let mut header = vec!["table".to_string()];
    header.extend(counts.iter().map(|k| format!("{k} subs")));
    let mut t = TextTable::new(header);
    for table in 1..=8usize {
        let mut cells = vec![table.to_string()];
        for &k in &counts {
            cells.push(
                rows.iter()
                    .find(|r| r.table == table && r.subclusters == k)
                    .map(|r| pct(r.gain))
                    .unwrap_or_default(),
            );
        }
        t.row(cells);
    }
    format!(
        "Figure 8: effective-bandwidth increase vs recursive K-means sub-clusters (unlimited cache)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        let gain = |table: usize, k: usize| {
            rows.iter().find(|r| r.table == table && r.subclusters == k).unwrap().gain
        };
        let ks = subcluster_counts(Scale::Quick);
        let k_max = *ks.last().unwrap();
        // Table 2 gains substantially; table 8 trails it (as in Figure 6).
        assert!(gain(2, k_max) > 0.1, "table 2 gain {}", gain(2, k_max));
        assert!(gain(8, k_max) <= gain(2, k_max) + 1e-9);
        // No sweep point is meaningfully negative.
        assert!(rows.iter().all(|r| r.gain > -1e-9));
    }

    #[test]
    fn comparable_to_flat_kmeans() {
        // Figure 8's point: recursion does not lose locality vs Figure 6.
        // Compare best fanouts (lower is better).
        let recursive = run(Scale::Quick);
        let flat = super::super::fig06::run(Scale::Quick);
        let best = |xs: Vec<f64>| xs.into_iter().fold(f64::MAX, f64::min);
        let r2 = best(recursive.iter().filter(|r| r.table == 2).map(|r| r.fanout).collect());
        let f2 = best(flat.iter().filter(|r| r.table == 2).map(|r| r.fanout).collect());
        assert!(
            r2 < 1.5 * f2,
            "recursive best fanout {r2} should be in the same league as flat best {f2}"
        );
    }
}
