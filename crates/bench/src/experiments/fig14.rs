//! Figure 14: tuned gain vs miniature-cache sampling rate, per table.
//!
//! Thresholds are chosen by miniature caches at several sampling rates and
//! by the full-cache oracle; each choice is evaluated at full cache size.
//!
//! **Paper shape:** the bars are nearly identical across sampling rates —
//! even 0.1% sampling matches the oracle almost everywhere.

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_cache::{
    allocate_dram, AdmissionPolicy, HitRateCurve, MiniatureCacheSet, PrefetchCacheSim,
};
use bandana_trace::StackDistances;
use serde::{Deserialize, Serialize};

/// One bar: a table tuned at a sampling rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// 1-based table number.
    pub table: usize,
    /// Sampling rate; `1.0` marks the full-cache oracle.
    pub rate: f64,
    /// Full-size gain of the chosen threshold.
    pub gain: f64,
}

/// Runs the sampling-rate study across all tables.
pub fn run(scale: Scale) -> Vec<Row> {
    let w = super::common::workload(scale);
    let layouts = super::common::shp_layouts(&w, scale);
    let freqs = super::common::frequencies(&w);
    let weights = super::common::lookup_weights(&w);
    let candidates = super::fig12::thresholds(scale);
    let total = scale.default_total_cache();

    let sizes: Vec<usize> = [64usize, 16, 8, 4, 2, 1].iter().map(|d| (total / d).max(1)).collect();
    let curves: Vec<HitRateCurve> = (0..w.spec.num_tables())
        .map(|t| {
            let stream = w.train.table_stream(t);
            let mut sd = StackDistances::with_capacity(stream.len().max(1));
            sd.access_all(stream.iter().map(|&v| v as u64));
            HitRateCurve::new(sd.hit_rate_curve(&sizes))
        })
        .collect();
    let capacities: Vec<usize> = allocate_dram(total, &curves, &weights, (total / 64).max(1))
        .into_iter()
        .map(|c| c.max(1))
        .collect();

    let mut rows = Vec::new();
    for t in 0..w.spec.num_tables() {
        let stream = w.eval.table_stream(t);
        let full_gain = |threshold: u32| {
            let reads = |policy: AdmissionPolicy| {
                let mut sim =
                    PrefetchCacheSim::new(&layouts[t], capacities[t], policy, freqs[t].clone());
                for &v in &stream {
                    sim.lookup(v);
                }
                sim.metrics().block_reads
            };
            reads(AdmissionPolicy::None) as f64
                / reads(AdmissionPolicy::Threshold { t: threshold }) as f64
                - 1.0
        };

        // Oracle column.
        let oracle = candidates.iter().map(|&c| full_gain(c)).fold(f64::MIN, f64::max);
        rows.push(Row { table: t + 1, rate: 1.0, gain: oracle });

        for &rate in &scale.sampling_rates() {
            let mut minis = MiniatureCacheSet::new(
                &layouts[t],
                &freqs[t],
                capacities[t],
                rate,
                &candidates,
                super::common::SEED,
            );
            for &v in &stream {
                minis.observe(v);
            }
            rows.push(Row { table: t + 1, rate, gain: full_gain(minis.best_threshold()) });
        }
    }
    rows
}

/// Renders the figure artifact.
pub fn render(rows: &[Row]) -> String {
    let mut rates: Vec<f64> = rows.iter().map(|r| r.rate).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rates.dedup();
    let mut header = vec!["table".to_string()];
    for &r in &rates {
        header.push(if r >= 1.0 {
            "full cache".to_string()
        } else {
            format!("{:.0}% sampling", r * 100.0)
        });
    }
    let mut t = TextTable::new(header);
    for table in 1..=8usize {
        let mut cells = vec![table.to_string()];
        for &rate in &rates {
            cells.push(
                rows.iter()
                    .find(|r| r.table == table && r.rate == rate)
                    .map(|r| pct(r.gain))
                    .unwrap_or_default(),
            );
        }
        t.row(cells);
    }
    format!(
        "Figure 14: tuned gain vs miniature-cache sampling rate (full cache = oracle)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        // Sampled tuning tracks the oracle: for every table, the worst
        // sampled gain is within 0.25 absolute of the oracle gain.
        for table in 1..=8usize {
            let oracle = rows.iter().find(|r| r.table == table && r.rate >= 1.0).unwrap().gain;
            for r in rows.iter().filter(|r| r.table == table && r.rate < 1.0) {
                assert!(
                    oracle - r.gain < 0.25,
                    "table {table} rate {}: gain {} far below oracle {oracle}",
                    r.rate,
                    r.gain
                );
            }
        }
        // Table 2 shows a solidly positive oracle gain.
        let t2 = rows.iter().find(|r| r.table == 2 && r.rate >= 1.0).unwrap();
        assert!(t2.gain > 0.1, "table 2 oracle gain {}", t2.gain);
    }

    #[test]
    fn render_lists_rates() {
        let s = render(&run(Scale::Quick));
        assert!(s.contains("full cache"));
        assert!(s.contains("sampling"));
    }
}
