//! Figure 5: latency vs application throughput — the baseline policy
//! against 100% effective bandwidth.
//!
//! The baseline policy reads a whole 4 KB block for every 128 B vector, so
//! only ~3% of device bandwidth is useful: its latency spikes at ~1/32 of
//! the application throughput the 4 KB-read workload sustains.
//!
//! **Paper shape:** both curves are flat until their saturation knee; the
//! baseline's knee sits ~32× earlier on the application-throughput axis.

use crate::output::{f2, TextTable};
use crate::scale::Scale;
use nvm_sim::{OpenLoopSim, QueueModel};
use serde::{Deserialize, Serialize};

/// Bytes of application payload per block read under the baseline policy.
const VECTOR_BYTES: f64 = 128.0;
const BLOCK_BYTES: f64 = 4096.0;

/// One offered-load point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Offered application throughput in MB/s.
    pub app_mbps: f64,
    /// Baseline-policy mean latency (µs); `None` when the point is beyond
    /// the baseline's saturation (the paper's curve simply ends there).
    pub baseline_mean_us: Option<f64>,
    /// Baseline-policy P99 latency (µs).
    pub baseline_p99_us: Option<f64>,
    /// 100%-effective-bandwidth mean latency (µs).
    pub full_mean_us: Option<f64>,
    /// 100%-effective-bandwidth P99 latency (µs).
    pub full_p99_us: Option<f64>,
}

/// Runs the open-loop throughput sweep.
pub fn run(scale: Scale) -> Vec<Row> {
    let model = QueueModel::optane();
    let requests = scale.device_requests();
    let max_dev = model.max_bandwidth_bps;
    let app_points_mbps: &[f64] =
        &[10.0, 25.0, 40.0, 55.0, 70.0, 100.0, 250.0, 500.0, 1000.0, 1500.0, 2000.0, 2250.0];

    app_points_mbps
        .iter()
        .map(|&app| {
            let app_bps = app * 1e6;
            // Baseline: every 128 B of application data costs a 4 KB read.
            let baseline_dev_bps = app_bps * (BLOCK_BYTES / VECTOR_BYTES);
            // 100% effective: application bytes = device bytes.
            let full_dev_bps = app_bps;
            let run_at = |dev_bps: f64| {
                // Past saturation the open queue diverges with trace length;
                // the paper's plots stop there, so we do too.
                if dev_bps > 1.05 * max_dev {
                    return (None, None);
                }
                let r = OpenLoopSim::new(model, 5).run(dev_bps, requests);
                (Some(r.mean_latency_s * 1e6), Some(r.p99_latency_s * 1e6))
            };
            let (baseline_mean_us, baseline_p99_us) = run_at(baseline_dev_bps);
            let (full_mean_us, full_p99_us) = run_at(full_dev_bps);
            Row { app_mbps: app, baseline_mean_us, baseline_p99_us, full_mean_us, full_p99_us }
        })
        .collect()
}

/// Renders the figure artifact.
pub fn render(rows: &[Row]) -> String {
    let opt = |x: Option<f64>| x.map_or("saturated".to_string(), f2);
    let mut t = TextTable::new(vec![
        "app throughput (MB/s)",
        "baseline mean (us)",
        "baseline p99 (us)",
        "100% eff mean (us)",
        "100% eff p99 (us)",
    ]);
    for r in rows {
        t.row(vec![
            f2(r.app_mbps),
            opt(r.baseline_mean_us),
            opt(r.baseline_p99_us),
            opt(r.full_mean_us),
            opt(r.full_p99_us),
        ]);
    }
    format!(
        "Figure 5: latency vs application throughput (baseline = 128 B served per 4 KB read)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        // The baseline saturates ~32x earlier: it must be saturated by
        // 100 MB/s app throughput while the 4 KB-read curve still serves
        // 2000 MB/s.
        let at = |mbps: f64| rows.iter().find(|r| r.app_mbps == mbps).unwrap();
        assert!(at(100.0).baseline_mean_us.is_none(), "baseline should be saturated at 100 MB/s");
        assert!(at(2000.0).full_mean_us.is_some(), "full-BW curve should survive 2000 MB/s");
        // Below its knee the baseline latency is finite and modest.
        let low = at(10.0);
        assert!(low.baseline_mean_us.unwrap() < 50.0);
        // Baseline latency grows with load while unsaturated.
        let b25 = at(25.0).baseline_mean_us.unwrap();
        let b55 = at(55.0).baseline_mean_us.unwrap();
        assert!(b55 >= b25);
        // P99 >= mean wherever both exist.
        for r in &rows {
            if let (Some(m), Some(p)) = (r.full_mean_us, r.full_p99_us) {
                assert!(p >= m);
            }
        }
    }

    #[test]
    fn render_marks_saturation() {
        let s = render(&run(Scale::Quick));
        assert!(s.contains("saturated"));
    }
}
