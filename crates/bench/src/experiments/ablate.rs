//! Ablations of Bandana's design choices (not figures from the paper, but
//! the knobs its design section argues about).
//!
//! * [`shp_iterations`] — placement quality vs SHP refinement iterations:
//!   how much of the win comes from the initial balanced split vs the
//!   gain-driven refinement (the paper fixes 16 iterations).
//! * [`allocation_policies`] — dividing the DRAM budget by hit-rate curves
//!   (the paper's Dynacache-style choice, §4.3.3) vs proportional-to-lookups
//!   vs uniform.

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_cache::{
    allocate_dram, allocate_with, AdmissionPolicy, AllocationPolicy, HitRateCurve,
};
use bandana_core::effective_bandwidth_sweep;
use bandana_partition::{average_fanout, social_hash_partition, BlockLayout, ShpConfig};
use bandana_trace::StackDistances;
use serde::{Deserialize, Serialize};

/// One row of the SHP-iterations ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShpIterRow {
    /// Refinement iterations per bisection.
    pub iterations: u32,
    /// Average query fanout of the resulting table-2 layout (lower is
    /// better).
    pub average_fanout: f64,
}

/// Sweeps SHP refinement iterations on table 2.
pub fn shp_iterations(scale: Scale) -> Vec<ShpIterRow> {
    let w = super::common::workload(scale);
    let t2 = super::common::TABLE2;
    [0u32, 2, 4, 8, 16]
        .iter()
        .map(|&iterations| {
            let cfg = ShpConfig {
                block_capacity: super::common::VECTORS_PER_BLOCK,
                iterations,
                seed: super::common::SEED,
                parallel_depth: 2,
            };
            let order = social_hash_partition(
                w.spec.tables[t2].num_vectors,
                w.train.table_queries(t2),
                &cfg,
            );
            let layout = BlockLayout::from_order(order, super::common::VECTORS_PER_BLOCK);
            ShpIterRow {
                iterations,
                average_fanout: average_fanout(&layout, w.eval.table_queries(t2)),
            }
        })
        .collect()
}

/// One row of the allocation-policy ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocRow {
    /// Policy name.
    pub policy: String,
    /// Per-table cache capacities.
    pub capacities: Vec<usize>,
    /// Read-weighted overall effective-bandwidth gain.
    pub overall_gain: f64,
}

/// Compares DRAM division policies end-to-end at the default total cache.
pub fn allocation_policies(scale: Scale) -> Vec<AllocRow> {
    let w = super::common::workload(scale);
    let layouts = super::common::shp_layouts(&w, scale);
    let freqs = super::common::frequencies(&w);
    let weights = super::common::lookup_weights(&w);
    let total = scale.default_total_cache();
    let tables = w.spec.num_tables();

    // Hit-rate-curve (Dynacache-style) division.
    let sizes: Vec<usize> = [64usize, 16, 8, 4, 2, 1].iter().map(|d| (total / d).max(1)).collect();
    let curves: Vec<HitRateCurve> = (0..tables)
        .map(|t| {
            let stream = w.train.table_stream(t);
            let mut sd = StackDistances::with_capacity(stream.len().max(1));
            sd.access_all(stream.iter().map(|&v| v as u64));
            HitRateCurve::new(sd.hit_rate_curve(&sizes))
        })
        .collect();
    let hrc: Vec<usize> = allocate_dram(total, &curves, &weights, (total / 64).max(1))
        .into_iter()
        .map(|c| c.max(1))
        .collect();
    let proportional: Vec<usize> =
        weights.iter().map(|&sh| ((total as f64 * sh) as usize).max(1)).collect();
    let uniform: Vec<usize> = vec![(total / tables).max(1); tables];
    let hill_climb: Vec<usize> =
        allocate_with(AllocationPolicy::HillClimb, total, &curves, &weights, (total / 64).max(1))
            .into_iter()
            .map(|c| c.max(1))
            .collect();

    [
        ("hit-rate curves", hrc),
        ("proportional to lookups", proportional),
        ("uniform", uniform),
        ("hill climb (Cliffhanger)", hill_climb),
    ]
    .into_iter()
    .map(|(name, capacities)| {
        let policies = vec![AdmissionPolicy::Threshold { t: 2 }; tables];
        let gains =
            effective_bandwidth_sweep(&w.eval, &layouts, &freqs, &capacities, &policies, 1.5);
        let policy_reads: u64 = gains.iter().map(|g| g.policy_block_reads).sum();
        let baseline_reads: u64 = gains.iter().map(|g| g.baseline_block_reads).sum();
        AllocRow {
            policy: name.to_string(),
            capacities,
            overall_gain: baseline_reads as f64 / policy_reads.max(1) as f64 - 1.0,
        }
    })
    .collect()
}

/// Renders both ablations.
pub fn render(iters: &[ShpIterRow], allocs: &[AllocRow]) -> String {
    let mut a = TextTable::new(vec!["SHP iterations", "avg fanout (table 2)"]);
    for r in iters {
        a.row(vec![r.iterations.to_string(), format!("{:.2}", r.average_fanout)]);
    }
    let mut b = TextTable::new(vec!["allocation policy", "overall gain", "capacities"]);
    for r in allocs {
        b.row(vec![r.policy.clone(), pct(r.overall_gain), format!("{:?}", r.capacities)]);
    }
    format!(
        "Ablation A: SHP refinement iterations (placement quality)\n{}\n\
         Ablation B: DRAM division across tables (end-to-end gain)\n{}",
        a.render(),
        b.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_improves_fanout() {
        let rows = shp_iterations(Scale::Quick);
        let at = |i: u32| rows.iter().find(|r| r.iterations == i).unwrap().average_fanout;
        // 16 refinement iterations must clearly beat the unrefined split.
        assert!(
            at(16) < at(0) * 0.95,
            "refinement should reduce fanout: 0 iters {} vs 16 iters {}",
            at(0),
            at(16)
        );
        // Fanout is weakly improving across the sweep's endpoints.
        assert!(at(16) <= at(2) + 1e-9);
    }

    #[test]
    fn hrc_allocation_not_worse_than_uniform() {
        let rows = allocation_policies(Scale::Quick);
        assert_eq!(rows.len(), 4);
        let gain = |name: &str| rows.iter().find(|r| r.policy == name).unwrap().overall_gain;
        assert!(
            gain("hit-rate curves") + 0.02 >= gain("uniform"),
            "HRC allocation {} should not lose to uniform {}",
            gain("hit-rate curves"),
            gain("uniform")
        );
        // Budgets are respected.
        for r in &rows {
            let sum: usize = r.capacities.iter().sum();
            assert!(sum <= Scale::Quick.default_total_cache() + r.capacities.len());
        }
    }

    #[test]
    fn render_has_both_sections() {
        let s = render(&shp_iterations(Scale::Quick), &allocation_policies(Scale::Quick));
        assert!(s.contains("Ablation A"));
        assert!(s.contains("Ablation B"));
    }
}
