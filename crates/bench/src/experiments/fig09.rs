//! Figure 9: effective-bandwidth increase vs SHP training-set size
//! (unlimited cache).
//!
//! SHP is trained on 0.2×, 1× and 5× the base training trace (the paper's
//! 200 M / 1 B / 5 B requests) and evaluated on a disjoint trace.
//!
//! **Paper shape:** more training data → better placement → higher gains,
//! for every table; SHP beats K-means (Figure 6) across the board.

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_partition::{fanout_report, social_hash_partition, BlockLayout, ShpConfig};
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// 1-based table number.
    pub table: usize,
    /// Training-set size in requests.
    pub train_requests: usize,
    /// Unlimited-cache effective-bandwidth increase.
    pub gain: f64,
    /// Average query fanout (blocks per query; lower is better).
    pub fanout: f64,
}

/// Training sizes: 0.2×, 1×, 5× the base (the paper's 200M/1B/5B).
pub fn training_sizes(scale: Scale) -> Vec<usize> {
    let base = scale.train_requests();
    vec![base / 5, base, base * 5]
}

/// Runs the training-size sweep over all tables.
pub fn run(scale: Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for &train_requests in &training_sizes(scale) {
        let w = super::common::workload_with_train(scale, train_requests);
        // Partial-coverage evaluation window (see
        // Scale::unlimited_eval_requests).
        let (eval, _) = w.eval.split_at(scale.unlimited_eval_requests().min(w.eval.requests.len()));
        for t in 0..w.spec.num_tables() {
            let cfg = ShpConfig {
                block_capacity: super::common::VECTORS_PER_BLOCK,
                iterations: scale.shp_iterations(),
                seed: super::common::SEED.wrapping_add(t as u64),
                parallel_depth: 3,
            };
            let order =
                social_hash_partition(w.spec.tables[t].num_vectors, w.train.table_queries(t), &cfg);
            let layout = BlockLayout::from_order(order, super::common::VECTORS_PER_BLOCK);
            let report = fanout_report(&layout, eval.table_queries(t));
            rows.push(Row {
                table: t + 1,
                train_requests,
                gain: report.unlimited_cache_gain(),
                fanout: report.average_fanout,
            });
        }
    }
    rows
}

/// Renders the figure artifact.
pub fn render(rows: &[Row]) -> String {
    let mut sizes: Vec<usize> = rows.iter().map(|r| r.train_requests).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut header = vec!["table".to_string()];
    header.extend(sizes.iter().map(|s| format!("{s} reqs")));
    let mut t = TextTable::new(header);
    for table in 1..=8usize {
        let mut cells = vec![table.to_string()];
        for &s in &sizes {
            cells.push(
                rows.iter()
                    .find(|r| r.table == table && r.train_requests == s)
                    .map(|r| pct(r.gain))
                    .unwrap_or_default(),
            );
        }
        t.row(cells);
    }
    format!(
        "Figure 9: effective-bandwidth increase vs SHP training size (unlimited cache)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        let sizes = training_sizes(Scale::Quick);
        let gain = |table: usize, s: usize| {
            rows.iter().find(|r| r.table == table && r.train_requests == s).unwrap().gain
        };
        let fanout = |table: usize, s: usize| {
            rows.iter().find(|r| r.table == table && r.train_requests == s).unwrap().fanout
        };
        // More training data improves table 2's locality (fanout is the
        // saturation-proof metric at Quick scale; gains separate at Full).
        assert!(
            fanout(2, sizes[2]) < fanout(2, sizes[0]),
            "5x fanout {} should beat 0.2x fanout {}",
            fanout(2, sizes[2]),
            fanout(2, sizes[0])
        );
        for t in 1..=8 {
            assert!(gain(t, sizes[2]) > -0.05, "table {t} gain {}", gain(t, sizes[2]));
        }
    }

    #[test]
    fn shp_beats_kmeans_on_hot_tables() {
        // The paper's key comparison: SHP (this figure) exceeds K-means
        // (Figure 6); we check the hottest table by best fanout (lower
        // wins; the gain saturates at Quick scale).
        let shp = run(Scale::Quick);
        let kmeans = super::super::fig06::run(Scale::Quick);
        let best = |xs: Vec<f64>| xs.into_iter().fold(f64::MAX, f64::min);
        let shp2 = best(shp.iter().filter(|r| r.table == 2).map(|r| r.fanout).collect());
        let km2 = best(kmeans.iter().filter(|r| r.table == 2).map(|r| r.fanout).collect());
        assert!(shp2 < km2, "SHP table-2 fanout {shp2} should beat K-means {km2}");
    }
}
