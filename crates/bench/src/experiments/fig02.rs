//! Figure 2: NVM device latency and bandwidth vs queue depth.
//!
//! The paper runs Fio (4 KB random reads, libaio) at queue depths 1–8 on a
//! 375 GB device and reports mean latency, P99 latency, and bandwidth. We
//! run the calibrated closed-loop simulator at the same depths.
//!
//! **Paper shape:** latency grows with queue depth (≈10 µs mean at QD1 to
//! ≈14 µs mean / 75 µs P99 at QD8) while bandwidth grows from ≈0.4 GB/s to
//! a ≈2.3 GB/s ceiling.

use crate::output::{f2, TextTable};
use crate::scale::Scale;
use nvm_sim::{FioJob, QueueModel};
use serde::{Deserialize, Serialize};

/// One measured queue-depth point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Queue depth.
    pub queue_depth: u32,
    /// Mean latency in microseconds.
    pub mean_latency_us: f64,
    /// P99 latency in microseconds.
    pub p99_latency_us: f64,
    /// Bandwidth in GB/s.
    pub bandwidth_gbps: f64,
}

/// Runs the queue-depth sweep.
pub fn run(scale: Scale) -> Vec<Row> {
    [1u32, 2, 4, 8]
        .iter()
        .map(|&qd| {
            let report = FioJob::new(QueueModel::optane())
                .queue_depth(qd)
                .requests(scale.device_requests())
                .seed(42)
                .run();
            Row {
                queue_depth: qd,
                mean_latency_us: report.mean_latency_us(),
                p99_latency_us: report.p99_latency_us(),
                bandwidth_gbps: report.bandwidth_gbps(),
            }
        })
        .collect()
}

/// Renders the figure artifact.
pub fn render(rows: &[Row]) -> String {
    let mut t = TextTable::new(vec![
        "queue depth",
        "mean latency (us)",
        "p99 latency (us)",
        "bandwidth (GB/s)",
    ]);
    for r in rows {
        t.row(vec![
            r.queue_depth.to_string(),
            f2(r.mean_latency_us),
            f2(r.p99_latency_us),
            f2(r.bandwidth_gbps),
        ]);
    }
    format!("Figure 2: NVM 4 KB random-read latency/bandwidth vs queue depth\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 4);
        // Latency and bandwidth both grow with queue depth.
        for w in rows.windows(2) {
            assert!(w[1].mean_latency_us + 0.5 >= w[0].mean_latency_us);
            assert!(w[1].bandwidth_gbps >= w[0].bandwidth_gbps);
        }
        // Endpoints match the paper's measurements: ~0.4 GB/s at QD1,
        // saturation near 2.3 GB/s at QD8. (The simulator reproduces mean
        // latency and bandwidth; the P99 gap is smaller than the real
        // device's because device-internal queueing is not modelled beyond
        // the pipeline, so only its ordering is asserted.)
        assert!((rows[0].bandwidth_gbps - 0.4).abs() < 0.1, "{rows:?}");
        assert!((rows[3].bandwidth_gbps - 2.3).abs() < 0.2, "{rows:?}");
        for r in &rows {
            assert!(r.p99_latency_us > r.mean_latency_us, "{rows:?}");
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = run(Scale::Quick);
        let s = render(&rows);
        assert!(s.contains("Figure 2"));
        for r in &rows {
            assert!(s.contains(&r.queue_depth.to_string()));
        }
    }
}
