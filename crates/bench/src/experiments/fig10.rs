//! Figure 10: caching *all* prefetched vectors hurts with a limited cache.
//!
//! All 32 vectors of each fetched block are inserted at the top of the LRU,
//! for both the SHP-partitioned table and the original (identity) order,
//! across cache sizes; compared against the no-prefetch baseline.
//!
//! **Paper shape:** strongly negative effective-bandwidth "increase" for
//! the original order (up to −90%); the partitioned table is better but
//! still near or below zero at small cache sizes.

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_cache::{AdmissionPolicy, PrefetchCacheSim};
use bandana_partition::{AccessFrequency, BlockLayout};
use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Cache size in vectors.
    pub cache_size: usize,
    /// Gain with the SHP-partitioned layout.
    pub partitioned_gain: f64,
    /// Gain with the original (identity) layout.
    pub original_gain: f64,
}

/// Runs the cache-all-prefetches sweep on table 2.
pub fn run(scale: Scale) -> Vec<Row> {
    let w = super::common::workload(scale);
    let t2 = super::common::TABLE2;
    let shp = super::common::shp_layout(&w, t2, scale);
    let identity =
        BlockLayout::identity(w.spec.tables[t2].num_vectors, super::common::VECTORS_PER_BLOCK);
    let freq =
        AccessFrequency::from_queries(w.spec.tables[t2].num_vectors, w.train.table_queries(t2));
    let stream = w.eval.table_stream(t2);

    scale
        .table2_cache_sizes()
        .into_iter()
        .map(|cache| {
            let run_policy = |layout: &BlockLayout, policy: AdmissionPolicy| {
                let mut sim = PrefetchCacheSim::new(layout, cache, policy, freq.clone());
                for &v in &stream {
                    sim.lookup(v);
                }
                sim.metrics().block_reads
            };
            // The baseline's reads are layout-independent (one block per
            // single-vector miss), so compute it once on the SHP layout.
            let baseline = run_policy(&shp, AdmissionPolicy::None);
            let part = run_policy(&shp, AdmissionPolicy::All { position: 0.0 });
            let orig = run_policy(&identity, AdmissionPolicy::All { position: 0.0 });
            Row {
                cache_size: cache,
                partitioned_gain: baseline as f64 / part as f64 - 1.0,
                original_gain: baseline as f64 / orig as f64 - 1.0,
            }
        })
        .collect()
}

/// Renders the figure artifact.
pub fn render(rows: &[Row]) -> String {
    let mut t =
        TextTable::new(vec!["cache size (vectors)", "partitioned tables", "original tables"]);
    for r in rows {
        t.row(vec![r.cache_size.to_string(), pct(r.partitioned_gain), pct(r.original_gain)]);
    }
    format!(
        "Figure 10: cache-all-prefetches policy vs no-prefetch baseline (table 2)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let rows = run(Scale::Quick);
        assert!(!rows.is_empty());
        for r in &rows {
            // Blind prefetching of unordered tables is a disaster.
            assert!(
                r.original_gain < 0.0,
                "original order should lose at cache {}: {r:?}",
                r.cache_size
            );
            // Partitioned tables do better than the original order.
            assert!(
                r.partitioned_gain > r.original_gain,
                "partitioned should beat original: {r:?}"
            );
        }
    }

    #[test]
    fn render_lists_all_sizes() {
        let rows = run(Scale::Quick);
        let s = render(&rows);
        for r in &rows {
            assert!(s.contains(&r.cache_size.to_string()));
        }
    }
}
