//! Extension: how fast does a trained configuration decay under drift?
//!
//! The paper trains placement (SHP) and admission thresholds on a past
//! window; §2.1 notes models retrain every few hours because behaviour
//! shifts. This experiment drifts the table 2 hot set by a fixed fraction
//! per epoch ([`bandana_trace::DriftingTraceGenerator`]) and replays the
//! epoch-0-trained pipeline over successive epochs, against a per-epoch
//! *retrained* oracle.
//!
//! Expected shape: the static configuration's effective-bandwidth gain
//! decays monotonically-ish toward zero as the hot set rotates away from
//! the trained layout, while the retrained oracle holds roughly level —
//! the gap is the value of periodic retraining (and of the online tuner).

use crate::output::{pct, TextTable};
use crate::scale::Scale;
use bandana_cache::{baseline_block_reads, AdmissionPolicy, PrefetchCacheSim};
use bandana_partition::{social_hash_partition, AccessFrequency, BlockLayout, ShpConfig};
use bandana_trace::{DriftConfig, DriftingTraceGenerator, ModelSpec, Trace};
use serde::{Deserialize, Serialize};

/// Hot-set rotation per epoch. Deliberately not a divisor of 1.0: with a
/// fraction like 0.25 the cycle wraps after four epochs and the "drifted"
/// last epoch would land exactly back on the trained mapping.
const ROTATE_FRACTION: f64 = 0.3;
/// Epochs replayed.
const EPOCHS: usize = 5;
/// Fixed admission threshold for both arms.
const THRESHOLD: u32 = 2;

/// Gains for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftRow {
    /// Epoch index (0 = the training epoch).
    pub epoch: usize,
    /// Gain of the epoch-0-trained configuration.
    pub static_gain: f64,
    /// Gain when layout + frequencies are retrained on this epoch.
    pub retrained_gain: f64,
}

fn epoch_requests(scale: Scale) -> usize {
    (scale.eval_requests() / 2).max(400)
}

fn gain_on(
    layout: &BlockLayout,
    freq: &AccessFrequency,
    trace: &Trace,
    table: usize,
    cache: usize,
) -> f64 {
    let baseline = baseline_block_reads(layout, trace.table_queries(table), cache);
    let mut sim = PrefetchCacheSim::new(
        layout,
        cache,
        AdmissionPolicy::Threshold { t: THRESHOLD },
        freq.clone(),
    );
    for q in trace.table_queries(table) {
        sim.lookup_all(q);
    }
    sim.metrics().effective_bandwidth_increase(baseline)
}

/// Runs the drift decay experiment on table 2.
pub fn run(scale: Scale) -> Vec<DriftRow> {
    let spec = ModelSpec::paper_scaled(scale.spec_scale());
    let t2 = super::common::TABLE2;
    let per_epoch = epoch_requests(scale);
    let mut generator = DriftingTraceGenerator::new(
        &spec,
        super::common::SEED,
        DriftConfig { requests_per_epoch: per_epoch, rotate_fraction: ROTATE_FRACTION },
    );
    let epochs: Vec<Trace> = (0..EPOCHS).map(|_| generator.generate_requests(per_epoch)).collect();
    let cache = 2 * scale.table2_cache_sizes().last().expect("non-empty sizes");

    let shp = |trace: &Trace| {
        let cfg = ShpConfig {
            block_capacity: super::common::VECTORS_PER_BLOCK,
            iterations: scale.shp_iterations(),
            seed: super::common::SEED,
            parallel_depth: 2,
        };
        let order =
            social_hash_partition(spec.tables[t2].num_vectors, trace.table_queries(t2), &cfg);
        BlockLayout::from_order(order, super::common::VECTORS_PER_BLOCK)
    };
    let freq_of = |trace: &Trace| {
        AccessFrequency::from_queries(spec.tables[t2].num_vectors, trace.table_queries(t2))
    };

    // Train once on epoch 0.
    let static_layout = shp(&epochs[0]);
    let static_freq = freq_of(&epochs[0]);

    epochs
        .iter()
        .enumerate()
        .map(|(epoch, trace)| {
            let static_gain = gain_on(&static_layout, &static_freq, trace, t2, cache);
            let retrained_gain = if epoch == 0 {
                static_gain
            } else {
                let layout = shp(trace);
                let freq = freq_of(trace);
                gain_on(&layout, &freq, trace, t2, cache)
            };
            DriftRow { epoch, static_gain, retrained_gain }
        })
        .collect()
}

/// Renders the decay table.
pub fn render(rows: &[DriftRow]) -> String {
    let mut table =
        TextTable::new(vec!["epoch", "static (epoch-0 training)", "retrained each epoch"]);
    for r in rows {
        table.row(vec![r.epoch.to_string(), pct(r.static_gain), pct(r.retrained_gain)]);
    }
    format!(
        "Extension: configuration decay under {}%-per-epoch hot-set drift (table 2)\n{}",
        (ROTATE_FRACTION * 100.0) as u32,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_config_decays() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), EPOCHS);
        let first = rows[0].static_gain;
        let last = rows[EPOCHS - 1].static_gain;
        assert!(
            last < first * 0.7,
            "drift should erode the trained gain: epoch 0 {first:.3} vs last {last:.3}"
        );
    }

    #[test]
    fn retraining_recovers_most_of_the_gain() {
        let rows = run(Scale::Quick);
        for r in &rows[1..] {
            assert!(
                r.retrained_gain > r.static_gain,
                "epoch {}: retrained {:.3} should beat stale {:.3}",
                r.epoch,
                r.retrained_gain,
                r.static_gain
            );
        }
        let first = rows[0].retrained_gain;
        let last = rows[EPOCHS - 1].retrained_gain;
        assert!(
            last > first * 0.5,
            "retrained gain should stay in the training ballpark: {first:.3} → {last:.3}"
        );
    }

    #[test]
    fn render_has_every_epoch() {
        let rows = run(Scale::Quick);
        let s = render(&rows);
        for e in 0..EPOCHS {
            assert!(s.contains(&format!("\n{e} ")) || s.contains(&format!(" {e} ")), "epoch {e}");
        }
    }
}
