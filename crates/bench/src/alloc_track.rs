//! A counting global allocator behind the `count-allocs` feature.
//!
//! With `--features count-allocs` every binary linking `bandana-bench`
//! (the `repro` driver, the test harnesses) routes heap allocation through
//! a wrapper around the system allocator that bumps a **per-thread**
//! counter on every `alloc`/`realloc`/`alloc_zeroed`. The serve sweep uses
//! it to report steady-state allocations per lookup into
//! `BENCH_serve.json`, and `repro check-bench` gates that number at
//! exactly zero — the whole point of the pooled/scratch read path.
//!
//! Counters are thread-local so a measurement on the probe thread is not
//! polluted by load-generator or shard-worker activity; the counter cells
//! are const-initialized, which keeps the TLS access inside the allocator
//! itself allocation-free and re-entrancy safe.
//!
//! Without the feature the module still compiles and
//! [`thread_allocations`] returns `None`, so callers need no `cfg` of
//! their own.

#[cfg(feature = "count-allocs")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    std::thread_local! {
        static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    }

    /// The system allocator plus a per-thread allocation counter.
    pub struct CountingAllocator;

    fn bump() {
        // `try_with` instead of `with`: the allocator can run during TLS
        // teardown, where touching the key would otherwise panic.
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
    }

    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            bump();
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            bump();
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            bump();
            unsafe { System.alloc_zeroed(layout) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    pub fn thread_allocations() -> u64 {
        ALLOCATIONS.with(|c| c.get())
    }
}

/// Heap allocations performed by the **current thread** since it started,
/// or `None` when the `count-allocs` feature is off. Subtract two
/// snapshots to measure a region.
pub fn thread_allocations() -> Option<u64> {
    #[cfg(feature = "count-allocs")]
    {
        Some(counting::thread_allocations())
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        None
    }
}

#[cfg(all(test, feature = "count-allocs"))]
mod tests {
    use super::*;

    #[test]
    fn counter_observes_this_threads_allocations() {
        let before = thread_allocations().expect("feature is on");
        let v: Vec<u64> = (0..1024).collect();
        let after = thread_allocations().expect("feature is on");
        assert!(after > before, "an allocation must be counted");
        drop(v);
        // Deallocation is not an allocation.
        assert_eq!(thread_allocations().unwrap(), after);
    }
}
