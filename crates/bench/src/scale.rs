//! Experiment scale presets.
//!
//! The paper runs on 10–20 M-vector tables and billions of lookups. All
//! reported metrics are ratios over counted block reads, which survive a
//! uniform scale-down (DESIGN.md §1), so the harness runs the same
//! experiments at 1/1000 of production scale (`Full`) and a further-reduced
//! smoke size (`Quick`) for CI and Criterion.

use serde::{Deserialize, Serialize};

/// How large to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// CI-sized: ~1–2 K vectors per table, a few hundred thousand lookups.
    Quick,
    /// The EXPERIMENTS.md size: 10–20 K vectors per table (1000× below
    /// production), millions of lookups.
    Full,
}

impl Scale {
    /// Table-size divisor relative to production (10–20 M vectors).
    pub fn spec_scale(self) -> u32 {
        match self {
            Scale::Quick => 10_000,
            Scale::Full => 1_000,
        }
    }

    /// Evaluation-trace length in requests (~335 lookups each across the 8
    /// paper tables).
    pub fn eval_requests(self) -> usize {
        match self {
            Scale::Quick => 400,
            Scale::Full => 3_000,
        }
    }

    /// Base training-trace length in requests (the "1 B requests" analogue;
    /// figures 9/15 sweep multiples of this).
    pub fn train_requests(self) -> usize {
        match self {
            Scale::Quick => 800,
            Scale::Full => 6_000,
        }
    }

    /// Per-table cache sizes in vectors standing in for the paper's
    /// 80 k–200 k sweep on table 2 (scaled by the table-size divisor).
    pub fn table2_cache_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![40, 60, 80, 100],
            Scale::Full => vec![80, 120, 160, 200],
        }
    }

    /// Total cache sizes in vectors standing in for the paper's 1 M–5 M
    /// total sweep (Figure 13).
    pub fn total_cache_sizes(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![250, 500, 750, 1_000, 1_250],
            Scale::Full => vec![1_000, 2_000, 3_000, 4_000, 5_000],
        }
    }

    /// The default total cache (the paper's 4 M-vector configuration).
    pub fn default_total_cache(self) -> usize {
        match self {
            Scale::Quick => 1_000,
            Scale::Full => 4_000,
        }
    }

    /// Miniature-cache sampling rates standing in for the paper's
    /// 10% / 1% / 0.1% (scaled caches are 1000× smaller, so rates scale up
    /// to keep mini caches non-degenerate; see EXPERIMENTS.md).
    pub fn sampling_rates(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![0.5, 0.25, 0.1],
            Scale::Full => vec![0.5, 0.25, 0.1],
        }
    }

    /// SHP refinement iterations.
    pub fn shp_iterations(self) -> u32 {
        match self {
            Scale::Quick => 9,
            Scale::Full => 16,
        }
    }

    /// Evaluation requests for the *unlimited-cache* experiments (Figures
    /// 6, 8, 9). These must stay short enough that the accessed set covers
    /// only part of each table — once every vector has been touched, any
    /// layout packs the accessed set perfectly and the metric saturates
    /// (the paper's tables are 10–20 M vectors against 1 B lookups, i.e.
    /// partial coverage by construction).
    pub fn unlimited_eval_requests(self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Full => 50,
        }
    }

    /// Requests to simulate per device benchmark point (Figures 2 and 5).
    pub fn device_requests(self) -> u64 {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 200_000,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Quick => write!(f, "quick"),
            Scale::Full => write!(f, "full"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_is_larger_than_quick() {
        assert!(Scale::Full.spec_scale() < Scale::Quick.spec_scale());
        assert!(Scale::Full.eval_requests() > Scale::Quick.eval_requests());
        assert!(Scale::Full.train_requests() > Scale::Quick.train_requests());
        assert!(Scale::Full.device_requests() > Scale::Quick.device_requests());
    }

    #[test]
    fn sweeps_are_non_empty_and_sorted() {
        for s in [Scale::Quick, Scale::Full] {
            let caches = s.table2_cache_sizes();
            assert!(!caches.is_empty());
            assert!(caches.windows(2).all(|w| w[0] < w[1]));
            let totals = s.total_cache_sizes();
            assert!(totals.windows(2).all(|w| w[0] < w[1]));
            assert!(!s.sampling_rates().is_empty());
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Scale::Quick.to_string(), "quick");
        assert_eq!(Scale::Full.to_string(), "full");
    }
}
