//! Plain-text table rendering for experiment artifacts.

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use bandana_bench::TextTable;
///
/// let mut t = TextTable::new(vec!["qd", "GB/s"]);
/// t.row(vec!["1".into(), "0.41".into()]);
/// let s = t.render();
/// assert!(s.contains("qd"));
/// assert!(s.contains("0.41"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// One row of a machine-readable experiment artifact: an ordered set of
/// key → value pairs rendered as a JSON object.
///
/// # Example
///
/// ```
/// use bandana_bench::output::JsonObject;
///
/// let row = JsonObject::new().u64("qps", 1000).f64("p99_ms", 1.25).str("mode", "open");
/// assert_eq!(row.render(), r#"{"qps":1000,"p99_ms":1.25,"mode":"open"}"#);
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Appends an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Appends a float field (`null` for non-finite values, which JSON
    /// cannot represent).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() { format!("{value}") } else { "null".to_string() };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Appends a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields.push((key.to_string(), format!("\"{}\"", json_escape(value))));
        self
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        let body: Vec<String> =
            self.fields.iter().map(|(k, v)| format!("\"{}\":{v}", json_escape(k))).collect();
        format!("{{{}}}", body.join(","))
    }
}

/// Renders a `BENCH_<name>.json`-style document: experiment name plus an
/// array of row objects.
pub fn json_document(name: &str, rows: impl IntoIterator<Item = JsonObject>) -> String {
    let rows: Vec<String> = rows.into_iter().map(|r| r.render()).collect();
    format!("{{\"experiment\":\"{}\",\"rows\":[{}]}}\n", json_escape(name), rows.join(","))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a gain fraction as the paper's percentage axes (e.g. `+129.9%`).
pub fn pct(gain: f64) -> String {
    format!("{:+.1}%", gain * 100.0)
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["12345".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].contains("12345"));
        // All lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_misshaped_rows() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(1.299), "+129.9%");
        assert_eq!(pct(-0.5), "-50.0%");
        assert_eq!(f2(1.234), "1.23");
    }

    #[test]
    fn json_document_is_well_formed() {
        let doc = json_document(
            "serve",
            vec![
                JsonObject::new().u64("load", 25).f64("p99_s", 0.001),
                JsonObject::new().str("note", "a \"quoted\"\nvalue").f64("bad", f64::NAN),
            ],
        );
        assert_eq!(
            doc,
            "{\"experiment\":\"serve\",\"rows\":[{\"load\":25,\"p99_s\":0.001},{\"note\":\"a \\\"quoted\\\"\\nvalue\",\"bad\":null}]}\n"
        );
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
