//! # bandana-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation. Each module
//! exposes `run(scale) -> Vec<Row>` returning structured results and a
//! `render` producing the human-readable artifact; the `repro` binary
//! dispatches on experiment ids (`fig2`–`fig16`, `table1`, `table2`, `all`)
//! and the Criterion benches wrap the same `run` functions.
//!
//! Everything runs at a configurable [`Scale`]: `Quick` for CI-sized smoke
//! runs, `Full` for the 1000×-scaled-down-from-production runs recorded in
//! EXPERIMENTS.md.

// `deny` rather than `forbid`: the `count-allocs` feature's global
// allocator is the one narrowly-scoped `unsafe impl` in the workspace.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_track;
pub mod baseline;
pub mod experiments;
pub mod output;
pub mod scale;

pub use baseline::{check_serve, parse_document, BenchDoc};
pub use output::TextTable;
pub use scale::Scale;
