//! The CI bench gate: compare a fresh `BENCH_serve.json` against a
//! checked-in baseline with generous tolerance bands.
//!
//! Wall-clock latencies move with the machine running them, so the gate
//! is deliberately loose: a row only fails when its p50/p99 exceeds the
//! baseline by a large multiplicative factor *plus* an absolute slack —
//! catching order-of-magnitude regressions (a lost batching path, an
//! accidental lock on the hot path) while shrugging off runner noise.
//! Structural properties (row set, request accounting, batching actually
//! batching, the weighted tenant's completions dominating the QoS
//! scenario per its weight, the serve-drift SLO claim — controller-on
//! keeps the protected tenant's recent-window p99 under its budget with a
//! nonzero offender `slo_shed`, controller-off blows it — and the socket
//! arm's client-side p99 sitting within the protocol-overhead budget
//! ([`NET_TOLERANCE_RATIO`]) of its in-process twin from the same run)
//! are checked exactly.
//!
//! The workspace's `serde` shim is a no-op, so this module carries its
//! own minimal JSON reader for the flat documents
//! [`crate::output::json_document`] emits.

use std::collections::BTreeMap;

/// A row fails when `current > baseline * TOLERANCE_RATIO + ABS_SLACK_S`.
pub const TOLERANCE_RATIO: f64 = 8.0;
/// Absolute slack added on top of the ratio band, in seconds.
pub const ABS_SLACK_S: f64 = 2e-3;
/// The protocol-overhead budget of the socket arm: a `transport == 1`
/// row's p99 may exceed its in-process twin's — same window, load,
/// tenant, and traced state, from the *same run* — by at most this
/// ratio plus [`NET_SCHED_SLACK_S`]. Deliberately far tighter than
/// [`TOLERANCE_RATIO`]: both rows ride the same machine in the same
/// process, so runner speed cancels out and the comparison isolates
/// framing + socket cost.
pub const NET_TOLERANCE_RATIO: f64 = 1.15;

/// Absolute slack added on top of [`NET_TOLERANCE_RATIO`], covering
/// thread-scheduling tails the ratio cannot: the wire path adds ~4
/// thread handoffs per request (client reactor → server reader →
/// shard worker → server writer → client reader), and on an
/// oversubscribed host — CI runners, the 1-CPU dev box — each handoff
/// can eat a multi-millisecond timeslice, so the quick sweep's p99
/// (4th-worst of 400 samples) swings several ms in *either* direction
/// between the twin rows. Sized to the observed tail swing; on
/// hardware with cores to spare the handoffs cost microseconds, this
/// term is dwarfed by real latencies, and the 15% ratio is what bites.
/// A genuine wire regression is still caught outright: the socket arm
/// is open-loop, so a serialized (non-pipelined) or stalled connection
/// backs arrivals up without bound and p99 lands in the hundreds of
/// milliseconds.
pub const NET_SCHED_SLACK_S: f64 = 30e-3;

/// The warm-restart budget: serve-restart's warm arm — recovered over
/// the WAL + snapshot, caches rehydrated before admission opens — must
/// keep its first-window p99 at or below this fraction of the cold
/// arm's. Both arms ride the same machine in the same run on identical
/// traffic, so runner speed cancels; the contrast is physical (the cold
/// arm pays a simulated device read per first-window miss) and measured
/// well below half, so 0.8 is decisive without being brittle.
pub const RESTART_FIRST_WINDOW_RATIO: f64 = 0.8;

/// The online re-budgeting recovery band: serve-rebudget's budget-on arm
/// — the cache budget controller re-dividing DRAM as the hot table
/// migrates — must keep its post-drift tail-window hit rate at or above
/// this fraction of its own pre-drift level. The measurement is
/// cache-determined (uniform draws over fixed working sets), so the band
/// is tight; measured recovery is ~1.0× with the budget fully migrated.
pub const REBUDGET_RECOVERY_RATIO: f64 = 0.8;

/// The frozen-split degradation ceiling: serve-rebudget's budget-off arm
/// — stuck on the build-time division after the hot table migrates —
/// must see its post-drift tail-window hit rate fall to at most this
/// fraction of its pre-drift level, or the scenario no longer
/// demonstrates the decay the controller exists to repair. Measured
/// ~0.15× (the newly-hot table thrashes a sliver of cache).
pub const REBUDGET_DEGRADED_RATIO: f64 = 0.6;

/// The online re-layout recovery band: serve-relayout's relayout-on arm
/// — the controller refining hot-block placement as the Zipf deck
/// rotates — must keep its post-drift tail-window device reads per
/// completed request at or below this multiple of its own pre-drift
/// (also controller-packed) level. The traffic is symmetric across the
/// drift, so full re-convergence measures ~1.0×.
pub const RELAYOUT_RECOVERY_RATIO: f64 = 1.5;

/// The frozen-layout contrast floor: serve-relayout's relayout-off arm
/// — stuck on the scattered identity layout — must pay at least this
/// multiple of the on arm's post-drift device reads per request, or the
/// scenario no longer demonstrates the block-straddling the controller
/// exists to repair. Measured ~3× (scattered groups straddle up to 16
/// blocks each; packed groups coalesce toward 1).
pub const RELAYOUT_CONTRAST_RATIO: f64 = 1.5;

/// The re-layout tail-latency band: serve-relayout's relayout-on arm's
/// post-drift tail-window p99 must stay within this multiple of the
/// off arm's. The structural gap is large (the off arm reads ~8× the
/// blocks per request), but both p99s are single-digit-microsecond
/// host work stretched over a 200-request window, so on a contended
/// 1-CPU runner one scheduler hiccup can land either side of a strict
/// comparison — the slack keeps the gate at "re-layout is not buying
/// back the tail" (rewrite pauses show up as ≥4× blowups) without
/// flaking on run-to-run noise.
pub const RELAYOUT_TAIL_RATIO: f64 = 1.5;

/// A parsed `BENCH_*.json` document: the experiment name and one numeric
/// field map per row (string fields are kept too, separately).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchDoc {
    /// The `experiment` field.
    pub experiment: String,
    /// One map of numeric fields per row.
    pub rows: Vec<BTreeMap<String, f64>>,
}

/// A minimal JSON value, just enough for our own documents.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    /// Reads the 4 hex digits of a `\u` escape (the leading `\u` already
    /// consumed) as a UTF-16 code unit.
    fn parse_hex4(&mut self) -> Result<u16, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u16::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        // Unescaped content is copied byte-for-byte and validated as UTF-8
        // at the end, so multi-byte characters survive intact.
        let mut out: Vec<u8> = Vec::new();
        loop {
            let Some(&c) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return String::from_utf8(out).map_err(|_| self.err("string is not UTF-8")),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = match unit {
                                // A high surrogate must pair with a
                                // following \u low surrogate.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos) == Some(&b'\\')
                                        && self.bytes.get(self.pos + 1) == Some(&b'u')
                                    {
                                        self.pos += 2;
                                        let low = self.parse_hex4()?;
                                        if !(0xDC00..=0xDFFF).contains(&low) {
                                            return Err(self.err("unpaired surrogate"));
                                        }
                                        let high = u32::from(unit - 0xD800);
                                        let low = u32::from(low - 0xDC00);
                                        char::from_u32(0x10000 + (high << 10) + low)
                                            .ok_or_else(|| self.err("bad surrogate pair"))?
                                    } else {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                }
                                0xDC00..=0xDFFF => return Err(self.err("unpaired surrogate")),
                                unit => char::from_u32(u32::from(unit))
                                    .ok_or_else(|| self.err("bad \\u escape"))?,
                            };
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        other => return Err(self.err(&format!("bad escape '\\{}'", other as char))),
                    }
                }
                other => out.push(other),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            fields.push((key, self.parse_value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a `BENCH_*.json` document produced by
/// [`crate::output::json_document`].
///
/// # Errors
///
/// Returns a description of the first syntax or shape problem.
pub fn parse_document(text: &str) -> Result<BenchDoc, String> {
    let mut p = Parser::new(text);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    let Json::Obj(fields) = value else {
        return Err("top level must be an object".into());
    };
    let mut doc = BenchDoc::default();
    for (key, value) in fields {
        match (key.as_str(), value) {
            ("experiment", Json::Str(s)) => doc.experiment = s,
            ("rows", Json::Arr(rows)) => {
                for row in rows {
                    let Json::Obj(fields) = row else {
                        return Err("every row must be an object".into());
                    };
                    let mut numbers = BTreeMap::new();
                    for (k, v) in fields {
                        match v {
                            Json::Num(n) => {
                                numbers.insert(k, n);
                            }
                            Json::Bool(b) => {
                                numbers.insert(k, if b { 1.0 } else { 0.0 });
                            }
                            // Strings/null carry no comparable number.
                            _ => {}
                        }
                    }
                    doc.rows.push(numbers);
                }
            }
            _ => {}
        }
    }
    Ok(doc)
}

/// The latency fields gated against the baseline.
const GATED_FIELDS: [&str; 2] = ["p50_s", "p99_s"];
/// Fields identifying a row across runs (`tenant` is `-1` on aggregate
/// rows and absent entirely in pre-tenant documents, `slo_on` only
/// exists on serve-drift rows, `traced` distinguishes the
/// flight-recorder overhead arm from its matched untraced row,
/// `transport` distinguishes the socket arm from its in-process twin,
/// `restart` distinguishes serve-restart's warm arm from its cold twin,
/// and `rebudget` distinguishes serve-rebudget's controller-on arm from
/// its controller-off twin — absent fields format consistently, so old
/// and new baselines keep matching themselves).
const KEY_FIELDS: [&str; 9] = [
    "window_us",
    "load_pct",
    "tenant",
    "slo_on",
    "traced",
    "transport",
    "restart",
    "rebudget",
    "relayout",
];

fn row_key(row: &BTreeMap<String, f64>) -> String {
    KEY_FIELDS
        .iter()
        .map(|k| format!("{k}={}", row.get(*k).copied().unwrap_or(f64::NAN)))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Compares a fresh serve sweep against the checked-in baseline.
///
/// Returns the human-readable report lines on success.
///
/// # Errors
///
/// Returns the list of violations when any gate fails.
pub fn check_serve(current: &BenchDoc, baseline: &BenchDoc) -> Result<Vec<String>, Vec<String>> {
    let mut report = Vec::new();
    let mut failures = Vec::new();

    if current.experiment != baseline.experiment {
        failures.push(format!(
            "experiment mismatch: current {:?} vs baseline {:?}",
            current.experiment, baseline.experiment
        ));
    }

    let mut baseline_rows: BTreeMap<String, &BTreeMap<String, f64>> = BTreeMap::new();
    for row in &baseline.rows {
        baseline_rows.insert(row_key(row), row);
    }

    let mut matched = 0usize;
    for row in &current.rows {
        let key = row_key(row);
        let Some(base) = baseline_rows.get(&key) else {
            failures.push(format!("row [{key}] missing from the baseline — re-baseline?"));
            continue;
        };
        matched += 1;
        // Request accounting: completed + shed covers everything offered.
        let completed = row.get("completed").copied().unwrap_or(0.0);
        if completed <= 0.0 {
            failures.push(format!("row [{key}] completed no requests"));
        }
        for field in GATED_FIELDS {
            let (Some(&cur), Some(&base)) = (row.get(field), base.get(field)) else {
                failures.push(format!("row [{key}] lacks field {field}"));
                continue;
            };
            let limit = base * TOLERANCE_RATIO + ABS_SLACK_S;
            if cur > limit {
                failures.push(format!(
                    "row [{key}] {field} regressed: {cur:.6}s > limit {limit:.6}s \
                     (baseline {base:.6}s × {TOLERANCE_RATIO} + {ABS_SLACK_S}s)"
                ));
            } else {
                report.push(format!("row [{key}] {field} {cur:.6}s within limit {limit:.6}s"));
            }
        }
    }
    if matched < baseline.rows.len() {
        failures.push(format!(
            "current run has {matched} of the baseline's {} rows — sweep shrank",
            baseline.rows.len()
        ));
    }

    // With the counting allocator on (steady_allocs_per_lookup >= 0; the
    // feature-off sentinel is -1), the steady-state read path must be
    // allocation-free — the probe is deterministic, so the gate is exact.
    let mut counted_rows = 0usize;
    let mut alloc_violations = 0usize;
    for row in &current.rows {
        let Some(&allocs) = row.get("steady_allocs_per_lookup") else { continue };
        if allocs < 0.0 {
            continue;
        }
        counted_rows += 1;
        if allocs != 0.0 {
            alloc_violations += 1;
            failures.push(format!(
                "row [{}] steady-state read path allocates: {allocs} allocs/lookup (must be 0)",
                row_key(row)
            ));
        }
    }
    if counted_rows > 0 && alloc_violations == 0 {
        report.push(format!(
            "zero-alloc steady state: {counted_rows} counted rows at 0 allocs/lookup"
        ));
    }

    // Per-tenant QoS rows (tenant >= 0): within each scenario the
    // heaviest tenant's completions must dominate per its weight. The
    // scenario offers both tenants identical load, so a weight-blind
    // scheduler completes ~1:1 and an inverted one < 1. DRR shares are
    // exact only while every lane stays backlogged — ramp-up/drain
    // tails and bursty arrivals dilute the measured ratio below the
    // ideal weight ratio (the quick sweep measures ~3-3.6:1 for 9:1
    // weights) — so the floor is a fifth of the weight ratio:
    // decisively above dead/inverted scheduling, comfortably below the
    // sustained-overload measurement.
    // (Serve-drift rows also carry tenants but *deliberately* invert the
    // weighted shares — the SLO controller sheds the heavy offender — so
    // they are excluded here and gated by their own block below.)
    let tenant_rows: Vec<&BTreeMap<String, f64>> = current
        .rows
        .iter()
        .filter(|r| r.get("tenant").copied().unwrap_or(-1.0) >= 0.0 && !r.contains_key("slo_on"))
        .collect();
    if !tenant_rows.is_empty() {
        let mut scenarios: BTreeMap<String, Vec<&BTreeMap<String, f64>>> = BTreeMap::new();
        for row in &tenant_rows {
            let key = format!(
                "window_us={} load_pct={}",
                row.get("window_us").copied().unwrap_or(f64::NAN),
                row.get("load_pct").copied().unwrap_or(f64::NAN)
            );
            scenarios.entry(key).or_default().push(row);
        }
        for (key, rows) in &scenarios {
            if rows.len() < 2 {
                failures.push(format!("tenant scenario [{key}] has only {} row(s)", rows.len()));
                continue;
            }
            let weight = |r: &BTreeMap<String, f64>| r.get("tenant_weight").copied().unwrap_or(0.0);
            let completed = |r: &BTreeMap<String, f64>| r.get("completed").copied().unwrap_or(0.0);
            let heavy = rows
                .iter()
                .max_by(|a, b| weight(a).total_cmp(&weight(b)))
                .expect("at least two rows");
            let mut ok = true;
            for other in rows.iter().filter(|r| weight(r) < weight(heavy)) {
                let weight_ratio = weight(heavy) / weight(other).max(1.0);
                let floor = completed(other) * weight_ratio / 5.0;
                if completed(heavy) <= completed(other) || completed(heavy) < floor {
                    ok = false;
                    failures.push(format!(
                        "tenant scenario [{key}]: weight-{} tenant completed {} vs weight-{} \
                         tenant's {} — below the weighted-domination floor {floor:.0} \
                         (weights are not being enforced)",
                        weight(heavy),
                        completed(heavy),
                        weight(other),
                        completed(other),
                    ));
                }
            }
            // The scenario must really overload: someone shed.
            let total_shed: f64 = rows.iter().map(|r| r.get("shed").copied().unwrap_or(0.0)).sum();
            if total_shed <= 0.0 {
                ok = false;
                failures.push(format!(
                    "tenant scenario [{key}] shed nothing — not an overload scenario"
                ));
            }
            if ok {
                report.push(format!(
                    "tenant QoS [{key}]: weighted completions dominate and the scenario sheds"
                ));
            }
        }
    }

    // Serve-drift SLO rows (`slo_on` present): the control plane's
    // headline claim, checked structurally against each row's own budget
    // (budgets are derived from measured capacity at run time, so the
    // comparison is self-calibrating — no wall-clock constants here).
    // SLO-on must keep the protected tenant's recent-window p99 under
    // its budget by shedding the offender; SLO-off — same tenants, same
    // budgets, no controller — must blow it, and may not SLO-shed
    // anything. Every drift row's shed-reason breakdown must partition
    // its aggregate shed count.
    let drift_rows: Vec<&BTreeMap<String, f64>> =
        current.rows.iter().filter(|r| r.contains_key("slo_on")).collect();
    if !drift_rows.is_empty() {
        for row in &drift_rows {
            let field = |k: &str| row.get(k).copied().unwrap_or(0.0);
            let sum = field("shed_lane_full") + field("shed_quota") + field("shed_slo");
            if sum != field("shed") {
                failures.push(format!(
                    "row [{}] shed breakdown {sum} does not partition shed {}",
                    row_key(row),
                    field("shed")
                ));
            }
        }
        for (on, label) in [(1.0, "slo-on"), (0.0, "slo-off")] {
            let arm: Vec<&BTreeMap<String, f64>> = drift_rows
                .iter()
                .copied()
                .filter(|r| r.get("slo_on").copied().unwrap_or(-1.0) == on)
                .collect();
            if arm.is_empty() {
                failures.push(format!("serve-drift is missing its {label} arm"));
                continue;
            }
            let protected: Vec<&BTreeMap<String, f64>> = arm
                .iter()
                .copied()
                .filter(|r| r.get("protected").copied().unwrap_or(0.0) == 1.0)
                .collect();
            if protected.is_empty() {
                failures.push(format!("serve-drift {label} arm has no protected-tenant row"));
                continue;
            }
            let mut ok = true;
            for p in &protected {
                let budget = p.get("slo_p99_s").copied().unwrap_or(0.0);
                let recent = p.get("p99_recent_s").copied().unwrap_or(f64::NAN);
                let window_samples = p.get("recent_count").copied().unwrap_or(0.0);
                // A NaN recent p99 (missing field) must fail both arms,
                // so each arm asserts its positive claim.
                let held = recent <= budget && window_samples > 0.0;
                let blown = recent > budget;
                if budget <= 0.0 {
                    ok = false;
                    failures
                        .push(format!("serve-drift {label}: protected tenant has no p99 budget"));
                } else if on == 1.0 && !held {
                    ok = false;
                    failures.push(format!(
                        "serve-drift {label}: protected tenant's recent-window p99 {recent:.6}s \
                         over {window_samples} samples does not sit under its {budget:.6}s \
                         budget with live traffic — the SLO controller is not protecting it"
                    ));
                } else if on == 0.0 && !blown {
                    ok = false;
                    failures.push(format!(
                        "serve-drift {label}: protected tenant's recent-window p99 {recent:.6}s \
                         sits under the {budget:.6}s budget — the scenario no longer demonstrates \
                         the failure the controller exists to prevent"
                    ));
                }
            }
            let slo_shed: f64 = arm.iter().map(|r| r.get("shed_slo").copied().unwrap_or(0.0)).sum();
            let offender_slo_shed: f64 = arm
                .iter()
                .filter(|r| r.get("protected").copied().unwrap_or(0.0) != 1.0)
                .map(|r| r.get("shed_slo").copied().unwrap_or(0.0))
                .sum();
            if on == 1.0 && offender_slo_shed <= 0.0 {
                ok = false;
                failures.push(
                    "serve-drift slo-on: the offender was never SLO-shed — the breaker never \
                     tripped"
                        .into(),
                );
            }
            if on == 0.0 && slo_shed > 0.0 {
                ok = false;
                failures.push(format!(
                    "serve-drift slo-off: {slo_shed} requests were SLO-shed with no controller \
                     registered"
                ));
            }
            if ok {
                report.push(format!(
                    "serve-drift {label}: protected tenant's windowed p99 behaves as claimed"
                ));
            }
        }
    }

    // The trace-overhead arm (`traced` == 1): with flight-recorder
    // sampling on, the run must ride inside the same generous band as
    // its matched untraced row. The twin comes from the *current* run,
    // so the claim is about the recorder's overhead, not runner speed —
    // and the alloc gate above already covers the traced row's
    // steady_allocs_per_lookup.
    let traced_rows: Vec<&BTreeMap<String, f64>> =
        current.rows.iter().filter(|r| r.get("traced").copied().unwrap_or(0.0) == 1.0).collect();
    for row in &traced_rows {
        let twin = current.rows.iter().find(|r| {
            r.get("traced").copied().unwrap_or(0.0) == 0.0
                && r.get("transport").copied().unwrap_or(0.0)
                    == row.get("transport").copied().unwrap_or(0.0)
                && r.get("window_us") == row.get("window_us")
                && r.get("load_pct") == row.get("load_pct")
                && r.get("tenant").copied().unwrap_or(-1.0)
                    == row.get("tenant").copied().unwrap_or(-1.0)
        });
        let Some(twin) = twin else {
            failures.push(format!(
                "traced row [{}] has no matched untraced row to compare against",
                row_key(row)
            ));
            continue;
        };
        let (Some(&cur), Some(&base)) = (row.get("p99_s"), twin.get("p99_s")) else {
            failures.push(format!("traced row [{}] lacks p99_s", row_key(row)));
            continue;
        };
        let limit = base * TOLERANCE_RATIO + ABS_SLACK_S;
        if cur > limit {
            failures.push(format!(
                "trace overhead: traced row [{}] p99 {cur:.6}s exceeds its untraced twin's \
                 limit {limit:.6}s (twin p99 {base:.6}s × {TOLERANCE_RATIO} + {ABS_SLACK_S}s) — \
                 flight-recorder sampling is no longer cheap",
                row_key(row)
            ));
        } else {
            report.push(format!(
                "trace overhead: traced p99 {cur:.6}s within its untraced twin's limit {limit:.6}s"
            ));
        }
    }

    // The socket arm (`transport` == 1): the TCP front-end's client-side
    // p99 must sit within the protocol-overhead budget of its in-process
    // twin — same window/load/tenant/traced key, from the *current* run,
    // so machine speed cancels and the gate isolates what the wire adds
    // (framing, syscalls, the reader/writer thread handoff). An orphan
    // socket row fails: without its twin the budget is unmeasurable.
    let net_rows: Vec<&BTreeMap<String, f64>> =
        current.rows.iter().filter(|r| r.get("transport").copied().unwrap_or(0.0) == 1.0).collect();
    for row in &net_rows {
        let twin = current.rows.iter().find(|r| {
            r.get("transport").copied().unwrap_or(0.0) == 0.0
                && r.get("traced").copied().unwrap_or(0.0)
                    == row.get("traced").copied().unwrap_or(0.0)
                && r.get("window_us") == row.get("window_us")
                && r.get("load_pct") == row.get("load_pct")
                && r.get("tenant").copied().unwrap_or(-1.0)
                    == row.get("tenant").copied().unwrap_or(-1.0)
                && r.contains_key("slo_on") == row.contains_key("slo_on")
        });
        let Some(twin) = twin else {
            failures.push(format!(
                "socket row [{}] has no matched in-process row to compare against",
                row_key(row)
            ));
            continue;
        };
        let (Some(&cur), Some(&base)) = (row.get("p99_s"), twin.get("p99_s")) else {
            failures.push(format!("socket row [{}] lacks p99_s", row_key(row)));
            continue;
        };
        let limit = base * NET_TOLERANCE_RATIO + NET_SCHED_SLACK_S;
        if cur > limit {
            failures.push(format!(
                "protocol overhead: socket row [{}] p99 {cur:.6}s exceeds its in-process twin's \
                 limit {limit:.6}s (twin p99 {base:.6}s × {NET_TOLERANCE_RATIO} + \
                 {NET_SCHED_SLACK_S}s) — the wire is no longer cheap",
                row_key(row)
            ));
        } else {
            report.push(format!(
                "protocol overhead: socket p99 {cur:.6}s within its in-process twin's limit \
                 {limit:.6}s"
            ));
        }
    }

    // Serve-restart rows (`restart` present): the durability layer's
    // headline claim, checked structurally between the two arms of the
    // *current* run (same machine, same traffic, so runner speed
    // cancels). The warm arm — recovered over the WAL + snapshot — must
    // cut the cold arm's first-window p99 decisively, its restored
    // drive-write accounting must match what the primed engine wrote,
    // and the snapshot must really have rehydrated cache keys.
    let restart_rows: Vec<&BTreeMap<String, f64>> =
        current.rows.iter().filter(|r| r.contains_key("restart")).collect();
    if !restart_rows.is_empty() {
        let arm =
            |on: f64| restart_rows.iter().copied().find(|r| r.get("restart").copied() == Some(on));
        match (arm(1.0), arm(0.0)) {
            _ if restart_rows.len() != 2 => {
                failures.push(format!(
                    "serve-restart must have exactly one warm and one cold row, got {}",
                    restart_rows.len()
                ));
            }
            (Some(warm), Some(cold)) => {
                let field = |r: &BTreeMap<String, f64>, k: &str| r.get(k).copied().unwrap_or(0.0);
                let mut ok = true;
                let warm_p99 = field(warm, "p99_first_s");
                let cold_p99 = field(cold, "p99_first_s");
                if !(warm_p99 > 0.0
                    && cold_p99 > 0.0
                    && warm_p99 <= cold_p99 * RESTART_FIRST_WINDOW_RATIO)
                {
                    ok = false;
                    failures.push(format!(
                        "serve-restart: warm first-window p99 {warm_p99:.6}s is not decisively \
                         below the cold arm's {cold_p99:.6}s (must be ≤ {RESTART_FIRST_WINDOW_RATIO}×) \
                         — recovery is not rehydrating a useful cache"
                    ));
                }
                // Hit rate, not raw device reads: the cold arm's misses
                // concentrate on hot blocks and coalesce into fewer
                // distinct block reads, so read counts can cross even
                // when the warm cache is absorbing traffic.
                if field(warm, "hit_rate_first") <= field(cold, "hit_rate_first") {
                    ok = false;
                    failures.push(format!(
                        "serve-restart: warm arm's first-window hit rate {:.4} does not exceed \
                         the cold arm's {:.4} — the rehydrated cache is not absorbing misses",
                        field(warm, "hit_rate_first"),
                        field(cold, "hit_rate_first")
                    ));
                }
                let pre = field(warm, "bytes_written_pre");
                let restored = field(warm, "bytes_written_restored");
                if pre <= 0.0 || restored != pre {
                    ok = false;
                    failures.push(format!(
                        "serve-restart: drive-write accounting did not survive the restart \
                         (primed engine wrote {pre} bytes, warm arm restored {restored})"
                    ));
                }
                if field(warm, "rehydrated_keys") <= 0.0 || field(warm, "replayed_records") <= 0.0 {
                    ok = false;
                    failures.push(format!(
                        "serve-restart: warm arm replayed {} WAL records and rehydrated {} keys \
                         — recovery did not actually restore state",
                        field(warm, "replayed_records"),
                        field(warm, "rehydrated_keys")
                    ));
                }
                if field(cold, "bytes_written_restored") != 0.0
                    || field(cold, "rehydrated_keys") != 0.0
                {
                    ok = false;
                    failures.push(
                        "serve-restart: the cold arm restored state — it is not a cold start"
                            .into(),
                    );
                }
                if field(warm, "completed") <= 0.0
                    || field(warm, "completed") != field(cold, "completed")
                {
                    ok = false;
                    failures.push(format!(
                        "serve-restart: arms completed different request counts ({} vs {}) — \
                         the comparison is not on identical traffic",
                        field(warm, "completed"),
                        field(cold, "completed")
                    ));
                }
                if ok {
                    report.push(format!(
                        "serve-restart: warm first-window p99 {warm_p99:.6}s vs cold \
                         {cold_p99:.6}s, drive-write accounting survived the restart"
                    ));
                }
            }
            (warm, _) => {
                failures.push(format!(
                    "serve-restart is missing its {} arm",
                    if warm.is_none() { "warm" } else { "cold" }
                ));
            }
        }
    }

    // Serve-rebudget rows (`rebudget` present): the cache budget
    // controller's headline claim, checked structurally between the two
    // arms of the *current* run (same machine, identical traffic, so
    // runner speed cancels). The budget-on arm must recover its own
    // pre-drift tail-window hit rate after the hot table migrates —
    // with its post-drift p99 under the budget-off arm's and applied
    // `SetCachePartition` audit evidence — while the budget-off arm,
    // frozen on the build-time division, must stay degraded and must
    // not have re-partitioned anything.
    let rebudget_rows: Vec<&BTreeMap<String, f64>> =
        current.rows.iter().filter(|r| r.contains_key("rebudget")).collect();
    if !rebudget_rows.is_empty() {
        let arm =
            |v: f64| rebudget_rows.iter().copied().find(|r| r.get("rebudget").copied() == Some(v));
        match (arm(1.0), arm(0.0)) {
            _ if rebudget_rows.len() != 2 => {
                failures.push(format!(
                    "serve-rebudget must have exactly one budget-on and one budget-off row, \
                     got {}",
                    rebudget_rows.len()
                ));
            }
            (Some(on), Some(off)) => {
                let field = |r: &BTreeMap<String, f64>, k: &str| r.get(k).copied().unwrap_or(0.0);
                let mut ok = true;
                for (row, label) in [(on, "budget-on"), (off, "budget-off")] {
                    if field(row, "hit_rate_pre") <= 0.0 {
                        ok = false;
                        failures.push(format!(
                            "serve-rebudget {label}: no pre-drift cache hits — the warmup \
                             phase is not warming anything"
                        ));
                    }
                }
                let on_pre = field(on, "hit_rate_pre");
                let on_post = field(on, "hit_rate_post");
                if on_post < on_pre * REBUDGET_RECOVERY_RATIO {
                    ok = false;
                    failures.push(format!(
                        "serve-rebudget: budget-on post-drift hit rate {on_post:.4} does not \
                         recover its pre-drift {on_pre:.4} (must be ≥ \
                         {REBUDGET_RECOVERY_RATIO}×) — the controller is not re-dividing \
                         DRAM toward the migrated hot table"
                    ));
                }
                let off_pre = field(off, "hit_rate_pre");
                let off_post = field(off, "hit_rate_post");
                if off_post > off_pre * REBUDGET_DEGRADED_RATIO {
                    ok = false;
                    failures.push(format!(
                        "serve-rebudget: budget-off post-drift hit rate {off_post:.4} did not \
                         degrade from its pre-drift {off_pre:.4} (must be ≤ \
                         {REBUDGET_DEGRADED_RATIO}×) — the scenario no longer demonstrates \
                         the stranded build-time split the controller exists to repair"
                    ));
                }
                if on_post <= off_post {
                    ok = false;
                    failures.push(format!(
                        "serve-rebudget: budget-on post-drift hit rate {on_post:.4} does not \
                         exceed budget-off's {off_post:.4}"
                    ));
                }
                let on_p99 = field(on, "p99_post_s");
                let off_p99 = field(off, "p99_post_s");
                if !(on_p99 > 0.0 && off_p99 > 0.0 && on_p99 < off_p99) {
                    ok = false;
                    failures.push(format!(
                        "serve-rebudget: budget-on post-drift p99 {on_p99:.6}s does not sit \
                         under budget-off's {off_p99:.6}s — re-dividing the cache is not \
                         buying back the tail"
                    ));
                }
                if field(on, "rebudget_applied") < 1.0 || field(on, "partition_moves") < 1.0 {
                    ok = false;
                    failures.push(format!(
                        "serve-rebudget: budget-on applied {} re-partitions with {} \
                         SetCachePartition audit entries — the controller never acted",
                        field(on, "rebudget_applied"),
                        field(on, "partition_moves")
                    ));
                }
                if field(off, "rebudget_applied") != 0.0 || field(off, "partition_moves") != 0.0 {
                    ok = false;
                    failures.push(
                        "serve-rebudget: the budget-off arm re-partitioned its caches — it is \
                         not a controller-free baseline"
                            .into(),
                    );
                }
                if field(on, "completed") <= 0.0
                    || field(on, "completed") != field(off, "completed")
                {
                    ok = false;
                    failures.push(format!(
                        "serve-rebudget: arms completed different request counts ({} vs {}) — \
                         the comparison is not on identical traffic",
                        field(on, "completed"),
                        field(off, "completed")
                    ));
                }
                if ok {
                    report.push(format!(
                        "serve-rebudget: budget-on recovered hit rate {on_post:.4} (pre \
                         {on_pre:.4}) vs budget-off {off_post:.4}, post-drift p99 \
                         {on_p99:.6}s under {off_p99:.6}s"
                    ));
                }
            }
            (on, _) => {
                failures.push(format!(
                    "serve-rebudget is missing its {} arm",
                    if on.is_none() { "budget-on" } else { "budget-off" }
                ));
            }
        }
    }

    // Serve-relayout rows (`relayout` present): the re-layout
    // controller's headline claim, checked structurally between the two
    // arms of the *current* run (same machine, identical traffic, so
    // runner speed cancels). The relayout-on arm must recover its own
    // pre-drift tail-window device reads per completed request after
    // the hot set rotates — with its post-drift p99 under the off
    // arm's, real rewrite bytes on the shard device, and audit-logged
    // `ApplyLayout` evidence — while the relayout-off arm, frozen on
    // the scattered build layout, must stay degraded and must not have
    // rewritten anything.
    let relayout_rows: Vec<&BTreeMap<String, f64>> =
        current.rows.iter().filter(|r| r.contains_key("relayout")).collect();
    if !relayout_rows.is_empty() {
        let arm =
            |v: f64| relayout_rows.iter().copied().find(|r| r.get("relayout").copied() == Some(v));
        match (arm(1.0), arm(0.0)) {
            _ if relayout_rows.len() != 2 => {
                failures.push(format!(
                    "serve-relayout must have exactly one relayout-on and one relayout-off \
                     row, got {}",
                    relayout_rows.len()
                ));
            }
            (Some(on), Some(off)) => {
                let field = |r: &BTreeMap<String, f64>, k: &str| r.get(k).copied().unwrap_or(0.0);
                let mut ok = true;
                for (row, label) in [(on, "relayout-on"), (off, "relayout-off")] {
                    if field(row, "reads_per_req_pre") <= 0.0
                        || field(row, "reads_per_req_post") <= 0.0
                    {
                        ok = false;
                        failures.push(format!(
                            "serve-relayout {label}: no tail-window device reads — the \
                             scenario is not exercising the device at all"
                        ));
                    }
                }
                let on_pre = field(on, "reads_per_req_pre");
                let on_post = field(on, "reads_per_req_post");
                if on_post > on_pre * RELAYOUT_RECOVERY_RATIO {
                    ok = false;
                    failures.push(format!(
                        "serve-relayout: relayout-on post-drift device reads per request \
                         {on_post:.1} do not recover toward its pre-drift {on_pre:.1} (must \
                         be ≤ {RELAYOUT_RECOVERY_RATIO}×) — the controller is not re-packing \
                         the rotated hot set"
                    ));
                }
                let off_post = field(off, "reads_per_req_post");
                if off_post < on_post * RELAYOUT_CONTRAST_RATIO {
                    ok = false;
                    failures.push(format!(
                        "serve-relayout: relayout-off post-drift device reads per request \
                         {off_post:.1} sit under {RELAYOUT_CONTRAST_RATIO}× relayout-on's \
                         {on_post:.1} — the scenario no longer demonstrates the scattered \
                         layout the controller exists to repair"
                    ));
                }
                let on_p99 = field(on, "p99_post_s");
                let off_p99 = field(off, "p99_post_s");
                if !(on_p99 > 0.0 && off_p99 > 0.0 && on_p99 <= off_p99 * RELAYOUT_TAIL_RATIO) {
                    ok = false;
                    failures.push(format!(
                        "serve-relayout: relayout-on post-drift p99 {on_p99:.6}s exceeds \
                         {RELAYOUT_TAIL_RATIO}× relayout-off's {off_p99:.6}s — packing the \
                         hot blocks is not buying back the tail"
                    ));
                }
                if field(on, "relayout_applied") < 1.0
                    || field(on, "layout_moves") < 1.0
                    || field(on, "relayout_rewritten_blocks") < 1.0
                {
                    ok = false;
                    failures.push(format!(
                        "serve-relayout: relayout-on applied {} re-layouts rewriting {} \
                         blocks with {} ApplyLayout audit entries — the controller never \
                         acted",
                        field(on, "relayout_applied"),
                        field(on, "relayout_rewritten_blocks"),
                        field(on, "layout_moves")
                    ));
                }
                if field(on, "bytes_written") <= 0.0 {
                    ok = false;
                    failures.push(
                        "serve-relayout: relayout-on shows no shard write bytes — applied \
                         re-layouts are not being charged as device rewrites"
                            .into(),
                    );
                }
                if field(off, "relayout_applied") != 0.0
                    || field(off, "layout_moves") != 0.0
                    || field(off, "relayout_rewritten_blocks") != 0.0
                    || field(off, "bytes_written") != 0.0
                {
                    ok = false;
                    failures.push(
                        "serve-relayout: the relayout-off arm rewrote its layout — it is not \
                         a controller-free baseline"
                            .into(),
                    );
                }
                if field(on, "completed") <= 0.0
                    || field(on, "completed") != field(off, "completed")
                {
                    ok = false;
                    failures.push(format!(
                        "serve-relayout: arms completed different request counts ({} vs {}) \
                         — the comparison is not on identical traffic",
                        field(on, "completed"),
                        field(off, "completed")
                    ));
                }
                if ok {
                    report.push(format!(
                        "serve-relayout: relayout-on recovered {on_post:.1} device reads per \
                         request (pre {on_pre:.1}) vs relayout-off {off_post:.1}, post-drift \
                         p99 {on_p99:.6}s under {off_p99:.6}s"
                    ));
                }
            }
            (on, _) => {
                failures.push(format!(
                    "serve-relayout is missing its {} arm",
                    if on.is_none() { "relayout-on" } else { "relayout-off" }
                ));
            }
        }
    }

    // The batched pipeline must actually batch somewhere at moderate load.
    let batched_moderate: Vec<&BTreeMap<String, f64>> = current
        .rows
        .iter()
        .filter(|r| {
            r.get("window_us").copied().unwrap_or(0.0) > 0.0
                && (25.0..=90.0).contains(&r.get("load_pct").copied().unwrap_or(-1.0))
        })
        .collect();
    if batched_moderate.is_empty() {
        failures.push("no moderate-load batched rows in the current run".into());
    } else if !batched_moderate.iter().any(|r| r.get("mean_batch").copied().unwrap_or(0.0) > 1.0) {
        failures.push(
            "cross-request batching is dead: no moderate-load batched row has mean_batch > 1"
                .into(),
        );
    } else {
        report.push("batching alive: a moderate-load row has mean_batch > 1".into());
    }

    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(u64, u64, f64, f64, f64, f64)]) -> BenchDoc {
        // (window_us, load_pct, p50, p99, mean_batch, completed)
        BenchDoc {
            experiment: "serve".into(),
            rows: rows
                .iter()
                .map(|&(w, l, p50, p99, mb, c)| {
                    let mut m = BTreeMap::new();
                    m.insert("window_us".into(), w as f64);
                    m.insert("load_pct".into(), l as f64);
                    m.insert("p50_s".into(), p50);
                    m.insert("p99_s".into(), p99);
                    m.insert("mean_batch".into(), mb);
                    m.insert("completed".into(), c);
                    m
                })
                .collect(),
        }
    }

    #[test]
    fn parser_round_trips_our_documents() {
        let text = crate::output::json_document(
            "serve",
            vec![crate::output::JsonObject::new()
                .u64("window_us", 200)
                .u64("load_pct", 50)
                .f64("p99_s", 0.00125)
                .str("note", "a \"quoted\"\nvalue")],
        );
        let parsed = parse_document(&text).expect("parse");
        assert_eq!(parsed.experiment, "serve");
        assert_eq!(parsed.rows.len(), 1);
        assert_eq!(parsed.rows[0]["window_us"], 200.0);
        assert_eq!(parsed.rows[0]["p99_s"], 0.00125);
        assert!(!parsed.rows[0].contains_key("note"), "strings are not numeric fields");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_document("{").is_err());
        assert!(parse_document("[1,2]").is_err());
        assert!(parse_document("{\"rows\":[,]}").is_err());
        assert!(parse_document("{} trailing").is_err());
    }

    #[test]
    fn parser_preserves_multibyte_strings() {
        // Raw UTF-8 passes through byte-for-byte...
        let doc = parse_document("{\"experiment\":\"µs — latency\",\"rows\":[]}").expect("parse");
        assert_eq!(doc.experiment, "µs — latency");
        // ...and \u escapes decode, including surrogate pairs.
        let doc = parse_document("{\"experiment\":\"\\u00b5s \\uD83D\\uDE00\",\"rows\":[]}")
            .expect("parse");
        assert_eq!(doc.experiment, "µs 😀");
        // Unpaired surrogates are rejected rather than silently mangled.
        assert!(parse_document("{\"experiment\":\"\\uD83D\",\"rows\":[]}").is_err());
        assert!(parse_document("{\"experiment\":\"\\uDE00\",\"rows\":[]}").is_err());
    }

    #[test]
    fn identical_runs_pass() {
        let base = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 8e-5, 4e-4, 2.5, 60.0)]);
        let report = check_serve(&base, &base).expect("identical run must pass");
        assert!(report.iter().any(|l| l.contains("within limit")));
    }

    #[test]
    fn noise_within_bands_passes_but_regressions_fail() {
        let base = doc(&[(200, 50, 1e-4, 5e-4, 2.0, 60.0)]);
        // 3× slower: inside the generous band.
        let noisy = doc(&[(200, 50, 3e-4, 1.5e-3, 2.0, 60.0)]);
        assert!(check_serve(&noisy, &base).is_ok());
        // 10× slower p99 past the absolute slack: a real regression.
        let slow = doc(&[(200, 50, 1e-4, 5e-2, 2.0, 60.0)]);
        let failures = check_serve(&slow, &base).expect_err("must fail");
        assert!(failures.iter().any(|f| f.contains("p99_s regressed")), "{failures:?}");
    }

    #[test]
    fn steady_state_allocations_fail_the_gate_when_counted() {
        let base = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-4, 5e-4, 2.0, 60.0)]);
        let with_allocs = |value: f64| {
            let mut d = base.clone();
            for row in &mut d.rows {
                row.insert("steady_allocs_per_lookup".into(), value);
            }
            d
        };
        // Counting off (-1 sentinel): not gated.
        assert!(check_serve(&with_allocs(-1.0), &base).is_ok());
        // Counting on and clean: passes with a report line.
        let report = check_serve(&with_allocs(0.0), &base).expect("zero allocs must pass");
        assert!(report.iter().any(|l| l.contains("zero-alloc")), "{report:?}");
        // Counting on and dirty: fails.
        let failures = check_serve(&with_allocs(0.25), &base).expect_err("allocs must fail");
        assert!(failures.iter().any(|f| f.contains("allocs/lookup")), "{failures:?}");
    }

    fn tenant_row(
        window: u64,
        load: u64,
        tenant: i64,
        weight: u64,
        completed: f64,
        shed: f64,
    ) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        m.insert("window_us".into(), window as f64);
        m.insert("load_pct".into(), load as f64);
        m.insert("tenant".into(), tenant as f64);
        m.insert("tenant_weight".into(), weight as f64);
        m.insert("completed".into(), completed);
        m.insert("shed".into(), shed);
        m.insert("p50_s".into(), 1e-4);
        m.insert("p99_s".into(), 5e-4);
        m.insert("mean_batch".into(), 2.0);
        m
    }

    #[test]
    fn weighted_tenant_domination_is_gated() {
        let mut base = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-4, 5e-4, 2.5, 60.0)]);
        base.rows.push(tenant_row(200, 300, 1, 9, 900.0, 100.0));
        base.rows.push(tenant_row(200, 300, 2, 1, 110.0, 890.0));
        // The healthy document passes and reports the QoS line.
        let report = check_serve(&base, &base).expect("healthy tenant scenario must pass");
        assert!(report.iter().any(|l| l.contains("tenant QoS")), "{report:?}");

        // An inverted scheduler (light tenant completing more) fails.
        let mut inverted = base.clone();
        inverted.rows.pop();
        inverted.rows.pop();
        inverted.rows.push(tenant_row(200, 300, 1, 9, 120.0, 880.0));
        inverted.rows.push(tenant_row(200, 300, 2, 1, 500.0, 500.0));
        let failures = check_serve(&inverted, &base).expect_err("inverted weights must fail");
        assert!(failures.iter().any(|f| f.contains("weighted-domination")), "{failures:?}");

        // Equal shares (weights ignored) also fail the domination floor.
        let mut flat = base.clone();
        flat.rows.pop();
        flat.rows.pop();
        flat.rows.push(tenant_row(200, 300, 1, 9, 500.0, 500.0));
        flat.rows.push(tenant_row(200, 300, 2, 1, 495.0, 505.0));
        let failures = check_serve(&flat, &base).expect_err("flat shares must fail");
        assert!(failures.iter().any(|f| f.contains("weighted-domination")), "{failures:?}");

        // A scenario that never sheds is not an overload scenario.
        let mut idle = base.clone();
        idle.rows.pop();
        idle.rows.pop();
        idle.rows.push(tenant_row(200, 300, 1, 9, 900.0, 0.0));
        idle.rows.push(tenant_row(200, 300, 2, 1, 100.0, 0.0));
        let failures = check_serve(&idle, &base).expect_err("shedless scenario must fail");
        assert!(failures.iter().any(|f| f.contains("shed nothing")), "{failures:?}");

        // A lost tenant row trips the scenario-size check.
        let mut lone = base.clone();
        lone.rows.pop();
        let failures = check_serve(&lone, &base).expect_err("lone tenant row must fail");
        assert!(failures.iter().any(|f| f.contains("only 1 row")), "{failures:?}");
    }

    fn drift_row(
        slo_on: u64,
        tenant: i64,
        protected: u64,
        budget: f64,
        recent_p99: f64,
        shed_slo: f64,
        shed_lane_full: f64,
    ) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        m.insert("window_us".into(), 200.0);
        m.insert("load_pct".into(), 400.0);
        m.insert("slo_on".into(), slo_on as f64);
        m.insert("tenant".into(), tenant as f64);
        m.insert("protected".into(), protected as f64);
        m.insert("slo_p99_s".into(), budget);
        m.insert("p99_recent_s".into(), recent_p99);
        m.insert("recent_count".into(), 400.0);
        m.insert("shed_slo".into(), shed_slo);
        m.insert("shed_lane_full".into(), shed_lane_full);
        m.insert("shed_quota".into(), 0.0);
        m.insert("shed".into(), shed_slo + shed_lane_full);
        m.insert("completed".into(), 500.0);
        m.insert("p50_s".into(), 1e-3);
        m.insert("p99_s".into(), 1e-2);
        m
    }

    /// A healthy serve-drift quartet: on-arm protected under budget with
    /// the offender SLO-shed, off-arm protected blown with no SLO sheds.
    fn healthy_drift_rows() -> Vec<BTreeMap<String, f64>> {
        vec![
            drift_row(1, 1, 1, 0.15, 0.004, 0.0, 10.0),
            drift_row(1, 2, 0, 0.01, 0.002, 4_000.0, 500.0),
            drift_row(0, 1, 1, 0.15, 0.450, 0.0, 2_000.0),
            drift_row(0, 2, 0, 0.01, 0.030, 0.0, 3_000.0),
        ]
    }

    #[test]
    fn slo_drift_claims_are_gated() {
        let mut base = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-4, 5e-4, 2.5, 60.0)]);
        base.rows.extend(healthy_drift_rows());
        let report = check_serve(&base, &base).expect("healthy drift rows must pass");
        assert!(report.iter().filter(|l| l.contains("serve-drift")).count() == 2, "{report:?}");

        // The controller failing to protect (on-arm protected over
        // budget) fails the gate.
        let mut unprotected = base.clone();
        unprotected.rows[2].insert("p99_recent_s".into(), 0.3);
        let failures = check_serve(&unprotected, &base).expect_err("blown on-arm must fail");
        assert!(failures.iter().any(|f| f.contains("not protecting")), "{failures:?}");

        // A vacuously-met SLO (protected tenant locked out, empty window)
        // fails: the promise is low latency on LIVE traffic.
        let mut vacuous = base.clone();
        vacuous.rows[2].insert("recent_count".into(), 0.0);
        let failures = check_serve(&vacuous, &base).expect_err("empty window must fail");
        assert!(failures.iter().any(|f| f.contains("live traffic")), "{failures:?}");

        // A toothless scenario (off-arm under budget) fails too.
        let mut toothless = base.clone();
        toothless.rows[4].insert("p99_recent_s".into(), 0.01);
        let failures = check_serve(&toothless, &base).expect_err("soft off-arm must fail");
        assert!(failures.iter().any(|f| f.contains("no longer demonstrates")), "{failures:?}");

        // The on arm must actually shed the offender via the breaker.
        let mut untripped = base.clone();
        untripped.rows[3].insert("shed_slo".into(), 0.0);
        untripped.rows[3].insert("shed".into(), 500.0);
        untripped.rows[3].insert("shed_lane_full".into(), 500.0);
        let failures = check_serve(&untripped, &base).expect_err("untripped breaker must fail");
        assert!(failures.iter().any(|f| f.contains("never SLO-shed")), "{failures:?}");

        // SLO sheds with no controller registered are a contamination bug.
        let mut leaky = base.clone();
        leaky.rows[5].insert("shed_slo".into(), 7.0);
        leaky.rows[5].insert("shed".into(), 3_007.0);
        let failures = check_serve(&leaky, &base).expect_err("leaky off arm must fail");
        assert!(failures.iter().any(|f| f.contains("no controller")), "{failures:?}");

        // A breakdown that does not partition the aggregate is caught.
        let mut unbalanced = base.clone();
        unbalanced.rows[2].insert("shed".into(), 9_999.0);
        let failures = check_serve(&unbalanced, &base).expect_err("bad breakdown must fail");
        assert!(failures.iter().any(|f| f.contains("does not partition")), "{failures:?}");

        // Losing an arm entirely is caught.
        let mut lone = base.clone();
        lone.rows.truncate(4);
        let failures = check_serve(&lone, &base).expect_err("missing arm must fail");
        assert!(failures.iter().any(|f| f.contains("missing its slo-off arm")), "{failures:?}");
    }

    #[test]
    fn trace_overhead_is_gated_against_the_untraced_twin() {
        let mut base = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-4, 5e-4, 2.5, 60.0)]);
        let traced_row = |p99: f64| {
            let mut m = BTreeMap::new();
            m.insert("window_us".into(), 200.0);
            m.insert("load_pct".into(), 50.0);
            m.insert("traced".into(), 1.0);
            m.insert("p50_s".into(), 1e-4);
            m.insert("p99_s".into(), p99);
            m.insert("mean_batch".into(), 2.5);
            m.insert("completed".into(), 60.0);
            m
        };
        base.rows.push(traced_row(6e-4));
        // A traced row inside the twin's band passes and reports it.
        let report = check_serve(&base, &base).expect("cheap tracing must pass");
        assert!(report.iter().any(|l| l.contains("trace overhead")), "{report:?}");

        // A traced p99 blowing past the twin's band fails even when the
        // baseline agrees (the comparison is within the current run).
        let mut heavy = base.clone();
        heavy.rows.pop();
        heavy.rows.push(traced_row(5e-2));
        let failures = check_serve(&heavy, &heavy).expect_err("expensive tracing must fail");
        assert!(failures.iter().any(|f| f.contains("no longer cheap")), "{failures:?}");

        // A traced row with no matched untraced operating point fails.
        let mut orphan = base.clone();
        orphan.rows[2].insert("load_pct".into(), 75.0);
        let failures = check_serve(&orphan, &orphan).expect_err("orphan traced row must fail");
        assert!(failures.iter().any(|f| f.contains("no matched untraced")), "{failures:?}");
    }

    #[test]
    fn protocol_overhead_is_gated_against_the_in_process_twin() {
        // In-process twin p99 is 2 ms, so the socket budget is
        // 2e-3 × NET_TOLERANCE_RATIO + NET_SCHED_SLACK_S = 32.3 ms.
        let mut base = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-3, 2e-3, 2.5, 60.0)]);
        let net_row = |p99: f64| {
            let mut m = BTreeMap::new();
            m.insert("window_us".into(), 200.0);
            m.insert("load_pct".into(), 50.0);
            m.insert("transport".into(), 1.0);
            m.insert("p50_s".into(), 1.2e-3);
            m.insert("p99_s".into(), p99);
            m.insert("mean_batch".into(), 2.5);
            m.insert("completed".into(), 60.0);
            m
        };
        base.rows.push(net_row(2.2e-3));
        // A socket row inside the budget passes and reports it.
        let report = check_serve(&base, &base).expect("cheap wire must pass");
        assert!(report.iter().any(|l| l.contains("protocol overhead")), "{report:?}");

        // A socket p99 past the budget fails even when the baseline
        // agrees — the twin comes from the same run, and the budget is
        // much tighter than the general regression band.
        let mut slow = base.clone();
        slow.rows.pop();
        slow.rows.push(net_row(40e-3));
        let failures = check_serve(&slow, &slow).expect_err("expensive wire must fail");
        assert!(failures.iter().any(|f| f.contains("the wire is no longer cheap")), "{failures:?}");

        // A socket row with no in-process twin at its operating point
        // fails: the budget is unmeasurable without one.
        let mut orphan = base.clone();
        orphan.rows[2].insert("load_pct".into(), 75.0);
        let failures = check_serve(&orphan, &orphan).expect_err("orphan socket row must fail");
        assert!(failures.iter().any(|f| f.contains("no matched in-process")), "{failures:?}");
    }

    fn restart_row(
        restart: u64,
        p99_first: f64,
        hit_rate_first: f64,
        pre: f64,
        restored: f64,
        replayed: f64,
        rehydrated: f64,
    ) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        m.insert("window_us".into(), 50.0);
        m.insert("load_pct".into(), 100.0);
        m.insert("restart".into(), restart as f64);
        m.insert("p99_first_s".into(), p99_first);
        m.insert("hit_rate_first".into(), hit_rate_first);
        m.insert("bytes_written_pre".into(), pre);
        m.insert("bytes_written_restored".into(), restored);
        m.insert("replayed_records".into(), replayed);
        m.insert("rehydrated_keys".into(), rehydrated);
        m.insert("completed".into(), 400.0);
        m.insert("p50_s".into(), 1e-3);
        m.insert("p99_s".into(), 1e-2);
        m
    }

    /// A healthy serve-restart pair: warm arm decisively faster in the
    /// first window, accounting restored exactly, cold arm untouched.
    fn healthy_restart_rows() -> Vec<BTreeMap<String, f64>> {
        vec![
            restart_row(1, 2e-3, 0.9, 1e6, 1e6, 10.0, 512.0),
            restart_row(0, 2e-2, 0.1, 1e6, 0.0, 0.0, 0.0),
        ]
    }

    #[test]
    fn warm_restart_claims_are_gated() {
        let mut base = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-4, 5e-4, 2.5, 60.0)]);
        base.rows.extend(healthy_restart_rows());
        let report = check_serve(&base, &base).expect("healthy restart rows must pass");
        assert!(report.iter().any(|l| l.contains("serve-restart")), "{report:?}");

        // A warm arm no faster than cold in the first window fails.
        let mut slow = base.clone();
        slow.rows[2].insert("p99_first_s".into(), 1.9e-2);
        let failures = check_serve(&slow, &base).expect_err("slow warm arm must fail");
        assert!(failures.iter().any(|f| f.contains("not decisively below")), "{failures:?}");

        // A warm arm hitting no better than cold fails.
        let mut missy = base.clone();
        missy.rows[2].insert("hit_rate_first".into(), 0.1);
        let failures = check_serve(&missy, &base).expect_err("missy warm arm must fail");
        assert!(failures.iter().any(|f| f.contains("not absorbing misses")), "{failures:?}");

        // Drive-write accounting that did not survive the restart fails.
        let mut lossy = base.clone();
        lossy.rows[2].insert("bytes_written_restored".into(), 0.0);
        let failures = check_serve(&lossy, &base).expect_err("lost accounting must fail");
        assert!(failures.iter().any(|f| f.contains("did not survive")), "{failures:?}");

        // A recovery that replayed/rehydrated nothing fails.
        let mut hollow = base.clone();
        hollow.rows[2].insert("rehydrated_keys".into(), 0.0);
        let failures = check_serve(&hollow, &base).expect_err("hollow recovery must fail");
        assert!(failures.iter().any(|f| f.contains("did not actually restore")), "{failures:?}");

        // A "cold" arm that restored state is contaminated.
        let mut leaky = base.clone();
        leaky.rows[3].insert("rehydrated_keys".into(), 5.0);
        let failures = check_serve(&leaky, &base).expect_err("contaminated cold arm must fail");
        assert!(failures.iter().any(|f| f.contains("not a cold start")), "{failures:?}");

        // Arms serving different traffic fails.
        let mut uneven = base.clone();
        uneven.rows[3].insert("completed".into(), 399.0);
        let failures = check_serve(&uneven, &base).expect_err("uneven arms must fail");
        assert!(failures.iter().any(|f| f.contains("identical traffic")), "{failures:?}");

        // Losing an arm is caught (drop the cold row from current AND
        // use a restart-free baseline so the row-match gate is not the
        // first to trip).
        let sweep_only = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-4, 5e-4, 2.5, 60.0)]);
        let mut lone = sweep_only.clone();
        lone.rows.push(restart_row(1, 2e-3, 0.9, 1e6, 1e6, 10.0, 512.0));
        let failures = check_serve(&lone, &lone).expect_err("missing cold arm must fail");
        assert!(
            failures.iter().any(|f| f.contains("exactly one warm and one cold")
                || f.contains("missing its cold arm")),
            "{failures:?}"
        );
    }

    fn rebudget_row(
        rebudget: u64,
        hit_pre: f64,
        hit_post: f64,
        p99_post: f64,
        applied: f64,
        moves: f64,
    ) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        m.insert("window_us".into(), 0.0);
        m.insert("load_pct".into(), 120.0);
        m.insert("rebudget".into(), rebudget as f64);
        m.insert("hit_rate_pre".into(), hit_pre);
        m.insert("hit_rate_post".into(), hit_post);
        m.insert("p99_pre_s".into(), 2e-3);
        m.insert("p99_post_s".into(), p99_post);
        m.insert("rebudget_applied".into(), applied);
        m.insert("partition_moves".into(), moves);
        m.insert("completed".into(), 1000.0);
        m.insert("p50_s".into(), 1e-3);
        m.insert("p99_s".into(), 1e-2);
        m
    }

    /// A healthy serve-rebudget pair: budget-on recovers its pre-drift
    /// hit rate with audit evidence, budget-off stays degraded.
    fn healthy_rebudget_rows() -> Vec<BTreeMap<String, f64>> {
        vec![
            rebudget_row(1, 0.85, 0.82, 3e-3, 4.0, 4.0),
            rebudget_row(0, 0.85, 0.12, 4e-2, 0.0, 0.0),
        ]
    }

    #[test]
    fn rebudget_claims_are_gated() {
        let mut base = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-4, 5e-4, 2.5, 60.0)]);
        base.rows.extend(healthy_rebudget_rows());
        let report = check_serve(&base, &base).expect("healthy rebudget rows must pass");
        assert!(report.iter().any(|l| l.contains("serve-rebudget")), "{report:?}");

        // A budget-on arm that fails to recover its pre-drift hit rate
        // fails the gate.
        let mut stranded = base.clone();
        stranded.rows[2].insert("hit_rate_post".into(), 0.4);
        let failures = check_serve(&stranded, &base).expect_err("unrecovered on arm must fail");
        assert!(failures.iter().any(|f| f.contains("not re-dividing")), "{failures:?}");

        // A budget-off arm that does not degrade means the scenario lost
        // its teeth.
        let mut toothless = base.clone();
        toothless.rows[3].insert("hit_rate_post".into(), 0.8);
        let failures = check_serve(&toothless, &base).expect_err("soft off arm must fail");
        assert!(failures.iter().any(|f| f.contains("no longer demonstrates")), "{failures:?}");

        // The on arm's post-drift p99 must sit under the off arm's.
        let mut slow = base.clone();
        slow.rows[2].insert("p99_post_s".into(), 5e-2);
        let failures = check_serve(&slow, &base).expect_err("slow on arm must fail");
        assert!(failures.iter().any(|f| f.contains("buying back the tail")), "{failures:?}");

        // A controller that never applied a re-partition fails.
        let mut inert = base.clone();
        inert.rows[2].insert("rebudget_applied".into(), 0.0);
        inert.rows[2].insert("partition_moves".into(), 0.0);
        let failures = check_serve(&inert, &base).expect_err("inert controller must fail");
        assert!(failures.iter().any(|f| f.contains("never acted")), "{failures:?}");

        // Applied moves without audit evidence also fail.
        let mut unaudited = base.clone();
        unaudited.rows[2].insert("partition_moves".into(), 0.0);
        let failures = check_serve(&unaudited, &base).expect_err("unaudited moves must fail");
        assert!(failures.iter().any(|f| f.contains("never acted")), "{failures:?}");

        // A budget-off arm that re-partitioned is contaminated.
        let mut leaky = base.clone();
        leaky.rows[3].insert("rebudget_applied".into(), 2.0);
        let failures = check_serve(&leaky, &base).expect_err("contaminated off arm must fail");
        assert!(failures.iter().any(|f| f.contains("controller-free")), "{failures:?}");

        // Arms serving different traffic fails.
        let mut uneven = base.clone();
        uneven.rows[3].insert("completed".into(), 999.0);
        let failures = check_serve(&uneven, &base).expect_err("uneven arms must fail");
        assert!(failures.iter().any(|f| f.contains("identical traffic")), "{failures:?}");

        // A cold cache in the pre-drift window fails both arms' warmup.
        let mut unwarmed = base.clone();
        unwarmed.rows[2].insert("hit_rate_pre".into(), 0.0);
        unwarmed.rows[2].insert("hit_rate_post".into(), 0.0);
        let failures = check_serve(&unwarmed, &base).expect_err("cold warmup must fail");
        assert!(failures.iter().any(|f| f.contains("not warming")), "{failures:?}");

        // Losing an arm is caught (restart-free baseline so the row-match
        // gate is not the first to trip).
        let sweep_only = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-4, 5e-4, 2.5, 60.0)]);
        let mut lone = sweep_only.clone();
        lone.rows.push(rebudget_row(1, 0.85, 0.82, 3e-3, 4.0, 4.0));
        let failures = check_serve(&lone, &lone).expect_err("missing off arm must fail");
        assert!(
            failures.iter().any(|f| f.contains("exactly one budget-on and one budget-off")
                || f.contains("missing its budget-off arm")),
            "{failures:?}"
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn relayout_row(
        relayout: u64,
        reads_pre: f64,
        reads_post: f64,
        p99_post: f64,
        applied: f64,
        moves: f64,
        rewritten: f64,
        bytes: f64,
    ) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        m.insert("window_us".into(), 0.0);
        m.insert("load_pct".into(), 130.0);
        m.insert("relayout".into(), relayout as f64);
        m.insert("reads_per_req_pre".into(), reads_pre);
        m.insert("reads_per_req_post".into(), reads_post);
        m.insert("p99_pre_s".into(), 5e-4);
        m.insert("p99_post_s".into(), p99_post);
        m.insert("relayout_applied".into(), applied);
        m.insert("layout_moves".into(), moves);
        m.insert("relayout_rewritten_blocks".into(), rewritten);
        m.insert("bytes_written".into(), bytes);
        m.insert("completed".into(), 1000.0);
        m.insert("p50_s".into(), 3e-4);
        m.insert("p99_s".into(), 2e-3);
        m
    }

    /// A healthy serve-relayout pair: relayout-on recovers its pre-drift
    /// device reads per request with rewrite and audit evidence,
    /// relayout-off stays degraded on the frozen layout.
    fn healthy_relayout_rows() -> Vec<BTreeMap<String, f64>> {
        vec![
            relayout_row(1, 30.0, 33.0, 5e-4, 9.0, 9.0, 310.0, 1.2e6),
            relayout_row(0, 118.0, 120.0, 1.6e-3, 0.0, 0.0, 0.0, 0.0),
        ]
    }

    #[test]
    fn relayout_claims_are_gated() {
        let mut base = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-4, 5e-4, 2.5, 60.0)]);
        base.rows.extend(healthy_relayout_rows());
        let report = check_serve(&base, &base).expect("healthy relayout rows must pass");
        assert!(report.iter().any(|l| l.contains("serve-relayout")), "{report:?}");

        // An on arm whose post-drift reads never recover fails the gate.
        let mut stranded = base.clone();
        stranded.rows[2].insert("reads_per_req_post".into(), 90.0);
        let failures = check_serve(&stranded, &base).expect_err("unrecovered on arm must fail");
        assert!(failures.iter().any(|f| f.contains("not re-packing")), "{failures:?}");

        // An off arm that is not decisively worse means the scenario
        // lost its teeth.
        let mut toothless = base.clone();
        toothless.rows[3].insert("reads_per_req_post".into(), 35.0);
        let failures = check_serve(&toothless, &base).expect_err("soft off arm must fail");
        assert!(failures.iter().any(|f| f.contains("no longer demonstrates")), "{failures:?}");

        // The on arm's post-drift p99 must stay within the tail band of
        // the off arm's.
        let mut slow = base.clone();
        slow.rows[2].insert("p99_post_s".into(), 5e-2);
        let failures = check_serve(&slow, &base).expect_err("slow on arm must fail");
        assert!(failures.iter().any(|f| f.contains("buying back the tail")), "{failures:?}");

        // A controller that never applied a re-layout fails.
        let mut inert = base.clone();
        inert.rows[2].insert("relayout_applied".into(), 0.0);
        inert.rows[2].insert("layout_moves".into(), 0.0);
        inert.rows[2].insert("relayout_rewritten_blocks".into(), 0.0);
        let failures = check_serve(&inert, &base).expect_err("inert controller must fail");
        assert!(failures.iter().any(|f| f.contains("never acted")), "{failures:?}");

        // Applied re-layouts without audit evidence also fail.
        let mut unaudited = base.clone();
        unaudited.rows[2].insert("layout_moves".into(), 0.0);
        let failures = check_serve(&unaudited, &base).expect_err("unaudited applies must fail");
        assert!(failures.iter().any(|f| f.contains("never acted")), "{failures:?}");

        // Rewrites that never show up as device write bytes fail.
        let mut free = base.clone();
        free.rows[2].insert("bytes_written".into(), 0.0);
        let failures = check_serve(&free, &base).expect_err("unbilled rewrites must fail");
        assert!(failures.iter().any(|f| f.contains("device rewrites")), "{failures:?}");

        // A relayout-off arm that rewrote anything is contaminated.
        let mut leaky = base.clone();
        leaky.rows[3].insert("relayout_rewritten_blocks".into(), 4.0);
        let failures = check_serve(&leaky, &base).expect_err("contaminated off arm must fail");
        assert!(failures.iter().any(|f| f.contains("controller-free")), "{failures:?}");

        // Arms serving different traffic fails.
        let mut uneven = base.clone();
        uneven.rows[3].insert("completed".into(), 999.0);
        let failures = check_serve(&uneven, &base).expect_err("uneven arms must fail");
        assert!(failures.iter().any(|f| f.contains("identical traffic")), "{failures:?}");

        // A tail window with no device reads at all fails: the scenario
        // is supposed to be device-bound.
        let mut idle = base.clone();
        idle.rows[2].insert("reads_per_req_pre".into(), 0.0);
        idle.rows[2].insert("reads_per_req_post".into(), 0.0);
        let failures = check_serve(&idle, &base).expect_err("deviceless scenario must fail");
        assert!(failures.iter().any(|f| f.contains("not exercising the device")), "{failures:?}");

        // Losing an arm is caught (relayout-free baseline so the
        // row-match gate is not the first to trip).
        let sweep_only = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-4, 5e-4, 2.5, 60.0)]);
        let mut lone = sweep_only.clone();
        lone.rows.push(relayout_row(1, 30.0, 33.0, 5e-4, 9.0, 9.0, 310.0, 1.2e6));
        let failures = check_serve(&lone, &lone).expect_err("missing off arm must fail");
        assert!(
            failures.iter().any(|f| f.contains("exactly one relayout-on and one relayout-off")
                || f.contains("missing its relayout-off arm")),
            "{failures:?}"
        );
    }

    #[test]
    fn dead_batching_and_missing_rows_fail() {
        let base = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-4, 5e-4, 2.0, 60.0)]);
        let unbatched = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0), (200, 50, 1e-4, 5e-4, 1.0, 60.0)]);
        let failures = check_serve(&unbatched, &base).expect_err("dead batching must fail");
        assert!(failures.iter().any(|f| f.contains("batching is dead")), "{failures:?}");
        let shrunk = doc(&[(0, 50, 1e-4, 5e-4, 1.0, 60.0)]);
        let failures = check_serve(&shrunk, &base).expect_err("missing rows must fail");
        assert!(failures.iter().any(|f| f.contains("sweep shrank")), "{failures:?}");
    }
}
