//! End-to-end experiment benches: each target regenerates one paper
//! artifact at Quick scale. Heavier figures get smaller sample counts; the
//! `repro` binary remains the canonical way to produce the artifacts at
//! Full scale.

use bandana_bench::experiments;
use bandana_bench::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

macro_rules! artifact_bench {
    ($fn_name:ident, $module:ident) => {
        fn $fn_name(c: &mut Criterion) {
            c.bench_function(stringify!($module), |b| {
                b.iter(|| experiments::$module::run(Scale::Quick));
            });
        }
    };
}

artifact_bench!(bench_tab01, tab01);
artifact_bench!(bench_fig03, fig03);
artifact_bench!(bench_fig04, fig04);
artifact_bench!(bench_fig10, fig10);
artifact_bench!(bench_fig12, fig12);
artifact_bench!(bench_fig13, fig13);

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tab01, bench_fig03, bench_fig04, bench_fig10, bench_fig12, bench_fig13
}
criterion_main!(benches);
