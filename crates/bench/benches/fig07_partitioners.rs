//! Criterion bench regenerating Figure 7 directly: partitioner runtimes.
//!
//! (a) flat K-means runtime vs cluster count;
//! (b) two-stage K-means runtime vs total sub-clusters;
//! (c) SHP runtime on a paper-shaped table.

use bandana_partition::{
    kmeans, social_hash_partition, two_stage_kmeans, KMeansConfig, ShpConfig, TwoStageConfig,
};
use bandana_trace::{EmbeddingTable, ModelSpec, TopicModel, TraceGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fixture() -> (Vec<f32>, usize) {
    let spec = ModelSpec::paper_scaled(10_000);
    let table = 3usize; // the paper benches table 4
    let topics = TopicModel::new(&spec.tables[table], 1);
    let emb = EmbeddingTable::synthesize(spec.tables[table].num_vectors, spec.dim, &topics, 2);
    (emb.data().to_vec(), spec.dim)
}

fn bench_flat_kmeans(c: &mut Criterion) {
    let (data, dim) = fixture();
    let mut group = c.benchmark_group("fig07a_flat_kmeans");
    for k in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| kmeans(&data, dim, &KMeansConfig { k, iterations: 10, seed: 1 }));
        });
    }
    group.finish();
}

fn bench_two_stage(c: &mut Criterion) {
    let (data, dim) = fixture();
    let mut group = c.benchmark_group("fig07b_two_stage");
    for total in [64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |b, &total| {
            b.iter(|| {
                two_stage_kmeans(
                    &data,
                    dim,
                    &TwoStageConfig {
                        first_stage_k: 8,
                        total_subclusters: total,
                        iterations: 10,
                        seed: 1,
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_shp(c: &mut Criterion) {
    let spec = ModelSpec::paper_scaled(10_000);
    let mut generator = TraceGenerator::new(&spec, 5);
    let train = generator.generate_requests(500);
    let table = 3usize;
    let queries: Vec<Vec<u32>> = train.table_queries(table).map(|q| q.to_vec()).collect();
    c.bench_function("fig07c_shp_table4", |b| {
        b.iter(|| {
            social_hash_partition(
                spec.tables[table].num_vectors,
                queries.iter().map(|q| q.as_slice()),
                &ShpConfig { block_capacity: 32, iterations: 8, seed: 1, parallel_depth: 2 },
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_flat_kmeans, bench_two_stage, bench_shp
}
criterion_main!(benches);
