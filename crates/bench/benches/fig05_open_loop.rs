//! Criterion bench for the Figure 5 open-loop simulation: latency under
//! offered load for the baseline policy vs 100% effective bandwidth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvm_sim::{OpenLoopSim, QueueModel};

fn bench_open_loop(c: &mut Criterion) {
    let model = QueueModel::optane();
    let mut group = c.benchmark_group("fig05_open_loop");
    for frac in [25u32, 50, 75, 95] {
        let offered = model.max_bandwidth_bps * f64::from(frac) / 100.0;
        group.bench_with_input(BenchmarkId::from_parameter(frac), &offered, |b, &offered| {
            b.iter(|| OpenLoopSim::new(model, 7).run(offered, 5_000));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_open_loop
}
criterion_main!(benches);
