//! Criterion bench for the Figure 2 device simulation: closed-loop 4 KB
//! random reads at queue depths 1–8.

use bandana_bench::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvm_sim::{sim::closed_loop_sim, QueueModel};

fn bench_closed_loop(c: &mut Criterion) {
    let model = QueueModel::optane();
    let mut group = c.benchmark_group("fig02_closed_loop");
    for qd in [1u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(qd), &qd, |b, &qd| {
            b.iter(|| closed_loop_sim(&model, qd, 5_000, 42));
        });
    }
    group.finish();
}

fn bench_full_figure(c: &mut Criterion) {
    c.bench_function("fig02_full", |b| {
        b.iter(|| bandana_bench::experiments::fig02::run(Scale::Quick));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_closed_loop, bench_full_figure
}
criterion_main!(benches);
