//! Microbenchmarks of the caching data path: segmented LRU operations, the
//! prefetch simulator, stack distances, and miniature-cache overhead (the
//! paper's claim that tuning is lightweight, §4.3.3).

use bandana_cache::{AdmissionPolicy, MiniatureCacheSet, PrefetchCacheSim, SegmentedLru};
use bandana_partition::{AccessFrequency, BlockLayout};
use bandana_trace::StackDistances;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn stream(n: u32, len: usize) -> Vec<u32> {
    let mut x = 88172645463325252u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Mild skew: square the fraction so low ids are hotter.
            let f = (x >> 11) as f64 / (1u64 << 53) as f64;
            ((f * f) * n as f64) as u32 % n
        })
        .collect()
}

fn bench_lru(c: &mut Criterion) {
    let keys = stream(10_000, 100_000);
    let mut group = c.benchmark_group("lru_ops");
    group.throughput(Throughput::Elements(keys.len() as u64));
    for segments in [1usize, 16] {
        group.bench_with_input(
            BenchmarkId::new("insert_get", segments),
            &segments,
            |b, &segments| {
                b.iter(|| {
                    let mut lru = SegmentedLru::new(4096, segments);
                    for &k in &keys {
                        if lru.get(k as u64).is_none() {
                            lru.insert(k as u64, (), 0.0);
                        }
                    }
                    lru.len()
                });
            },
        );
    }
    group.finish();
}

fn bench_prefetch_sim(c: &mut Criterion) {
    let n = 20_000u32;
    let keys = stream(n, 100_000);
    let layout = BlockLayout::random(n, 32, 1);
    let freq = AccessFrequency::zeros(n);
    let mut group = c.benchmark_group("prefetch_sim");
    group.throughput(Throughput::Elements(keys.len() as u64));
    for (name, policy) in [
        ("baseline", AdmissionPolicy::None),
        ("prefetch_all", AdmissionPolicy::All { position: 0.0 }),
        ("threshold", AdmissionPolicy::Threshold { t: 5 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = PrefetchCacheSim::new(&layout, 2_000, policy, freq.clone());
                for &v in &keys {
                    sim.lookup(v);
                }
                sim.metrics().hits
            });
        });
    }
    group.finish();
}

fn bench_stack_distances(c: &mut Criterion) {
    let keys = stream(50_000, 200_000);
    let mut group = c.benchmark_group("stack_distances");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("fenwick", |b| {
        b.iter(|| {
            let mut sd = StackDistances::with_capacity(keys.len());
            sd.access_all(keys.iter().map(|&k| k as u64));
            sd.compulsory_misses()
        });
    });
    group.finish();
}

fn bench_mini_cache_overhead(c: &mut Criterion) {
    // The paper's point: a 0.1%-sampled miniature cache set adds negligible
    // work per lookup compared to serving the lookup itself.
    let n = 20_000u32;
    let keys = stream(n, 100_000);
    let layout = BlockLayout::random(n, 32, 2);
    let freq = AccessFrequency::zeros(n);
    let mut group = c.benchmark_group("mini_cache_observe");
    group.throughput(Throughput::Elements(keys.len() as u64));
    for rate in [0.1f64, 0.01] {
        group.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, &rate| {
            b.iter(|| {
                let mut minis =
                    MiniatureCacheSet::new(&layout, &freq, 2_000, rate, &[5, 10, 15, 20], 1);
                for &v in &keys {
                    minis.observe(v);
                }
                minis.best_threshold()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lru, bench_prefetch_sim, bench_stack_distances, bench_mini_cache_overhead
}
criterion_main!(benches);
