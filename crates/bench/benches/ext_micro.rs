//! Microbenchmarks for the extension modules: eviction policies, MRC
//! estimators, and the concurrent store's parallel serving path.

use bandana_cache::{AdmissionPolicy, PolicyKind, PolicySim};
use bandana_core::{BandanaConfig, BandanaStore};
use bandana_partition::{AccessFrequency, BlockLayout};
use bandana_trace::{AetModel, EmbeddingTable, ModelSpec, Shards, StackDistances, TraceGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn stream(n: u32, len: usize) -> Vec<u32> {
    let mut x = 88172645463325252u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let f = (x >> 11) as f64 / (1u64 << 53) as f64;
            ((f * f) * n as f64) as u32 % n
        })
        .collect()
}

/// Lookup throughput of every eviction policy on the same skewed stream.
fn bench_eviction_policies(c: &mut Criterion) {
    let n = 20_000u32;
    let keys = stream(n, 100_000);
    let layout = BlockLayout::random(n, 32, 1);
    let freq = AccessFrequency::zeros(n);
    let mut group = c.benchmark_group("eviction_policies");
    group.throughput(Throughput::Elements(keys.len() as u64));
    for kind in PolicyKind::ALL {
        group.bench_with_input(BenchmarkId::new("lookup", kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut sim = PolicySim::new(
                    &layout,
                    2048,
                    AdmissionPolicy::Threshold { t: 2 },
                    freq.clone(),
                    kind,
                );
                for &v in &keys {
                    sim.lookup(v);
                }
                sim.metrics().hits
            });
        });
    }
    group.finish();
}

/// Cost of building an MRC: exact stack distances vs SHARDS vs AET.
fn bench_mrc_estimators(c: &mut Criterion) {
    let keys: Vec<u64> = stream(50_000, 200_000).into_iter().map(u64::from).collect();
    let mut group = c.benchmark_group("mrc_estimators");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("exact_mattson", |b| {
        b.iter(|| {
            let mut sd = StackDistances::with_capacity(keys.len());
            sd.access_all(keys.iter().copied());
            sd.hit_rate_at(4096)
        });
    });
    for rate in [0.1f64, 0.01] {
        group.bench_with_input(
            BenchmarkId::new("shards", format!("{}%", rate * 100.0)),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    let mut s = Shards::new(rate, 7);
                    s.access_all(keys.iter().copied());
                    s.hit_rate_at(4096)
                });
            },
        );
    }
    group.bench_function("shards_max_1k", |b| {
        b.iter(|| {
            let mut s = Shards::fixed_size(1024, 7);
            s.access_all(keys.iter().copied());
            s.hit_rate_at(4096)
        });
    });
    group.bench_function("aet", |b| {
        b.iter(|| {
            let mut a = AetModel::new();
            a.access_all(keys.iter().copied());
            a.miss_rate_at(4096)
        });
    });
    group.finish();
}

/// Parallel serving throughput of the concurrent store at 1/2/4 workers.
fn bench_concurrent_store(c: &mut Criterion) {
    let spec = ModelSpec::paper_scaled(10_000);
    let mut generator = TraceGenerator::new(&spec, 0xBA9DA9A);
    let training = generator.generate_requests(400);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let serving = generator.generate_requests(400);

    let mut group = c.benchmark_group("concurrent_store");
    group.sample_size(10);
    group.throughput(Throughput::Elements(serving.total_lookups() as u64));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("serve_trace", threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || {
                        BandanaStore::build(
                            &spec,
                            &embeddings,
                            &training,
                            BandanaConfig::default().with_cache_vectors(1024),
                        )
                        .expect("build store")
                        .into_concurrent()
                    },
                    |store| {
                        store.serve_trace_parallel(&serving, threads).expect("serve");
                        store.total_metrics().lookups
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_eviction_policies, bench_mrc_estimators, bench_concurrent_store);
criterion_main!(benches);
