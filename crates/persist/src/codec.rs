//! A tiny cursor over little-endian binary payloads.
//!
//! Every read is checked; `None` means the payload ran short, which the
//! callers (WAL replay, snapshot load) treat as corruption.

/// A checked little-endian reader.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Reader { data }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.data.len() < n {
            return None;
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Some(head)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self) -> Option<i64> {
        self.take(8).map(|b| i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self) -> Option<f64> {
        self.take(8).map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Whether the payload was consumed exactly.
    pub(crate) fn done(&self) -> bool {
        self.data.is_empty()
    }
}
