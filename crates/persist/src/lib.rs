//! # bandana-persist — crash-safe durability and warm restart
//!
//! A restart of the serving engine used to be a total cold start: the
//! DRAM cache contents, tuned admission thresholds, endurance counters,
//! and every live-registered tenant evaporated with the process. That
//! inverts the premise of the system this repo reproduces — NVM holds
//! the embeddings *durably* precisely so DRAM only holds rebuildable
//! performance state — but "rebuildable" is worthless if nobody rebuilds
//! it. This crate makes restart an engineered path:
//!
//! * a **write-ahead log** ([`Wal`] / [`WalRecord`] / [`replay`]) for
//!   control-state mutations — the table catalog and every tenant
//!   registration, including live `POST /tenants` ones — with
//!   length-prefixed CRC-32 frames, batched fsync, and a replay that
//!   truncates at the first torn or corrupt record and is idempotent on
//!   re-replay;
//! * **versioned snapshots** ([`SnapshotData`] / [`write_snapshot`] /
//!   [`load_latest`]) of the warm state: per-table cache keys with
//!   demand/prefetch origin bits (payloads stay on NVM), admission
//!   policies and shadow multipliers, and per-shard endurance counters —
//!   written to a temp file and installed atomically via
//!   fsync + rename + directory fsync, with newest-first fallback past
//!   corrupt files;
//! * a **combined store** ([`Persistence`] / [`PersistConfig`]) the
//!   serving engine opens once: it loads the latest valid snapshot,
//!   replays (and heals) the WAL, and then accepts appends and periodic
//!   snapshot installs;
//! * **crash-point fault injection** ([`FaultPlan`] / [`CrashPoint`] /
//!   [`flip_bit`]) so every recovery invariant is provable under torn
//!   appends, half-written snapshots, a crash between write and rename,
//!   and silent bit flips.
//!
//! The on-disk format tables live in the [`wal`] and [`snapshot`] module
//! docs. The CRC is hand-rolled ([`crc32`]) because this workspace
//! vendors all external dependencies.
//!
//! ## Layout of a persist directory
//!
//! ```text
//! <dir>/wal.log            the write-ahead log (control mutations)
//! <dir>/snapshot-<N>.bin   installed snapshots, N increasing
//! <dir>/snapshot-<N>.bin.tmp  crash leftovers, ignored by recovery
//! ```
//!
//! ## Example: the full cycle
//!
//! ```
//! use bandana_persist::{PersistConfig, Persistence, SnapshotData, WalRecord};
//!
//! # fn main() -> Result<(), bandana_persist::PersistError> {
//! let dir = std::env::temp_dir().join(format!("bandana-persist-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // First boot: nothing on disk.
//! let (persist, opened) = Persistence::open(&PersistConfig::new(&dir))?;
//! assert!(opened.snapshot.is_none());
//! assert!(opened.wal.records.is_empty());
//! persist.append(&WalRecord::TenantRegistered {
//!     id: 7, weight: 9, class: 1, quota: -1, slo_p99_ms: -1,
//! })?;
//! persist.sync()?;
//! persist.install_snapshot(&SnapshotData {
//!     written_at_ms: 0, tick: 3, shard_endurance_bytes: vec![4096], tables: vec![],
//! })?;
//! drop(persist);
//!
//! // Restart: snapshot plus the replayed registration come back.
//! let (_persist, opened) = Persistence::open(&PersistConfig::new(&dir))?;
//! assert_eq!(opened.snapshot.unwrap().1.tick, 3);
//! assert_eq!(opened.wal.records.len(), 1);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod crc;
mod error;
pub mod faults;
pub mod snapshot;
pub mod wal;

pub use crc::crc32;
pub use error::PersistError;
pub use faults::{flip_bit, CrashPoint, FaultPlan};
pub use snapshot::{
    load_latest, prune_snapshots, snapshot_path, write_snapshot, KeyOrigin, SnapshotData,
    TableSnapshot, MIN_SNAPSHOT_VERSION, SNAPSHOT_VERSION,
};
pub use wal::{replay, Wal, WalRecord, WalReplay, MAX_RECORD_BYTES};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Configuration for a persist directory, consumed by
/// [`Persistence::open`] (usually via the serving engine's
/// `ServeConfig::with_persist`).
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding the WAL and snapshots (created if missing).
    pub dir: PathBuf,
    /// Fsync the WAL once per this many appends (1 = every append).
    pub fsync_every: usize,
    /// Take a snapshot every N control-bus ticks (0 disables periodic
    /// snapshots; explicit snapshots still work).
    pub snapshot_every_ticks: u64,
    /// How many installed snapshots each install leaves on disk
    /// (newest-first; older ones are garbage-collected). Clamped to a
    /// minimum of 2 so the corrupt-newest fallback always has a
    /// predecessor.
    pub keep_snapshots: usize,
    /// Crash-point injection plan (armed only by tests).
    pub faults: Arc<FaultPlan>,
}

impl PersistConfig {
    /// Defaults: fsync every 8 appends, snapshot every 50 ticks, keep
    /// the newest 2 snapshots, no faults armed.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            fsync_every: 8,
            snapshot_every_ticks: 50,
            keep_snapshots: 2,
            faults: FaultPlan::none(),
        }
    }

    /// Sets the WAL fsync batching interval.
    pub fn with_fsync_every(mut self, every: usize) -> Self {
        self.fsync_every = every.max(1);
        self
    }

    /// Sets the periodic snapshot cadence in control-bus ticks (0
    /// disables periodic snapshots).
    pub fn with_snapshot_every_ticks(mut self, ticks: u64) -> Self {
        self.snapshot_every_ticks = ticks;
        self
    }

    /// Sets how many installed snapshots to retain (clamped to ≥ 2).
    pub fn with_keep_snapshots(mut self, keep: usize) -> Self {
        self.keep_snapshots = keep.max(2);
        self
    }

    /// Installs a crash plan (tests only).
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }
}

/// What [`Persistence::open`] found on disk.
#[derive(Debug)]
pub struct Opened {
    /// The newest valid snapshot, if any, with its sequence number.
    pub snapshot: Option<(u64, SnapshotData)>,
    /// The WAL replay (the log is already healed of any corrupt tail).
    pub wal: WalReplay,
}

/// An open persist directory: the WAL for appends plus the snapshot
/// writer. Shared between the engine's control bus (periodic snapshots),
/// the admin plane (live tenant registrations), and recovery.
#[derive(Debug)]
pub struct Persistence {
    dir: PathBuf,
    wal: Mutex<Wal>,
    next_snapshot_seq: AtomicU64,
    snapshot_every_ticks: u64,
    keep_snapshots: usize,
    faults: Arc<FaultPlan>,
}

impl Persistence {
    /// Opens (creating if needed) the persist directory: loads the
    /// newest valid snapshot, replays and heals the WAL, and opens it
    /// for appending.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open(config: &PersistConfig) -> Result<(Persistence, Opened), PersistError> {
        std::fs::create_dir_all(&config.dir)?;
        let snapshot = load_latest(&config.dir)?;
        let (replayed, wal) = Wal::recover(
            &config.dir.join("wal.log"),
            config.fsync_every,
            Arc::clone(&config.faults),
        )?;
        let next_seq = snapshot.as_ref().map_or(1, |(seq, _)| seq + 1);
        let persistence = Persistence {
            dir: config.dir.clone(),
            wal: Mutex::new(wal),
            next_snapshot_seq: AtomicU64::new(next_seq),
            snapshot_every_ticks: config.snapshot_every_ticks,
            keep_snapshots: config.keep_snapshots,
            faults: Arc::clone(&config.faults),
        };
        Ok((persistence, Opened { snapshot, wal: replayed }))
    }

    /// The persist directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured periodic snapshot cadence (ticks; 0 = disabled).
    pub fn snapshot_every_ticks(&self) -> u64 {
        self.snapshot_every_ticks
    }

    /// Appends one WAL record (durability batched per the configured
    /// fsync interval).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and injected crashes.
    pub fn append(&self, record: &WalRecord) -> Result<(), PersistError> {
        self.wal.lock().expect("wal poisoned").append(record)
    }

    /// Appends one WAL record and fsyncs immediately — for mutations
    /// that must be durable before they are acknowledged (live tenant
    /// registration).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and injected crashes.
    pub fn append_durable(&self, record: &WalRecord) -> Result<(), PersistError> {
        let mut wal = self.wal.lock().expect("wal poisoned");
        wal.append(record)?;
        wal.sync()
    }

    /// Fsyncs the WAL.
    ///
    /// # Errors
    ///
    /// Propagates fsync failures.
    pub fn sync(&self) -> Result<(), PersistError> {
        self.wal.lock().expect("wal poisoned").sync()
    }

    /// Writes and atomically installs the next snapshot. Returns the
    /// installed path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and injected crashes (the sequence number
    /// is consumed either way, so a crashed install never blocks the
    /// next one).
    pub fn install_snapshot(&self, data: &SnapshotData) -> Result<PathBuf, PersistError> {
        let seq = self.next_snapshot_seq.fetch_add(1, Ordering::AcqRel);
        let path = write_snapshot(&self.dir, seq, data, &self.faults)?;
        // Garbage-collect superseded snapshots only after the new one is
        // durably installed; best-effort, never fails the install.
        snapshot::prune_snapshots(&self.dir, self.keep_snapshots);
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bandana-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_append_snapshot_reopen_cycle() {
        let dir = tmp_dir("cycle");
        let config = PersistConfig::new(&dir).with_fsync_every(1);
        let (persist, opened) = Persistence::open(&config).unwrap();
        assert!(opened.snapshot.is_none());
        assert!(opened.wal.records.is_empty());

        let tenant =
            WalRecord::TenantRegistered { id: 3, weight: 4, class: 1, quota: -1, slo_p99_ms: -1 };
        persist.append_durable(&tenant).unwrap();
        let snap = SnapshotData {
            written_at_ms: 99,
            tick: 7,
            shard_endurance_bytes: vec![1, 2],
            tables: vec![],
        };
        persist.install_snapshot(&snap).unwrap();
        persist.install_snapshot(&snap).unwrap(); // seq 2 supersedes 1
        drop(persist);

        let (persist, opened) = Persistence::open(&config).unwrap();
        let (seq, loaded) = opened.snapshot.unwrap();
        assert_eq!((seq, loaded.tick), (2, 7));
        assert_eq!(opened.wal.records, vec![tenant]);
        // The next install continues the sequence past what was found.
        let path = persist.install_snapshot(&snap).unwrap();
        assert!(path.ends_with("snapshot-3.bin"), "{path:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_install_does_not_block_the_next_one() {
        let dir = tmp_dir("crash-seq");
        let faults = FaultPlan::none();
        let config = PersistConfig::new(&dir).with_faults(Arc::clone(&faults));
        let (persist, _) = Persistence::open(&config).unwrap();
        let snap = SnapshotData {
            written_at_ms: 0,
            tick: 1,
            shard_endurance_bytes: vec![],
            tables: vec![],
        };
        faults.arm(CrashPoint::SnapshotBeforeRename);
        assert!(persist.install_snapshot(&snap).is_err());
        persist.install_snapshot(&snap).unwrap();
        let (seq, _) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(seq, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
