//! Versioned snapshots of the engine's warm state, installed atomically.
//!
//! A snapshot captures what a restart would otherwise lose: each table's
//! DRAM cache *contents* (vector ids and demand/prefetch origin bits —
//! not payloads, which the NVM device still holds), the admission policy
//! and shadow multiplier in force per table, and the per-shard
//! endurance counters. It deliberately does **not** capture the table
//! catalog or tenant registry — those are WAL records
//! ([`crate::WalRecord`]), replayed over the snapshot at recovery.
//!
//! # On-disk format (version 3; versions 1 and 2 still decode)
//!
//! All integers little-endian:
//!
//! | field | size | meaning |
//! |-------|------|---------|
//! | magic | 4 bytes | `"BSNP"` |
//! | version | `u32` | `3` (readers accept `1` and `2`) |
//! | `written_at_ms` | `u64` | wall-clock Unix milliseconds at write |
//! | `tick` | `u64` | control-bus tick the snapshot was taken on |
//! | `shards` | `u32` | shard count |
//! | `tables` | `u32` | table count |
//! | per shard | `u64` | endurance `bytes_written` |
//! | per table | see below | |
//! | crc | `u32` | [`crate::crc32`] of everything above |
//!
//! Per table:
//!
//! | field | size | meaning |
//! |-------|------|---------|
//! | `table` | `u32` | table id |
//! | policy tag | `u8` | 0 `None`, 1 `All`, 2 `Shadow`, 3 `ShadowPosition`, 4 `Threshold` |
//! | policy arg | `f64` or `u32` | `position` for tags 1/3, `t` for tag 4, absent otherwise |
//! | `shadow_multiplier` | `f64` | shadow-cache size multiplier |
//! | `cache_capacity` | `u32` | **v2 only**: cache capacity in entries (the learned DRAM partition); decoded as `0` (= unknown) from v1 files |
//! | `keys` | `u32` | cached-entry count |
//! | per key | `u32` + `u8` | vector id, origin (0 demand, 1 prefetch), MRU→LRU |
//! | `layout` | `u32` | **v3 only**: placement-order length — `0` means the build-time layout (online re-layout never ran); decoded as `0` from v1/v2 files |
//! | per position | `u32` | **v3 only**: vector id at that physical position |
//!
//! # Atomic install
//!
//! [`write_snapshot`] writes `snapshot-<seq>.bin.tmp`, fsyncs it, renames
//! it to `snapshot-<seq>.bin`, and fsyncs the directory, so a reader
//! never observes a half-written installed snapshot. [`load_latest`]
//! walks installed snapshots newest-first and returns the first one that
//! passes the checksum — a bit-flipped newest snapshot falls back to its
//! predecessor instead of poisoning recovery.

use crate::crc::crc32;
use crate::error::PersistError;
use crate::faults::{CrashPoint, FaultPlan};
use bandana_cache::AdmissionPolicy;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"BSNP";

/// The snapshot format version this build writes.
pub const SNAPSHOT_VERSION: u32 = 3;

/// The oldest snapshot version this build still decodes (version 1
/// predates the per-table `cache_capacity` field, which decodes as 0;
/// versions 1 and 2 predate the per-table `layout_order`, which decodes
/// as empty = build-time layout).
pub const MIN_SNAPSHOT_VERSION: u32 = 1;

/// Where a cached entry came from, carried through snapshots so a
/// rehydrated cache keeps its demand/prefetch split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyOrigin {
    /// Demand-fetched (a miss brought it in).
    Demand,
    /// Prefetched by the admission policy.
    Prefetch,
}

/// One table's warm state.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Table id.
    pub table: u32,
    /// Admission policy in force (possibly a tuner hot-swap).
    pub policy: AdmissionPolicy,
    /// Shadow-cache size multiplier in force.
    pub shadow_multiplier: f64,
    /// Cache capacity in entries when the snapshot was taken — the
    /// learned DRAM partition, so a warm restart resumes the budget
    /// controller's split rather than the build-time one. `0` means
    /// unknown (decoded from a version-1 file): recovery keeps the
    /// build-time capacity.
    pub cache_capacity: u32,
    /// Cached entries, MRU first: `(vector id, origin)`.
    pub keys: Vec<(u32, KeyOrigin)>,
    /// The learned placement order in force when the snapshot was taken:
    /// `layout_order[position] = vector id`. Empty means the build-time
    /// layout (the online re-layout loop never rewrote this table, or the
    /// file predates version 3) — recovery keeps the layout the build
    /// produced. When non-empty, a warm restart physically re-applies
    /// this order before rehydrating the cache.
    pub layout_order: Vec<u32>,
}

/// A full engine snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData {
    /// Wall-clock Unix milliseconds when the snapshot was written.
    pub written_at_ms: u64,
    /// Control-bus tick the snapshot was taken on.
    pub tick: u64,
    /// Per-shard endurance counters (`bytes_written`), shard order.
    pub shard_endurance_bytes: Vec<u64>,
    /// Per-table warm state.
    pub tables: Vec<TableSnapshot>,
}

fn encode_policy(out: &mut Vec<u8>, policy: AdmissionPolicy) -> Result<(), PersistError> {
    match policy {
        AdmissionPolicy::None => out.push(0),
        AdmissionPolicy::All { position } => {
            out.push(1);
            out.extend_from_slice(&position.to_le_bytes());
        }
        AdmissionPolicy::Shadow => out.push(2),
        AdmissionPolicy::ShadowPosition { position } => {
            out.push(3);
            out.extend_from_slice(&position.to_le_bytes());
        }
        AdmissionPolicy::Threshold { t } => {
            out.push(4);
            out.extend_from_slice(&t.to_le_bytes());
        }
        // `AdmissionPolicy` is non_exhaustive upstream; refuse to write a
        // snapshot we could not read back.
        other => {
            return Err(PersistError::Corrupt(format!("unencodable admission policy {other:?}")))
        }
    }
    Ok(())
}

fn decode_policy(r: &mut crate::codec::Reader<'_>) -> Option<AdmissionPolicy> {
    Some(match r.u8()? {
        0 => AdmissionPolicy::None,
        1 => AdmissionPolicy::All { position: r.f64()? },
        2 => AdmissionPolicy::Shadow,
        3 => AdmissionPolicy::ShadowPosition { position: r.f64()? },
        4 => AdmissionPolicy::Threshold { t: r.u32()? },
        _ => return None,
    })
}

/// Encodes `data` into the version-1 byte format (checksum included).
pub fn encode(data: &SnapshotData) -> Result<Vec<u8>, PersistError> {
    let mut out = Vec::with_capacity(
        64 + data.shard_endurance_bytes.len() * 8
            + data.tables.iter().map(|t| 32 + t.keys.len() * 5).sum::<usize>(),
    );
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&data.written_at_ms.to_le_bytes());
    out.extend_from_slice(&data.tick.to_le_bytes());
    out.extend_from_slice(&(data.shard_endurance_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(data.tables.len() as u32).to_le_bytes());
    for &bytes in &data.shard_endurance_bytes {
        out.extend_from_slice(&bytes.to_le_bytes());
    }
    for t in &data.tables {
        out.extend_from_slice(&t.table.to_le_bytes());
        encode_policy(&mut out, t.policy)?;
        out.extend_from_slice(&t.shadow_multiplier.to_le_bytes());
        out.extend_from_slice(&t.cache_capacity.to_le_bytes());
        out.extend_from_slice(&(t.keys.len() as u32).to_le_bytes());
        for &(id, origin) in &t.keys {
            out.extend_from_slice(&id.to_le_bytes());
            out.push(match origin {
                KeyOrigin::Demand => 0,
                KeyOrigin::Prefetch => 1,
            });
        }
        out.extend_from_slice(&(t.layout_order.len() as u32).to_le_bytes());
        for &v in &t.layout_order {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(out)
}

/// Decodes and checksum-verifies one snapshot file's bytes.
///
/// # Errors
///
/// [`PersistError::Corrupt`] on a bad magic, unknown version, failed
/// checksum, or short payload.
pub fn decode(data: &[u8]) -> Result<SnapshotData, PersistError> {
    let corrupt = |why: &str| PersistError::Corrupt(format!("snapshot: {why}"));
    if data.len() < MAGIC.len() + 8 {
        return Err(corrupt("too short"));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = crate::codec::Reader::new(body);
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = r.u8().ok_or_else(|| corrupt("short magic"))?;
    }
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = r.u32().ok_or_else(|| corrupt("short version"))?;
    if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(PersistError::Corrupt(format!(
            "snapshot: unsupported version {version} \
             (this build reads {MIN_SNAPSHOT_VERSION}..={SNAPSHOT_VERSION})"
        )));
    }
    let written_at_ms = r.u64().ok_or_else(|| corrupt("short header"))?;
    let tick = r.u64().ok_or_else(|| corrupt("short header"))?;
    let shards = r.u32().ok_or_else(|| corrupt("short header"))? as usize;
    let tables = r.u32().ok_or_else(|| corrupt("short header"))? as usize;
    if shards > 1 << 16 || tables > 1 << 20 {
        return Err(corrupt("absurd header counts"));
    }
    let mut shard_endurance_bytes = Vec::with_capacity(shards);
    for _ in 0..shards {
        shard_endurance_bytes.push(r.u64().ok_or_else(|| corrupt("short shard section"))?);
    }
    let mut out_tables = Vec::with_capacity(tables);
    for _ in 0..tables {
        let table = r.u32().ok_or_else(|| corrupt("short table header"))?;
        let policy = decode_policy(&mut r).ok_or_else(|| corrupt("bad policy"))?;
        let shadow_multiplier = r.f64().ok_or_else(|| corrupt("short table header"))?;
        // Version 1 predates the learned-partition field.
        let cache_capacity =
            if version >= 2 { r.u32().ok_or_else(|| corrupt("short table header"))? } else { 0 };
        let key_count = r.u32().ok_or_else(|| corrupt("short table header"))? as usize;
        if key_count > 1 << 28 {
            return Err(corrupt("absurd key count"));
        }
        let mut keys = Vec::with_capacity(key_count);
        for _ in 0..key_count {
            let id = r.u32().ok_or_else(|| corrupt("short key section"))?;
            let origin = match r.u8().ok_or_else(|| corrupt("short key section"))? {
                0 => KeyOrigin::Demand,
                1 => KeyOrigin::Prefetch,
                _ => return Err(corrupt("bad key origin")),
            };
            keys.push((id, origin));
        }
        // Versions 1 and 2 predate the learned-layout field.
        let mut layout_order = Vec::new();
        if version >= 3 {
            let order_len = r.u32().ok_or_else(|| corrupt("short layout section"))? as usize;
            if order_len > 1 << 28 {
                return Err(corrupt("absurd layout length"));
            }
            layout_order.reserve(order_len);
            for _ in 0..order_len {
                layout_order.push(r.u32().ok_or_else(|| corrupt("short layout section"))?);
            }
        }
        out_tables.push(TableSnapshot {
            table,
            policy,
            shadow_multiplier,
            cache_capacity,
            keys,
            layout_order,
        });
    }
    if !r.done() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(SnapshotData { written_at_ms, tick, shard_endurance_bytes, tables: out_tables })
}

/// The installed path of snapshot `seq` inside `dir`.
pub fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq}.bin"))
}

/// Writes `data` as snapshot `seq` in `dir`: temp file, fsync, atomic
/// rename, directory fsync. Returns the installed path.
///
/// # Errors
///
/// Propagates I/O errors; under an armed snapshot [`CrashPoint`] the
/// matching partial state is left behind and
/// [`PersistError::InjectedCrash`] is returned.
pub fn write_snapshot(
    dir: &Path,
    seq: u64,
    data: &SnapshotData,
    faults: &FaultPlan,
) -> Result<PathBuf, PersistError> {
    let bytes = encode(data)?;
    let final_path = snapshot_path(dir, seq);
    let tmp_path = dir.join(format!("snapshot-{seq}.bin.tmp"));
    let mut tmp = std::fs::File::create(&tmp_path)?;
    if faults.fires(CrashPoint::SnapshotMidWrite) {
        tmp.write_all(&bytes[..bytes.len() / 2])?;
        tmp.sync_all()?;
        return Err(PersistError::InjectedCrash(CrashPoint::SnapshotMidWrite));
    }
    tmp.write_all(&bytes)?;
    tmp.sync_all()?;
    drop(tmp);
    if faults.fires(CrashPoint::SnapshotBeforeRename) {
        return Err(PersistError::InjectedCrash(CrashPoint::SnapshotBeforeRename));
    }
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// Fsyncs a directory so a just-renamed entry is durable (a no-op on
/// platforms where directories cannot be opened for sync).
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    match std::fs::File::open(dir) {
        Ok(f) => f.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Deletes installed snapshots beyond the newest `keep` (clamped to a
/// minimum of 2, so the newest-first corrupt-fallback path always has a
/// predecessor to land on). Temp files and non-snapshot entries are
/// untouched; a snapshot that fails to delete is skipped silently (GC is
/// best-effort — the next install retries). Returns how many files were
/// removed.
pub fn prune_snapshots(dir: &Path, keep: usize) -> usize {
    let keep = keep.max(2);
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    let mut seqs: Vec<u64> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name();
            let name = name.to_str()?;
            let seq = name.strip_prefix("snapshot-")?.strip_suffix(".bin")?;
            seq.parse().ok()
        })
        .collect();
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    seqs.iter()
        .skip(keep)
        .filter(|&&seq| std::fs::remove_file(snapshot_path(dir, seq)).is_ok())
        .count()
}

/// Loads the newest installed snapshot in `dir` that passes validation,
/// with its sequence number. Corrupt or unreadable snapshots are skipped
/// (newest-first fallback); temp files are ignored entirely.
///
/// # Errors
///
/// Propagates directory-listing failures (a missing directory loads as
/// "no snapshot").
pub fn load_latest(dir: &Path) -> Result<Option<(u64, SnapshotData)>, PersistError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::Io(e)),
    };
    let mut seqs: Vec<u64> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name();
            let name = name.to_str()?;
            let seq = name.strip_prefix("snapshot-")?.strip_suffix(".bin")?;
            seq.parse().ok()
        })
        .collect();
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    for seq in seqs {
        let Ok(bytes) = std::fs::read(snapshot_path(dir, seq)) else { continue };
        if let Ok(data) = decode(&bytes) {
            return Ok(Some((seq, data)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::flip_bit;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bandana-snap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> SnapshotData {
        SnapshotData {
            written_at_ms: 1_700_000_000_123,
            tick: 42,
            shard_endurance_bytes: vec![4096, 0, 12_288],
            tables: vec![
                TableSnapshot {
                    table: 0,
                    policy: AdmissionPolicy::Threshold { t: 10 },
                    shadow_multiplier: 4.0,
                    cache_capacity: 384,
                    keys: vec![(7, KeyOrigin::Demand), (3, KeyOrigin::Prefetch)],
                    layout_order: vec![3, 0, 2, 1],
                },
                TableSnapshot {
                    table: 1,
                    policy: AdmissionPolicy::ShadowPosition { position: 0.5 },
                    shadow_multiplier: 2.0,
                    cache_capacity: 128,
                    keys: vec![],
                    layout_order: vec![],
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip_preserves_everything() {
        let data = sample();
        let bytes = encode(&data).unwrap();
        assert_eq!(decode(&bytes).unwrap(), data);
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let mut bytes = encode(&sample()).unwrap();
        // Magic damage.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(decode(&bad_magic), Err(PersistError::Corrupt(_))));
        // Future version with a recomputed checksum still refuses.
        bytes[4] = 0xFE;
        let body_len = bytes.len() - 4;
        let crc = crate::crc::crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("unsupported version"), "{err}");
    }

    /// Hand-encodes `data` in the version-1 layout (no per-table
    /// `cache_capacity`), byte-for-byte what a v1 build wrote.
    fn encode_v1(data: &SnapshotData) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&data.written_at_ms.to_le_bytes());
        out.extend_from_slice(&data.tick.to_le_bytes());
        out.extend_from_slice(&(data.shard_endurance_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&(data.tables.len() as u32).to_le_bytes());
        for &bytes in &data.shard_endurance_bytes {
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        for t in &data.tables {
            out.extend_from_slice(&t.table.to_le_bytes());
            encode_policy(&mut out, t.policy).unwrap();
            out.extend_from_slice(&t.shadow_multiplier.to_le_bytes());
            out.extend_from_slice(&(t.keys.len() as u32).to_le_bytes());
            for &(id, origin) in &t.keys {
                out.extend_from_slice(&id.to_le_bytes());
                out.push(match origin {
                    KeyOrigin::Demand => 0,
                    KeyOrigin::Prefetch => 1,
                });
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    #[test]
    fn version_1_files_still_decode_with_unknown_capacity() {
        let data = sample();
        let decoded = decode(&encode_v1(&data)).unwrap();
        assert_eq!(decoded.tick, data.tick);
        assert_eq!(decoded.shard_endurance_bytes, data.shard_endurance_bytes);
        assert_eq!(decoded.tables.len(), data.tables.len());
        for (got, want) in decoded.tables.iter().zip(&data.tables) {
            assert_eq!(got.table, want.table);
            assert_eq!(got.policy, want.policy);
            assert_eq!(got.shadow_multiplier, want.shadow_multiplier);
            assert_eq!(got.keys, want.keys);
            assert_eq!(got.cache_capacity, 0, "v1 has no capacity: must decode as unknown");
            assert!(got.layout_order.is_empty(), "v1 has no layout: must decode build-time");
        }
    }

    /// Hand-encodes `data` in the version-2 layout (per-table
    /// `cache_capacity` but no `layout_order`), byte-for-byte what a v2
    /// build wrote.
    fn encode_v2(data: &SnapshotData) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&2u32.to_le_bytes());
        out.extend_from_slice(&data.written_at_ms.to_le_bytes());
        out.extend_from_slice(&data.tick.to_le_bytes());
        out.extend_from_slice(&(data.shard_endurance_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&(data.tables.len() as u32).to_le_bytes());
        for &bytes in &data.shard_endurance_bytes {
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        for t in &data.tables {
            out.extend_from_slice(&t.table.to_le_bytes());
            encode_policy(&mut out, t.policy).unwrap();
            out.extend_from_slice(&t.shadow_multiplier.to_le_bytes());
            out.extend_from_slice(&t.cache_capacity.to_le_bytes());
            out.extend_from_slice(&(t.keys.len() as u32).to_le_bytes());
            for &(id, origin) in &t.keys {
                out.extend_from_slice(&id.to_le_bytes());
                out.push(match origin {
                    KeyOrigin::Demand => 0,
                    KeyOrigin::Prefetch => 1,
                });
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    #[test]
    fn version_2_files_still_decode_with_build_time_layout() {
        let data = sample();
        let decoded = decode(&encode_v2(&data)).unwrap();
        assert_eq!(decoded.tick, data.tick);
        assert_eq!(decoded.shard_endurance_bytes, data.shard_endurance_bytes);
        assert_eq!(decoded.tables.len(), data.tables.len());
        for (got, want) in decoded.tables.iter().zip(&data.tables) {
            assert_eq!(got.table, want.table);
            assert_eq!(got.policy, want.policy);
            assert_eq!(got.cache_capacity, want.cache_capacity, "v2 carries the capacity");
            assert_eq!(got.keys, want.keys);
            assert!(got.layout_order.is_empty(), "v2 has no layout: must decode build-time");
        }
    }

    #[test]
    fn prune_keeps_the_newest_k_and_never_fewer_than_two() {
        let dir = tmp_dir("prune");
        let faults = FaultPlan::none();
        for seq in 1..=5u64 {
            let mut data = sample();
            data.tick = seq;
            write_snapshot(&dir, seq, &data, &faults).unwrap();
        }
        // An orphaned temp file must never be touched by GC.
        std::fs::write(dir.join("snapshot-9.bin.tmp"), b"partial").unwrap();

        assert_eq!(prune_snapshots(&dir, 3), 2);
        let (seq, data) = load_latest(&dir).unwrap().unwrap();
        assert_eq!((seq, data.tick), (5, 5), "recovery still prefers the newest");
        assert!(!snapshot_path(&dir, 1).exists());
        assert!(!snapshot_path(&dir, 2).exists());
        assert!(snapshot_path(&dir, 3).exists());
        assert!(dir.join("snapshot-9.bin.tmp").exists(), "temp files are not GC'd");

        // keep=0 clamps to 2: the corrupt-newest fallback needs a
        // predecessor on disk.
        assert_eq!(prune_snapshots(&dir, 0), 1);
        assert!(snapshot_path(&dir, 4).exists());
        assert!(snapshot_path(&dir, 5).exists());
        flip_bit(&snapshot_path(&dir, 5), 20, 1).unwrap();
        let (seq, _) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(seq, 4, "after GC the fallback predecessor survives");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_install_and_latest_selection() {
        let dir = tmp_dir("install");
        let faults = FaultPlan::none();
        let mut first = sample();
        first.tick = 1;
        let mut second = sample();
        second.tick = 2;
        write_snapshot(&dir, 1, &first, &faults).unwrap();
        write_snapshot(&dir, 2, &second, &faults).unwrap();
        let (seq, data) = load_latest(&dir).unwrap().unwrap();
        assert_eq!((seq, data.tick), (2, 2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_newest_snapshot_falls_back_to_predecessor() {
        let dir = tmp_dir("fallback");
        let faults = FaultPlan::none();
        let mut first = sample();
        first.tick = 1;
        let mut second = sample();
        second.tick = 2;
        write_snapshot(&dir, 1, &first, &faults).unwrap();
        let newest = write_snapshot(&dir, 2, &second, &faults).unwrap();
        flip_bit(&newest, 20, 1).unwrap();
        let (seq, data) = load_latest(&dir).unwrap().unwrap();
        assert_eq!((seq, data.tick), (1, 1), "corrupt newest must be skipped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_points_leave_no_installed_snapshot() {
        for point in [CrashPoint::SnapshotMidWrite, CrashPoint::SnapshotBeforeRename] {
            let dir = tmp_dir(&format!("crash-{point}"));
            let err = write_snapshot(&dir, 1, &sample(), &FaultPlan::crash_at(point)).unwrap_err();
            assert!(matches!(err, PersistError::InjectedCrash(p) if p == point));
            assert!(load_latest(&dir).unwrap().is_none(), "{point}: nothing installed");
            // The orphaned temp file is there (mid-write: partial;
            // before-rename: complete but never installed).
            assert!(dir.join("snapshot-1.bin.tmp").exists(), "{point}: temp file left behind");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn missing_dir_loads_as_no_snapshot() {
        let dir = std::env::temp_dir().join("bandana-snap-never-created");
        assert!(load_latest(&dir).unwrap().is_none());
    }
}
