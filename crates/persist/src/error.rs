//! The persistence error type.

use crate::faults::CrashPoint;

/// Errors from the durability layer.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// On-disk data failed validation (checksum, magic, version, or
    /// structural bounds). Replay paths treat this as a torn tail.
    Corrupt(String),
    /// An armed [`CrashPoint`] fired: the operation stopped exactly
    /// where a crash would have, leaving the matching partial state.
    InjectedCrash(CrashPoint),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist I/O error: {e}"),
            PersistError::Corrupt(why) => write!(f, "corrupt persistent state: {why}"),
            PersistError::InjectedCrash(point) => write!(f, "injected crash at {point}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}
