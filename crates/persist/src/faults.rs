//! Crash-point fault injection for the durability paths.
//!
//! Recovery code is only trustworthy if every crash window has been
//! exercised: a process can die halfway through a WAL append, halfway
//! through writing a snapshot temp file, or after the temp file is
//! durable but before it is renamed into place. [`FaultPlan`] arms
//! exactly those windows: when the durability code reaches an armed
//! [`CrashPoint`] it leaves the partial on-disk state a real crash would
//! leave (a torn tail, an orphaned temp file) and returns
//! [`PersistError::InjectedCrash`](crate::PersistError::InjectedCrash)
//! instead of proceeding — the test then recovers from that directory
//! and asserts the invariants.
//!
//! Bit-flip corruption (silent media errors, as opposed to torn writes)
//! is modelled separately by [`flip_bit`], which damages an existing
//! file in place.
//!
//! This is persistence-layer fault injection; it is unrelated to
//! `nvm_sim`'s I/O-error `FaultPlan`, which injects *device read/write
//! errors* on the simulated NVM.

use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// A crash window in the durability code. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die after writing only a prefix of a WAL frame (torn append).
    WalMidAppend,
    /// Die after writing only a prefix of the snapshot temp file.
    SnapshotMidWrite,
    /// Die after the temp file is written and fsynced but before the
    /// atomic rename installs it.
    SnapshotBeforeRename,
}

impl CrashPoint {
    /// Every crash point, for matrix tests.
    pub const ALL: [CrashPoint; 3] =
        [CrashPoint::WalMidAppend, CrashPoint::SnapshotMidWrite, CrashPoint::SnapshotBeforeRename];

    fn code(self) -> u8 {
        match self {
            CrashPoint::WalMidAppend => 1,
            CrashPoint::SnapshotMidWrite => 2,
            CrashPoint::SnapshotBeforeRename => 3,
        }
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CrashPoint::WalMidAppend => "wal-mid-append",
            CrashPoint::SnapshotMidWrite => "snapshot-mid-write",
            CrashPoint::SnapshotBeforeRename => "snapshot-before-rename",
        };
        write!(f, "{name}")
    }
}

/// A one-shot crash plan threaded through the durability paths.
///
/// Arm a [`CrashPoint`] and the next time the WAL or snapshot writer
/// reaches that window it crashes there — once. The plan is internally
/// atomic so one `Arc<FaultPlan>` can be shared between the engine's
/// control bus, shard workers, and the test that armed it.
///
/// # Example
///
/// ```
/// use bandana_persist::{CrashPoint, FaultPlan};
///
/// let plan = FaultPlan::none();
/// plan.arm(CrashPoint::WalMidAppend);
/// assert!(plan.fires(CrashPoint::WalMidAppend));
/// assert!(!plan.fires(CrashPoint::WalMidAppend), "one-shot");
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    armed: AtomicU8,
}

impl FaultPlan {
    /// A plan with nothing armed (the production configuration).
    pub fn none() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    /// A plan that crashes at `point`, once.
    pub fn crash_at(point: CrashPoint) -> Arc<FaultPlan> {
        let plan = FaultPlan::default();
        plan.arm(point);
        Arc::new(plan)
    }

    /// Arms `point` (replacing any previously armed point).
    pub fn arm(&self, point: CrashPoint) {
        self.armed.store(point.code(), Ordering::Release);
    }

    /// Whether `point` is armed; consumes the arming when it is. Called
    /// by the durability code at each crash window.
    pub fn fires(&self, point: CrashPoint) -> bool {
        self.armed.compare_exchange(point.code(), 0, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }
}

/// Flips one bit of `path` in place: bit `bit` (0–7) of byte
/// `byte_index`. Models silent media corruption for replay/fallback
/// tests.
///
/// # Errors
///
/// Propagates I/O errors; fails with `InvalidInput` when `byte_index`
/// is past the end of the file.
pub fn flip_bit(path: &Path, byte_index: u64, bit: u8) -> std::io::Result<()> {
    let mut data = std::fs::read(path)?;
    let idx = usize::try_from(byte_index)
        .ok()
        .filter(|&i| i < data.len())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "offset past EOF"))?;
    data[idx] ^= 1 << (bit & 7);
    std::fs::write(path, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_is_one_shot_and_point_specific() {
        let plan = FaultPlan::crash_at(CrashPoint::SnapshotMidWrite);
        assert!(!plan.fires(CrashPoint::WalMidAppend), "different point must not fire");
        assert!(plan.fires(CrashPoint::SnapshotMidWrite));
        assert!(!plan.fires(CrashPoint::SnapshotMidWrite));
        plan.arm(CrashPoint::SnapshotBeforeRename);
        assert!(plan.fires(CrashPoint::SnapshotBeforeRename));
    }

    #[test]
    fn flip_bit_damages_exactly_one_bit() {
        let dir = std::env::temp_dir().join(format!("bandana-persist-flip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        std::fs::write(&path, [0u8, 0, 0]).unwrap();
        flip_bit(&path, 1, 3).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![0u8, 8, 0]);
        assert!(flip_bit(&path, 3, 0).is_err(), "past EOF rejected");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
