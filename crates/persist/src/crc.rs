//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), hand-rolled.
//!
//! This workspace vendors offline stand-ins for everything external, so
//! the checksum is implemented here rather than pulled from crates.io:
//! a 256-entry table built at compile time and the standard reflected
//! byte-at-a-time update. The result matches the `crc32` everyone else
//! computes (zlib, `cksum -o 3`, the `crc32fast` crate), which keeps the
//! on-disk formats inspectable with stock tools.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The byte-indexed lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32/IEEE of `data`.
///
/// # Example
///
/// ```
/// // The catalogued check value for CRC-32/ISO-HDLC.
/// assert_eq!(bandana_persist::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Catalogue check values (reveng / zlib).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"bandana wal record".to_vec();
        let crc = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), crc, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
