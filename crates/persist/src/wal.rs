//! The write-ahead log: length-prefixed, CRC-checksummed records with
//! batched fsync and truncating replay.
//!
//! # On-disk format
//!
//! A WAL file is a sequence of frames, nothing else — no file header, so
//! an empty file is a valid (empty) log:
//!
//! | field | size | meaning |
//! |-------|------|---------|
//! | `len` | `u32` LE | payload length in bytes (≤ [`MAX_RECORD_BYTES`]) |
//! | `crc` | `u32` LE | [`crate::crc32`] of the payload |
//! | payload | `len` bytes | one encoded [`WalRecord`] |
//!
//! Payload encodings (all integers little-endian):
//!
//! | record | layout |
//! |--------|--------|
//! | [`WalRecord::TableCatalog`] | tag `0x01`, `table: u32`, `base_block: u64`, `num_blocks: u64`, `num_vectors: u32`, `vector_bytes: u32` |
//! | [`WalRecord::TenantRegistered`] | tag `0x02`, `id: u32`, `weight: u32`, `class: u8` (0 high, 1 normal, 2 low), `quota: i64` (−1 = none), `slo_p99_ms: i64` (−1 = none) |
//!
//! # Crash safety
//!
//! [`Wal::append`] buffers nothing in userspace (every frame is written
//! straight to the file) but batches *durability*: `fsync` runs once per
//! [`fsync_every`](Wal) appends and on [`Wal::sync`]. A crash can
//! therefore tear the last frame(s); [`replay`] scans frames until the
//! first torn or corrupt one — short header, absurd length, checksum
//! mismatch, or undecodable payload — and reports the byte offset of the
//! longest valid prefix. Recovery truncates the file there
//! ([`Wal::recover`]), so a re-replay of the same log yields the same
//! records: replay is idempotent and a corrupt tail is never served.

use crate::crc::crc32;
use crate::error::PersistError;
use crate::faults::{CrashPoint, FaultPlan};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Upper bound on one record's payload; anything larger is corruption.
pub const MAX_RECORD_BYTES: u32 = 1 << 20;

const TAG_TABLE_CATALOG: u8 = 0x01;
const TAG_TENANT_REGISTERED: u8 = 0x02;

/// One durable mutation of the engine's control state.
///
/// The WAL captures *metadata* mutations only — the table catalog laid
/// down at build time and tenant-registry changes (including live
/// `POST /tenants` registrations). Embedding payloads live on the NVM
/// device and cache contents travel in snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecord {
    /// One table's placement contract: where its blocks live and how big
    /// they are. Written at build time; verified against the rebuilt
    /// store during recovery.
    TableCatalog {
        /// Table id (index in the store).
        table: u32,
        /// First device block of the table's region.
        base_block: u64,
        /// Blocks in the region.
        num_blocks: u64,
        /// Vectors in the table.
        num_vectors: u32,
        /// Bytes per embedding vector.
        vector_bytes: u32,
    },
    /// One tenant registration (build-time or live via `POST /tenants`).
    TenantRegistered {
        /// Tenant id.
        id: u32,
        /// Deficit-round-robin weight.
        weight: u32,
        /// Priority class index: 0 high, 1 normal, 2 low.
        class: u8,
        /// In-flight quota; −1 encodes "no quota".
        quota: i64,
        /// Recent-window p99 budget in milliseconds; −1 encodes "none".
        slo_p99_ms: i64,
    },
}

impl WalRecord {
    /// Encodes the payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match *self {
            WalRecord::TableCatalog {
                table,
                base_block,
                num_blocks,
                num_vectors,
                vector_bytes,
            } => {
                out.push(TAG_TABLE_CATALOG);
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&base_block.to_le_bytes());
                out.extend_from_slice(&num_blocks.to_le_bytes());
                out.extend_from_slice(&num_vectors.to_le_bytes());
                out.extend_from_slice(&vector_bytes.to_le_bytes());
            }
            WalRecord::TenantRegistered { id, weight, class, quota, slo_p99_ms } => {
                out.push(TAG_TENANT_REGISTERED);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&weight.to_le_bytes());
                out.push(class);
                out.extend_from_slice(&quota.to_le_bytes());
                out.extend_from_slice(&slo_p99_ms.to_le_bytes());
            }
        }
        out
    }

    /// Decodes one payload. `None` means the payload is corrupt (unknown
    /// tag, wrong length, invalid field) — replay treats it as the torn
    /// tail.
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, rest) = payload.split_first()?;
        let mut r = crate::codec::Reader::new(rest);
        let record = match tag {
            TAG_TABLE_CATALOG => WalRecord::TableCatalog {
                table: r.u32()?,
                base_block: r.u64()?,
                num_blocks: r.u64()?,
                num_vectors: r.u32()?,
                vector_bytes: r.u32()?,
            },
            TAG_TENANT_REGISTERED => {
                let record = WalRecord::TenantRegistered {
                    id: r.u32()?,
                    weight: r.u32()?,
                    class: r.u8()?,
                    quota: r.i64()?,
                    slo_p99_ms: r.i64()?,
                };
                let WalRecord::TenantRegistered { class, .. } = record else { unreachable!() };
                if class > 2 {
                    return None;
                }
                record
            }
            _ => return None,
        };
        r.done().then_some(record)
    }
}

/// The result of scanning a WAL file: the decoded records of the longest
/// valid prefix, where that prefix ends, and whether anything was cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// The valid records, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix.
    pub valid_bytes: u64,
    /// Whether a torn/corrupt tail followed the valid prefix.
    pub truncated: bool,
}

/// Scans the log at `path`, stopping at the first torn or corrupt frame.
///
/// A missing file replays as an empty log. Re-running replay on the same
/// file always yields the same result (it mutates nothing).
///
/// # Errors
///
/// Propagates I/O errors other than "not found".
pub fn replay(path: &Path) -> Result<WalReplay, PersistError> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(PersistError::Io(e)),
    };
    Ok(scan(&data))
}

/// The pure scanning core of [`replay`], exposed for property tests.
pub fn scan(data: &[u8]) -> WalReplay {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &data[offset..];
        if rest.len() < 8 {
            return WalReplay { records, valid_bytes: offset as u64, truncated: !rest.is_empty() };
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let frame_ok = len <= MAX_RECORD_BYTES
            && rest.len() - 8 >= len as usize
            && crc32(&rest[8..8 + len as usize]) == crc;
        let record = frame_ok.then(|| WalRecord::decode(&rest[8..8 + len as usize])).flatten();
        match record {
            Some(r) => {
                records.push(r);
                offset += 8 + len as usize;
            }
            None => {
                return WalReplay { records, valid_bytes: offset as u64, truncated: true };
            }
        }
    }
}

/// An open write-ahead log.
///
/// # Example
///
/// ```
/// use bandana_persist::{replay, FaultPlan, Wal, WalRecord};
///
/// # fn main() -> Result<(), bandana_persist::PersistError> {
/// let dir = std::env::temp_dir().join(format!("bandana-wal-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("wal.log");
/// let mut wal = Wal::open(&path, 4, FaultPlan::none())?;
/// wal.append(&WalRecord::TenantRegistered {
///     id: 7, weight: 9, class: 1, quota: -1, slo_p99_ms: 50,
/// })?;
/// wal.sync()?;
/// assert_eq!(replay(&path)?.records.len(), 1);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Appends since the last fsync.
    pending: usize,
    /// Fsync once per this many appends (1 = every append).
    fsync_every: usize,
    faults: Arc<FaultPlan>,
}

impl Wal {
    /// Opens (creating if needed) the log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates open failures.
    pub fn open(
        path: &Path,
        fsync_every: usize,
        faults: Arc<FaultPlan>,
    ) -> Result<Wal, PersistError> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            pending: 0,
            fsync_every: fsync_every.max(1),
            faults,
        })
    }

    /// Replays the log, truncates any torn/corrupt tail off the file, and
    /// opens it for appending — the recovery entry point. Returns the
    /// replay alongside the open log.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn recover(
        path: &Path,
        fsync_every: usize,
        faults: Arc<FaultPlan>,
    ) -> Result<(WalReplay, Wal), PersistError> {
        let replayed = replay(path)?;
        if replayed.truncated {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(replayed.valid_bytes)?;
            file.sync_all()?;
        }
        let wal = Wal::open(path, fsync_every, faults)?;
        Ok((replayed, wal))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record, fsyncing once per `fsync_every` appends.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors. Under an armed
    /// [`CrashPoint::WalMidAppend`] only a prefix of the frame reaches
    /// the file and [`PersistError::InjectedCrash`] is returned — the
    /// record is *not* durable, mirroring a real mid-append crash.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), PersistError> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if self.faults.fires(CrashPoint::WalMidAppend) {
            // A torn write: half the frame lands, then the "process dies".
            self.file.write_all(&frame[..frame.len() / 2])?;
            self.file.sync_data()?;
            return Err(PersistError::InjectedCrash(CrashPoint::WalMidAppend));
        }
        self.file.write_all(&frame)?;
        self.pending += 1;
        if self.pending >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces everything appended so far to durable storage.
    ///
    /// # Errors
    ///
    /// Propagates fsync failures.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.file.sync_data()?;
        self.pending = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bandana-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::TableCatalog {
                table: 0,
                base_block: 0,
                num_blocks: 128,
                num_vectors: 4096,
                vector_bytes: 128,
            },
            WalRecord::TenantRegistered { id: 7, weight: 9, class: 0, quota: 64, slo_p99_ms: 50 },
            WalRecord::TenantRegistered { id: 8, weight: 1, class: 2, quota: -1, slo_p99_ms: -1 },
        ]
    }

    fn encode_log(records: &[WalRecord]) -> Vec<u8> {
        let mut data = Vec::new();
        for r in records {
            let payload = r.encode();
            data.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            data.extend_from_slice(&crc32(&payload).to_le_bytes());
            data.extend_from_slice(&payload);
        }
        data
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("round-trip");
        let mut wal = Wal::open(&path, 2, FaultPlan::none()).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        wal.sync().unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records, sample_records());
        assert!(!replayed.truncated);
        // Replay is read-only: running it again is identical.
        assert_eq!(replay(&path).unwrap(), replayed);
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let path = tmp("missing");
        let replayed = replay(&path).unwrap();
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.valid_bytes, 0);
        assert!(!replayed.truncated);
    }

    #[test]
    fn torn_append_leaves_a_truncatable_tail() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path, 1, FaultPlan::crash_at(CrashPoint::WalMidAppend)).unwrap();
        let records = sample_records();
        let err = wal.append(&records[0]).unwrap_err();
        assert!(matches!(err, PersistError::InjectedCrash(CrashPoint::WalMidAppend)));
        drop(wal);

        let replayed = replay(&path).unwrap();
        assert!(replayed.records.is_empty());
        assert!(replayed.truncated, "the torn frame must be detected");

        // Recovery truncates the tail and the log accepts new appends.
        let (again, mut wal) = Wal::recover(&path, 1, FaultPlan::none()).unwrap();
        assert_eq!(again.records, replayed.records);
        wal.append(&records[1]).unwrap();
        drop(wal);
        let healed = replay(&path).unwrap();
        assert_eq!(healed.records, vec![records[1]]);
        assert!(!healed.truncated);
    }

    #[test]
    fn unknown_tags_and_bad_lengths_stop_the_scan() {
        let good = encode_log(&sample_records()[..1]);
        // Unknown tag with a valid frame checksum.
        let mut bogus_payload = vec![0x7Fu8, 1, 2, 3];
        let mut log = good.clone();
        log.extend_from_slice(&(bogus_payload.len() as u32).to_le_bytes());
        log.extend_from_slice(&crc32(&bogus_payload).to_le_bytes());
        log.append(&mut bogus_payload);
        let r = scan(&log);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.valid_bytes as usize, good.len());
        assert!(r.truncated);

        // A length beyond MAX_RECORD_BYTES.
        let mut log = good.clone();
        log.extend_from_slice(&(MAX_RECORD_BYTES + 1).to_le_bytes());
        log.extend_from_slice(&[0u8; 4]);
        let r = scan(&log);
        assert_eq!(r.records.len(), 1);
        assert!(r.truncated);
    }

    proptest! {
        /// Truncating the log at any byte yields a clean prefix of the
        /// original records — never a partial or mutated record.
        #[test]
        fn truncation_yields_longest_valid_prefix(cut_fraction in 0.0f64..1.0) {
            let records = sample_records();
            let data = encode_log(&records);
            let cut = (data.len() as f64 * cut_fraction) as usize;
            let r = scan(&data[..cut]);
            prop_assert!(r.records.len() <= records.len());
            prop_assert_eq!(&r.records[..], &records[..r.records.len()], "prefix property");
            prop_assert!(r.valid_bytes as usize <= cut);
            prop_assert_eq!(r.truncated, r.valid_bytes as usize != cut);
        }

        /// Flipping any single bit never yields a record that was not
        /// appended: the scan stops at or before the damaged frame and
        /// everything it returns is a prefix of the original sequence.
        #[test]
        fn single_bit_flip_never_fabricates_records(
            byte_fraction in 0.0f64..1.0,
            bit in 0u8..8,
        ) {
            let records = sample_records();
            let mut data = encode_log(&records);
            let idx = ((data.len() - 1) as f64 * byte_fraction) as usize;
            data[idx] ^= 1 << bit;
            let r = scan(&data);
            prop_assert!(r.records.len() <= records.len());
            prop_assert_eq!(&r.records[..], &records[..r.records.len()], "prefix property");
            // The flipped byte lives in some frame; every frame before it
            // is intact, so the scan keeps at least those records.
            let frame_sizes: Vec<usize> =
                records.iter().map(|rec| 8 + rec.encode().len()).collect();
            let mut offset = 0;
            let mut intact = 0;
            for size in frame_sizes {
                if offset + size <= idx {
                    intact += 1;
                    offset += size;
                } else {
                    break;
                }
            }
            prop_assert!(r.records.len() >= intact, "intact frames before the flip survive");
        }
    }
}
