//! Compact CSR hypergraph built from query traces.
//!
//! Vertices are embedding-vector ids; each hyperedge is the set of distinct
//! vectors one query looked up (paper §4.2.2, equation 3). Both directions
//! are stored in CSR form: edge → vertices for fanout counting, vertex →
//! edges for move-gain computation during SHP refinement.

use serde::{Deserialize, Serialize};

/// An immutable hypergraph in compressed sparse row form.
///
/// # Example
///
/// ```
/// use bandana_partition::Hypergraph;
///
/// let queries: Vec<Vec<u32>> = vec![vec![0, 1, 1], vec![1, 2]];
/// let h = Hypergraph::from_queries(3, queries.iter().map(|q| q.as_slice()));
/// assert_eq!(h.num_edges(), 2);
/// assert_eq!(h.edge(0), &[0, 1]); // duplicates within a query collapse
/// assert_eq!(h.edges_of(1).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypergraph {
    num_vertices: u32,
    edge_offsets: Vec<usize>,
    edge_vertices: Vec<u32>,
    vertex_offsets: Vec<usize>,
    vertex_edges: Vec<u32>,
}

impl Hypergraph {
    /// Builds a hypergraph from per-query id lists.
    ///
    /// Duplicate ids within one query are collapsed; queries with fewer than
    /// two distinct ids produce no edge (they cannot influence placement).
    ///
    /// # Panics
    ///
    /// Panics if a query references an id `>= num_vertices`.
    pub fn from_queries<'a, I>(num_vertices: u32, queries: I) -> Self
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        let mut edge_offsets = vec![0usize];
        let mut edge_vertices: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        for q in queries {
            scratch.clear();
            scratch.extend_from_slice(q);
            scratch.sort_unstable();
            scratch.dedup();
            if scratch.len() < 2 {
                continue;
            }
            for &v in &scratch {
                assert!(v < num_vertices, "query references vertex {v} >= {num_vertices}");
            }
            edge_vertices.extend_from_slice(&scratch);
            edge_offsets.push(edge_vertices.len());
        }

        // Build the transpose (vertex -> edges) by counting sort.
        let mut degree = vec![0usize; num_vertices as usize];
        for &v in &edge_vertices {
            degree[v as usize] += 1;
        }
        let mut vertex_offsets = vec![0usize; num_vertices as usize + 1];
        for i in 0..num_vertices as usize {
            vertex_offsets[i + 1] = vertex_offsets[i] + degree[i];
        }
        let mut cursor = vertex_offsets.clone();
        let mut vertex_edges = vec![0u32; edge_vertices.len()];
        for e in 0..edge_offsets.len() - 1 {
            for &v in &edge_vertices[edge_offsets[e]..edge_offsets[e + 1]] {
                vertex_edges[cursor[v as usize]] = e as u32;
                cursor[v as usize] += 1;
            }
        }

        Hypergraph { num_vertices, edge_offsets, edge_vertices, vertex_offsets, vertex_edges }
    }

    /// Number of vertices (the table size, including never-accessed ids).
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of hyperedges (queries with ≥ 2 distinct ids).
    pub fn num_edges(&self) -> usize {
        self.edge_offsets.len() - 1
    }

    /// Total vertex–edge incidences (the pin count).
    pub fn num_pins(&self) -> usize {
        self.edge_vertices.len()
    }

    /// The distinct, sorted vertex ids of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: usize) -> &[u32] {
        &self.edge_vertices[self.edge_offsets[e]..self.edge_offsets[e + 1]]
    }

    /// The edges incident to vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn edges_of(&self, v: u32) -> &[u32] {
        &self.vertex_edges[self.vertex_offsets[v as usize]..self.vertex_offsets[v as usize + 1]]
    }

    /// Degree of vertex `v` (number of queries containing it).
    pub fn degree(&self, v: u32) -> usize {
        self.edges_of(v).len()
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.num_edges()).map(move |e| self.edge(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        let queries: Vec<Vec<u32>> = vec![
            vec![0, 1, 2],
            vec![2, 3],
            vec![4],       // dropped: single vertex
            vec![1, 1, 1], // dropped: collapses to single vertex
            vec![0, 3, 3],
        ];
        Hypergraph::from_queries(5, queries.iter().map(|q| q.as_slice()))
    }

    #[test]
    fn edges_collapse_duplicates_and_drop_singletons() {
        let h = sample();
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.edge(0), &[0, 1, 2]);
        assert_eq!(h.edge(1), &[2, 3]);
        assert_eq!(h.edge(2), &[0, 3]);
        assert_eq!(h.num_pins(), 7);
    }

    #[test]
    fn transpose_is_consistent() {
        let h = sample();
        for e in 0..h.num_edges() {
            for &v in h.edge(e) {
                assert!(
                    h.edges_of(v).contains(&(e as u32)),
                    "edge {e} missing from vertex {v} incidence"
                );
            }
        }
        let total: usize = (0..h.num_vertices()).map(|v| h.degree(v)).sum();
        assert_eq!(total, h.num_pins());
    }

    #[test]
    fn untouched_vertices_have_zero_degree() {
        let h = sample();
        assert_eq!(h.degree(4), 0);
    }

    #[test]
    fn empty_graph() {
        let h = Hypergraph::from_queries(3, std::iter::empty());
        assert_eq!(h.num_edges(), 0);
        assert_eq!(h.num_pins(), 0);
        assert_eq!(h.degree(0), 0);
    }

    #[test]
    #[should_panic(expected = ">= 2")]
    fn out_of_range_vertex_rejected() {
        let queries: Vec<Vec<u32>> = vec![vec![0, 5]];
        let _ = Hypergraph::from_queries(2, queries.iter().map(|q| q.as_slice()));
    }

    #[test]
    fn edges_iterator_matches_indexing() {
        let h = sample();
        let collected: Vec<&[u32]> = h.edges().collect();
        assert_eq!(collected.len(), h.num_edges());
        assert_eq!(collected[1], h.edge(1));
    }
}
