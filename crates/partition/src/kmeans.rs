//! K-means clustering for semantic partitioning (paper §4.2.1).
//!
//! Bandana's unsupervised alternative to SHP: cluster embedding vectors by
//! Euclidean distance (the paper uses Faiss) and lay out each cluster
//! contiguously, approximating the column reordering of equation 2. Seeding
//! uses k-means++ for small `k` and distinct random picks for large `k`
//! (full D² seeding is quadratic in `k` and the paper's Figure 7a already
//! shows flat K-means scaling poorly with cluster count).

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Lloyd iterations (the paper runs Faiss with 20).
    pub iterations: u32,
    /// RNG seed for seeding/tie-breaking.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 16, iterations: 20, seed: 0 }
    }
}

/// Result of a K-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster id of each point.
    pub assignments: Vec<u32>,
    /// Row-major `k × dim` centroid matrix.
    pub centroids: Vec<f32>,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
    /// Number of clusters actually used (≤ configured `k`).
    pub k: usize,
}

/// Runs Lloyd's algorithm over row-major `data` (`n × dim`).
///
/// # Example
///
/// ```
/// use bandana_partition::{kmeans, KMeansConfig};
///
/// // Two well-separated 1-D clusters.
/// let data = [0.0f32, 0.1, 0.2, 10.0, 10.1, 10.2];
/// let result = kmeans(&data, 1, &KMeansConfig { k: 2, iterations: 10, seed: 1 });
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_ne!(result.assignments[0], result.assignments[5]);
/// ```
///
/// # Panics
///
/// Panics if `dim` is zero, `data` is empty or not a multiple of `dim`, or
/// `k` is zero.
pub fn kmeans(data: &[f32], dim: usize, config: &KMeansConfig) -> KMeansResult {
    assert!(dim > 0, "dimension must be non-zero");
    assert!(!data.is_empty(), "cannot cluster empty data");
    assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
    assert!(config.k > 0, "k must be non-zero");
    let n = data.len() / dim;
    let k = config.k.min(n);
    let mut rng = ChaCha12Rng::seed_from_u64(config.seed);

    let mut centroids = seed_centroids(data, n, dim, k, &mut rng);
    let mut assignments = vec![0u32; n];
    let mut inertia = f64::INFINITY;

    for _ in 0..config.iterations.max(1) {
        // Assignment step.
        let mut new_inertia = 0.0f64;
        for i in 0..n {
            let p = &data[i * dim..(i + 1) * dim];
            let (best, d2) = nearest_centroid(p, &centroids, dim, k);
            assignments[i] = best as u32;
            new_inertia += d2 as f64;
        }
        // Update step.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u64; k];
        for i in 0..n {
            let c = assignments[i] as usize;
            counts[c] += 1;
            for d in 0..dim {
                sums[c * dim + d] += data[i * dim + d] as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at a random point.
                let p = rng.gen_range(0..n);
                centroids[c * dim..(c + 1) * dim].copy_from_slice(&data[p * dim..(p + 1) * dim]);
            } else {
                for d in 0..dim {
                    centroids[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32;
                }
            }
        }
        // Converged when inertia stops improving meaningfully.
        if (inertia - new_inertia).abs() < 1e-9 * inertia.max(1.0) {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }

    KMeansResult { assignments, centroids, inertia, k }
}

/// k-means++ for small k, distinct random picks above the threshold.
fn seed_centroids(data: &[f32], n: usize, dim: usize, k: usize, rng: &mut ChaCha12Rng) -> Vec<f32> {
    let mut centroids = vec![0.0f32; k * dim];
    if k <= 64 {
        // k-means++: D² sampling.
        let first = rng.gen_range(0..n);
        centroids[..dim].copy_from_slice(&data[first * dim..(first + 1) * dim]);
        let mut d2 = vec![0.0f64; n];
        for c in 1..k {
            let mut total = 0.0f64;
            for i in 0..n {
                let p = &data[i * dim..(i + 1) * dim];
                let (_, dist) = nearest_centroid(p, &centroids, dim, c);
                d2[i] = dist as f64;
                total += d2[i];
            }
            let pick = if total <= 0.0 {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen::<f64>() * total;
                let mut chosen = n - 1;
                for (i, &w) in d2.iter().enumerate() {
                    target -= w;
                    if target <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            centroids[c * dim..(c + 1) * dim].copy_from_slice(&data[pick * dim..(pick + 1) * dim]);
        }
    } else {
        // Distinct random seeding (reservoir-free: shuffle a prefix).
        let mut ids: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            ids.swap(i, j);
            centroids[i * dim..(i + 1) * dim]
                .copy_from_slice(&data[ids[i] * dim..(ids[i] + 1) * dim]);
        }
    }
    centroids
}

fn nearest_centroid(p: &[f32], centroids: &[f32], dim: usize, k: usize) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for c in 0..k {
        let mut d = 0.0f32;
        let cen = &centroids[c * dim..(c + 1) * dim];
        for (x, y) in p.iter().zip(cen) {
            let diff = x - y;
            d += diff * diff;
            if d >= best_d {
                break;
            }
        }
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Turns cluster assignments into a placement order: vectors sorted by
/// (cluster, id), so each cluster occupies a contiguous position range.
///
/// # Example
///
/// ```
/// use bandana_partition::order_from_assignments;
///
/// let order = order_from_assignments(&[1, 0, 1, 0]);
/// assert_eq!(order, vec![1, 3, 0, 2]);
/// ```
pub fn order_from_assignments(assignments: &[u32]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..assignments.len() as u32).collect();
    order.sort_by_key(|&v| (assignments[v as usize], v));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates `groups` Gaussian blobs in `dim` dimensions.
    fn blobs(groups: usize, per_group: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(groups * per_group * dim);
        for g in 0..groups {
            let center = g as f32 * 20.0;
            for _ in 0..per_group {
                for _ in 0..dim {
                    data.push(center + rng.gen::<f32>());
                }
            }
        }
        data
    }

    #[test]
    fn separates_clear_blobs() {
        let data = blobs(3, 20, 4, 1);
        let r = kmeans(&data, 4, &KMeansConfig { k: 3, iterations: 20, seed: 2 });
        assert_eq!(r.k, 3);
        // All points of a blob share an assignment.
        for g in 0..3 {
            let first = r.assignments[g * 20];
            for i in 0..20 {
                assert_eq!(r.assignments[g * 20 + i], first, "blob {g} split");
            }
        }
        // Different blobs have different assignments.
        assert_ne!(r.assignments[0], r.assignments[20]);
        assert_ne!(r.assignments[20], r.assignments[40]);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = blobs(8, 30, 4, 3);
        let i2 = kmeans(&data, 4, &KMeansConfig { k: 2, iterations: 15, seed: 1 }).inertia;
        let i8 = kmeans(&data, 4, &KMeansConfig { k: 8, iterations: 15, seed: 1 }).inertia;
        assert!(i8 < i2, "k=8 inertia {i8} should beat k=2 {i2}");
    }

    #[test]
    fn k_capped_at_n() {
        let data = [0.0f32, 1.0, 2.0];
        let r = kmeans(&data, 1, &KMeansConfig { k: 10, iterations: 5, seed: 0 });
        assert_eq!(r.k, 3);
        // Each point its own cluster: zero inertia.
        assert!(r.inertia < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs(4, 25, 3, 5);
        let a = kmeans(&data, 3, &KMeansConfig { k: 4, iterations: 10, seed: 7 });
        let b = kmeans(&data, 3, &KMeansConfig { k: 4, iterations: 10, seed: 7 });
        assert_eq!(a, b);
    }

    #[test]
    fn large_k_uses_random_seeding_and_still_works() {
        let data = blobs(10, 20, 2, 9);
        let r = kmeans(&data, 2, &KMeansConfig { k: 100, iterations: 5, seed: 4 });
        assert_eq!(r.k, 100);
        assert_eq!(r.assignments.len(), 200);
        assert!(r.assignments.iter().all(|&a| (a as usize) < 100));
    }

    #[test]
    fn order_groups_clusters_contiguously() {
        let assignments = vec![2u32, 0, 1, 0, 2, 1];
        let order = order_from_assignments(&assignments);
        assert_eq!(order, vec![1, 3, 2, 5, 0, 4]);
        // Clusters occupy contiguous ranges.
        let clusters: Vec<u32> = order.iter().map(|&v| assignments[v as usize]).collect();
        let mut deduped = clusters.clone();
        deduped.dedup();
        assert_eq!(deduped, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot cluster empty data")]
    fn empty_data_rejected() {
        let _ = kmeans(&[], 2, &KMeansConfig::default());
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn misshaped_data_rejected() {
        let _ = kmeans(&[1.0, 2.0, 3.0], 2, &KMeansConfig::default());
    }

    #[test]
    fn empty_cluster_reseeded() {
        // 2 identical points, k=2: one cluster will start empty but the run
        // must still terminate with valid assignments.
        let data = [5.0f32, 5.0];
        let r = kmeans(&data, 1, &KMeansConfig { k: 2, iterations: 5, seed: 3 });
        assert_eq!(r.assignments.len(), 2);
    }
}
