//! # bandana-partition — locality-aware embedding placement
//!
//! The core idea of Bandana (§4.2 of the paper): store embedding vectors
//! that are accessed together in the same physical 4 KB NVM block, so one
//! block read prefetches useful neighbours. Two placement strategies are
//! evaluated:
//!
//! * **Supervised** — [`shp`]: the Social Hash Partitioner, a recursive
//!   balanced bisection of the access hypergraph (vertices = vectors,
//!   hyperedges = queries) that minimizes average query *fanout* — the
//!   number of blocks a query touches (Kabiljo et al., VLDB 2017).
//! * **Semantic** — [`kmeans`](mod@kmeans): K-means over the embedding values
//!   themselves, hoping Euclidean proximity predicts co-access, plus the
//!   [`recursive`] two-stage variant that scales to many clusters.
//!
//! Both produce a [`BlockLayout`]: a bijection between vector ids and
//! physical positions, grouped into fixed-size blocks.
//!
//! ## Example
//!
//! ```
//! use bandana_partition::{BlockLayout, ShpConfig, social_hash_partition};
//!
//! // Queries over 8 vectors: {0,1} and {2,3} co-occur.
//! let queries: Vec<Vec<u32>> = vec![vec![0, 1], vec![2, 3], vec![0, 1], vec![2, 3]];
//! let config = ShpConfig { block_capacity: 2, iterations: 8, seed: 1, parallel_depth: 0 };
//! let order = social_hash_partition(8, queries.iter().map(|q| q.as_slice()), &config);
//! let layout = BlockLayout::from_order(order, 2);
//! // Co-accessed pairs end up in the same block.
//! assert_eq!(layout.block_of(0), layout.block_of(1));
//! assert_eq!(layout.block_of(2), layout.block_of(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fanout;
pub mod freq;
pub mod hypergraph;
pub mod kmeans;
pub mod layout;
pub mod recursive;
pub mod shp;

pub use fanout::{average_fanout, fanout_report, unlimited_cache_gain, FanoutReport};
pub use freq::AccessFrequency;
pub use hypergraph::Hypergraph;
pub use kmeans::{kmeans, order_from_assignments, KMeansConfig, KMeansResult};
pub use layout::BlockLayout;
pub use recursive::{two_stage_kmeans, TwoStageConfig};
pub use shp::{refine, social_hash_partition, RefineConfig, Refinement, ShpConfig};
