//! Placement quality metrics: average fanout and the unlimited-cache
//! effective-bandwidth gain.
//!
//! *Fanout* of a query is the number of distinct blocks it touches (paper
//! equation 3) — the quantity SHP minimizes. The *unlimited-cache gain* is
//! the metric of the paper's Figures 6, 8 and 9: with a DRAM cache that
//! never evicts and prefetches whole blocks, the NVM reads exactly one block
//! per distinct block touched, while the baseline (cache one vector per
//! read) reads one block per distinct *vector*. The effective-bandwidth
//! increase is the ratio of the two counts minus one.

use crate::layout::BlockLayout;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Summary of a layout's locality on an evaluation trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FanoutReport {
    /// Number of queries evaluated.
    pub queries: u64,
    /// Mean number of distinct blocks per query.
    pub average_fanout: f64,
    /// Distinct vectors accessed across the trace.
    pub unique_vectors: u64,
    /// Distinct blocks accessed across the trace.
    pub unique_blocks: u64,
}

impl FanoutReport {
    /// Effective-bandwidth increase over the single-vector baseline with an
    /// unlimited cache: `unique_vectors / unique_blocks - 1`.
    ///
    /// A value of `0.0` means no benefit; `1.0` means the prefetching layout
    /// reads half as many blocks (a "100% increase" in the paper's axes).
    pub fn unlimited_cache_gain(&self) -> f64 {
        if self.unique_blocks == 0 {
            0.0
        } else {
            self.unique_vectors as f64 / self.unique_blocks as f64 - 1.0
        }
    }
}

/// Computes the full fanout report of a layout over a query stream.
///
/// # Example
///
/// ```
/// use bandana_partition::{fanout_report, BlockLayout};
///
/// let layout = BlockLayout::identity(8, 4);
/// let queries: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![4, 5]];
/// let report = fanout_report(&layout, queries.iter().map(|q| q.as_slice()));
/// assert_eq!(report.average_fanout, 1.0); // each query fits one block
/// assert_eq!(report.unique_vectors, 5);
/// assert_eq!(report.unique_blocks, 2);
/// ```
pub fn fanout_report<'a, I>(layout: &BlockLayout, queries: I) -> FanoutReport
where
    I: IntoIterator<Item = &'a [u32]>,
{
    let mut total_fanout = 0u64;
    let mut num_queries = 0u64;
    let mut seen_vectors: HashSet<u32> = HashSet::new();
    let mut seen_blocks: HashSet<u32> = HashSet::new();
    let mut qblocks: HashSet<u32> = HashSet::new();
    for q in queries {
        if q.is_empty() {
            continue;
        }
        qblocks.clear();
        for &v in q {
            let b = layout.block_of(v);
            qblocks.insert(b);
            seen_vectors.insert(v);
            seen_blocks.insert(b);
        }
        total_fanout += qblocks.len() as u64;
        num_queries += 1;
    }
    FanoutReport {
        queries: num_queries,
        average_fanout: if num_queries == 0 {
            0.0
        } else {
            total_fanout as f64 / num_queries as f64
        },
        unique_vectors: seen_vectors.len() as u64,
        unique_blocks: seen_blocks.len() as u64,
    }
}

/// Mean number of distinct blocks per query under `layout`.
pub fn average_fanout<'a, I>(layout: &BlockLayout, queries: I) -> f64
where
    I: IntoIterator<Item = &'a [u32]>,
{
    fanout_report(layout, queries).average_fanout
}

/// Effective-bandwidth increase with an unlimited cache (Figures 6/8/9).
pub fn unlimited_cache_gain<'a, I>(layout: &BlockLayout, queries: I) -> f64
where
    I: IntoIterator<Item = &'a [u32]>,
{
    fanout_report(layout, queries).unlimited_cache_gain()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_counts_distinct_blocks() {
        let layout = BlockLayout::identity(16, 4);
        let queries: Vec<Vec<u32>> = vec![
            vec![0, 1, 2, 3],  // one block
            vec![0, 4, 8, 12], // four blocks
            vec![5, 5, 5],     // duplicates collapse: one block
        ];
        let r = fanout_report(&layout, queries.iter().map(|q| q.as_slice()));
        assert_eq!(r.queries, 3);
        assert!((r.average_fanout - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unlimited_gain_perfect_packing() {
        // All 8 vectors accessed; layout packs them into 2 blocks of 4.
        let layout = BlockLayout::identity(8, 4);
        let queries: Vec<Vec<u32>> = vec![vec![0, 1, 2, 3, 4, 5, 6, 7]];
        let g = unlimited_cache_gain(&layout, queries.iter().map(|q| q.as_slice()));
        // 8 unique vectors / 2 blocks - 1 = 3.0 (a "300% increase").
        assert!((g - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unlimited_gain_worst_case_is_zero() {
        // One accessed vector per block: no benefit over the baseline.
        let layout = BlockLayout::identity(16, 4);
        let queries: Vec<Vec<u32>> = vec![vec![0, 4, 8, 12]];
        let g = unlimited_cache_gain(&layout, queries.iter().map(|q| q.as_slice()));
        assert_eq!(g, 0.0);
    }

    #[test]
    fn empty_trace_yields_zero() {
        let layout = BlockLayout::identity(4, 2);
        let r = fanout_report(&layout, std::iter::empty());
        assert_eq!(r.queries, 0);
        assert_eq!(r.average_fanout, 0.0);
        assert_eq!(r.unlimited_cache_gain(), 0.0);
    }

    #[test]
    fn empty_queries_are_skipped() {
        let layout = BlockLayout::identity(4, 2);
        let queries: Vec<Vec<u32>> = vec![vec![], vec![1]];
        let r = fanout_report(&layout, queries.iter().map(|q| q.as_slice()));
        assert_eq!(r.queries, 1);
    }

    #[test]
    fn better_layout_has_higher_gain() {
        // Only even ids are accessed, in co-accessed pairs (0,8), (2,10), ...
        // The identity layout leaves each accessed vector alone in its block
        // (gain 0); a paired order packs each pair into one block (gain 1).
        let queries: Vec<Vec<u32>> = (0..4u32).map(|i| vec![2 * i, 2 * i + 8]).collect();
        let identity = BlockLayout::identity(16, 2);
        let paired_order: Vec<u32> = (0..4u32)
            .flat_map(|i| [2 * i, 2 * i + 8])
            .chain((0..4u32).flat_map(|i| [2 * i + 1, 2 * i + 9]))
            .collect();
        let paired = BlockLayout::from_order(paired_order, 2);
        let gi = unlimited_cache_gain(&identity, queries.iter().map(|q| q.as_slice()));
        let gp = unlimited_cache_gain(&paired, queries.iter().map(|q| q.as_slice()));
        assert_eq!(gi, 0.0);
        assert!((gp - 1.0).abs() < 1e-12); // 8 vectors / 4 blocks - 1
    }
}
