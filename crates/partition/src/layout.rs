//! Block layouts: the bijection between vector ids and physical positions.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A physical placement of `n` vectors into blocks of `vectors_per_block`.
///
/// `position_of[v]` is vector `v`'s physical slot; `vector_at[p]` is the
/// inverse. Blocks are consecutive position ranges; the final block may be
/// partially filled.
///
/// # Example
///
/// ```
/// use bandana_partition::BlockLayout;
///
/// let layout = BlockLayout::identity(100, 32);
/// assert_eq!(layout.num_blocks(), 4);
/// assert_eq!(layout.block_of(35), 1);
/// assert_eq!(layout.vectors_in_block(3).len(), 4); // 100 - 3*32
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockLayout {
    position_of: Vec<u32>,
    vector_at: Vec<u32>,
    vectors_per_block: usize,
}

impl BlockLayout {
    /// Builds a layout from a placement order (`order[position] = vector`).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()` or if
    /// `vectors_per_block` is zero.
    pub fn from_order(order: Vec<u32>, vectors_per_block: usize) -> Self {
        assert!(vectors_per_block > 0, "vectors per block must be non-zero");
        let n = order.len();
        let mut position_of = vec![u32::MAX; n];
        for (pos, &v) in order.iter().enumerate() {
            assert!((v as usize) < n, "order contains out-of-range id {v}");
            assert!(position_of[v as usize] == u32::MAX, "order repeats id {v}");
            position_of[v as usize] = pos as u32;
        }
        BlockLayout { position_of, vector_at: order, vectors_per_block }
    }

    /// The identity layout: vector `v` at position `v` (the "original table
    /// order" baseline in the paper's Figure 10).
    pub fn identity(n: u32, vectors_per_block: usize) -> Self {
        Self::from_order((0..n).collect(), vectors_per_block)
    }

    /// A seeded random layout (a placement with no locality at all).
    pub fn random(n: u32, vectors_per_block: usize, seed: u64) -> Self {
        let mut order: Vec<u32> = (0..n).collect();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        Self::from_order(order, vectors_per_block)
    }

    /// Number of vectors placed.
    pub fn num_vectors(&self) -> u32 {
        self.vector_at.len() as u32
    }

    /// Vectors per (full) block.
    pub fn vectors_per_block(&self) -> usize {
        self.vectors_per_block
    }

    /// Number of blocks, including a possibly partial last block.
    pub fn num_blocks(&self) -> u32 {
        (self.vector_at.len().div_ceil(self.vectors_per_block)) as u32
    }

    /// Physical position of a vector.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn position_of(&self, v: u32) -> u32 {
        self.position_of[v as usize]
    }

    /// Block index of a vector.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn block_of(&self, v: u32) -> u32 {
        self.position_of(v) / self.vectors_per_block as u32
    }

    /// Slot of a vector within its block.
    pub fn slot_of(&self, v: u32) -> u32 {
        self.position_of(v) % self.vectors_per_block as u32
    }

    /// Vector at a physical position.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn vector_at(&self, pos: u32) -> u32 {
        self.vector_at[pos as usize]
    }

    /// The vectors stored in block `b`, in slot order.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn vectors_in_block(&self, b: u32) -> &[u32] {
        let start = b as usize * self.vectors_per_block;
        let end = (start + self.vectors_per_block).min(self.vector_at.len());
        assert!(start < self.vector_at.len(), "block {b} out of range");
        &self.vector_at[start..end]
    }

    /// The full placement order (`order[position] = vector`).
    pub fn order(&self) -> &[u32] {
        &self.vector_at
    }

    /// Re-chunks the same ordering into a different block size (used by the
    /// Figure 16 vector-size sweep, where smaller vectors mean more vectors
    /// per 4 KB block).
    pub fn with_vectors_per_block(&self, vectors_per_block: usize) -> Self {
        Self::from_order(self.vector_at.clone(), vectors_per_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_order_round_trips() {
        let layout = BlockLayout::from_order(vec![2, 0, 1], 2);
        assert_eq!(layout.position_of(2), 0);
        assert_eq!(layout.position_of(0), 1);
        assert_eq!(layout.position_of(1), 2);
        assert_eq!(layout.vector_at(0), 2);
        assert_eq!(layout.num_blocks(), 2);
        assert_eq!(layout.vectors_in_block(0), &[2, 0]);
        assert_eq!(layout.vectors_in_block(1), &[1]);
    }

    #[test]
    fn identity_layout() {
        let l = BlockLayout::identity(64, 32);
        for v in 0..64 {
            assert_eq!(l.position_of(v), v);
            assert_eq!(l.block_of(v), v / 32);
            assert_eq!(l.slot_of(v), v % 32);
        }
    }

    #[test]
    fn random_layout_is_permutation_and_seeded() {
        let a = BlockLayout::random(100, 8, 1);
        let b = BlockLayout::random(100, 8, 1);
        let c = BlockLayout::random(100, 8, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut seen = a.order().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn rechunking_preserves_order() {
        let a = BlockLayout::random(128, 32, 3);
        let b = a.with_vectors_per_block(64);
        assert_eq!(a.order(), b.order());
        assert_eq!(b.num_blocks(), 2);
        // A 64-wide block contains both 32-wide blocks it covers.
        let wide: std::collections::HashSet<u32> = b.vectors_in_block(0).iter().copied().collect();
        for &v in a.vectors_in_block(0) {
            assert!(wide.contains(&v));
        }
        for &v in a.vectors_in_block(1) {
            assert!(wide.contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "order repeats id")]
    fn duplicate_order_rejected() {
        let _ = BlockLayout::from_order(vec![0, 0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out-of-range id")]
    fn out_of_range_order_rejected() {
        let _ = BlockLayout::from_order(vec![0, 3], 2);
    }

    #[test]
    #[should_panic(expected = "vectors per block must be non-zero")]
    fn zero_block_size_rejected() {
        let _ = BlockLayout::from_order(vec![0], 0);
    }

    #[test]
    fn partial_last_block_counted() {
        let l = BlockLayout::identity(33, 32);
        assert_eq!(l.num_blocks(), 2);
        assert_eq!(l.vectors_in_block(1), &[32]);
    }
}
