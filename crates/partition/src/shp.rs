//! Social Hash Partitioner: supervised placement from access history.
//!
//! Implements the recursive balanced-bisection hypergraph partitioner of
//! Kabiljo et al. (VLDB 2017) that Bandana uses to place embedding vectors
//! into NVM blocks (§4.2.2). The objective is to minimize the average query
//! *fanout* — the number of blocks a query must read (paper equation 3):
//!
//! ```text
//! min_p (1/n) Σ_j Σ_i intersect(Q_j, D_i)
//! ```
//!
//! Each bisection splits the vertex set into two balanced halves and then
//! runs a fixed number of refinement iterations (the paper uses 16): every
//! iteration computes, for each vertex, the fanout *gain* of moving it to
//! the other side, and greedily swaps the highest-gain pairs so balance is
//! preserved. Recursion proceeds until sets fit into one block.
//!
//! Unlike the distributed original, this implementation is in-process, but
//! it parallelizes disjoint sub-bisections across threads (the paper runs
//! SHP with 24 threads).

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::layout::BlockLayout;

/// Configuration for [`social_hash_partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShpConfig {
    /// Vectors per block (32 in the paper: 4 KB block / 128 B vector).
    pub block_capacity: usize,
    /// Refinement iterations per bisection (paper: 16).
    pub iterations: u32,
    /// Seed for the initial balanced split.
    pub seed: u64,
    /// Recursion depth down to which the two halves are processed on
    /// separate threads; `0` disables parallelism.
    pub parallel_depth: u32,
}

impl Default for ShpConfig {
    fn default() -> Self {
        ShpConfig { block_capacity: 32, iterations: 16, seed: 0, parallel_depth: 3 }
    }
}

/// One sub-problem of the recursion: a vertex subset with the edges
/// restricted to it, in local index space.
struct Sub {
    /// Global vertex ids, indexed by local id.
    verts: Vec<u32>,
    /// CSR edge offsets.
    edge_off: Vec<usize>,
    /// CSR edge members (local ids).
    edge_mem: Vec<u32>,
}

impl Sub {
    fn num_edges(&self) -> usize {
        self.edge_off.len() - 1
    }
}

/// Partitions `num_vertices` vectors into an ordering whose consecutive
/// `block_capacity`-sized groups minimize average query fanout.
///
/// `queries` is the training access history: each item is the id list of one
/// query (duplicates allowed; they are collapsed).
///
/// Returns the placement order: `order[position] = vector id`. Every id in
/// `0..num_vertices` appears exactly once.
///
/// # Example
///
/// ```
/// use bandana_partition::{social_hash_partition, ShpConfig};
///
/// let queries: Vec<Vec<u32>> = (0..50)
///     .flat_map(|_| vec![vec![0u32, 1, 2, 3], vec![4, 5, 6, 7]])
///     .collect();
/// let cfg = ShpConfig { block_capacity: 4, iterations: 8, seed: 0, parallel_depth: 0 };
/// let order = social_hash_partition(8, queries.iter().map(|q| q.as_slice()), &cfg);
/// let pos: Vec<usize> = (0..8u32).map(|v| order.iter().position(|&x| x == v).unwrap()).collect();
/// // {0,1,2,3} land in one block of 4 and {4,5,6,7} in the other.
/// assert_eq!(pos[0] / 4, pos[1] / 4);
/// assert_eq!(pos[4] / 4, pos[5] / 4);
/// assert_ne!(pos[0] / 4, pos[4] / 4);
/// ```
///
/// # Panics
///
/// Panics if `num_vertices` is zero, the block capacity is zero, or a query
/// references an out-of-range id.
pub fn social_hash_partition<'a, I>(num_vertices: u32, queries: I, config: &ShpConfig) -> Vec<u32>
where
    I: IntoIterator<Item = &'a [u32]>,
{
    assert!(num_vertices > 0, "cannot partition zero vertices");
    assert!(config.block_capacity > 0, "block capacity must be non-zero");

    // Build the top-level sub-problem directly in local space (local == global).
    let mut edge_off = vec![0usize];
    let mut edge_mem: Vec<u32> = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();
    for q in queries {
        scratch.clear();
        scratch.extend_from_slice(q);
        scratch.sort_unstable();
        scratch.dedup();
        if scratch.len() < 2 {
            continue;
        }
        assert!(
            *scratch.last().unwrap() < num_vertices,
            "query references vertex {} >= {num_vertices}",
            scratch.last().unwrap()
        );
        edge_mem.extend_from_slice(&scratch);
        edge_off.push(edge_mem.len());
    }
    let sub = Sub { verts: (0..num_vertices).collect(), edge_off, edge_mem };

    let mut out = vec![0u32; num_vertices as usize];
    bisect(sub, &mut out, config, 0, config.seed);
    out
}

/// Configuration for [`refine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefineConfig {
    /// Refinement iterations per bisection (a few suffice for a working set).
    pub iterations: u32,
    /// Seed for the initial balanced splits.
    pub seed: u64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig { iterations: 8, seed: 0 }
    }
}

/// Result of an incremental [`refine`] solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refinement {
    /// The full placement order after refinement: `order[position] = vector
    /// id`. Positions outside the working set are identical to the input
    /// layout's order.
    pub order: Vec<u32>,
    /// Number of vectors whose block assignment changed.
    pub moved: usize,
    /// Blocks whose slot contents changed, ascending. These are exactly the
    /// blocks a store must rewrite to realize the refinement.
    pub touched_blocks: Vec<u32>,
}

impl Refinement {
    /// A refinement that leaves `layout` unchanged.
    fn noop(layout: &BlockLayout) -> Self {
        Refinement { order: layout.order().to_vec(), moved: 0, touched_blocks: Vec::new() }
    }
}

/// Incrementally re-partitions a bounded working set of `hot_blocks` against
/// a recent co-access sample, leaving every other block untouched.
///
/// This is the online half of the SHP loop: instead of re-solving the whole
/// table, the vectors currently placed in `hot_blocks` are gathered into one
/// small sub-problem (seeded from the current `layout`) and bisected with the
/// same machinery as [`social_hash_partition`], restricted to the sampled
/// `queries`. The refined order is written back into the working set's own
/// positions, so the result is a full-table order that differs from the
/// input only inside `hot_blocks` — block count can never grow.
///
/// Queries are restricted to working-set members; restricted edges with
/// fewer than two members carry no placement signal and are dropped. If the
/// working set spans fewer than two blocks, or no restricted edge survives,
/// the solve is a no-op (re-shuffling hot blocks without evidence would only
/// scramble a layout that training traffic already paid for).
///
/// # Panics
///
/// Panics if a hot block id is out of range for `layout` or a query
/// references an out-of-range vector id.
pub fn refine<'a, I>(
    layout: &BlockLayout,
    hot_blocks: &[u32],
    queries: I,
    config: &RefineConfig,
) -> Refinement
where
    I: IntoIterator<Item = &'a [u32]>,
{
    let cap = layout.vectors_per_block();
    let num_blocks = layout.num_blocks();
    let n = layout.num_vectors();

    let mut blocks: Vec<u32> = hot_blocks.to_vec();
    blocks.sort_unstable();
    blocks.dedup();
    if let Some(&b) = blocks.last() {
        assert!(b < num_blocks, "hot block {b} out of range ({num_blocks} blocks)");
    }
    if blocks.len() < 2 {
        return Refinement::noop(layout);
    }

    // Gather the working set: the hot blocks' global positions, ascending.
    // Every hot block contributes exactly `cap` positions except (possibly)
    // the table's final partial block, which sorts last — so the bisection's
    // whole-block splits align exactly with physical blocks.
    let mut positions: Vec<usize> = Vec::with_capacity(blocks.len() * cap);
    for &b in &blocks {
        let start = b as usize * cap;
        let end = (start + cap).min(n as usize);
        positions.extend(start..end);
    }
    let verts: Vec<u32> = positions.iter().map(|&p| layout.order()[p]).collect();

    // Global vector id -> local working-set id.
    let mut local = vec![u32::MAX; n as usize];
    for (i, &v) in verts.iter().enumerate() {
        local[v as usize] = i as u32;
    }

    // Restrict each query to the working set, in local id space.
    let mut edge_off = vec![0usize];
    let mut edge_mem: Vec<u32> = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();
    for q in queries {
        scratch.clear();
        for &v in q {
            assert!(v < n, "query references vertex {v} >= {n}");
            let l = local[v as usize];
            if l != u32::MAX {
                scratch.push(l);
            }
        }
        scratch.sort_unstable();
        scratch.dedup();
        if scratch.len() < 2 {
            continue;
        }
        edge_mem.extend_from_slice(&scratch);
        edge_off.push(edge_mem.len());
    }
    if edge_off.len() < 2 {
        return Refinement::noop(layout);
    }

    let sub = Sub { verts, edge_off, edge_mem };
    let cfg = ShpConfig {
        block_capacity: cap,
        iterations: config.iterations.max(1),
        seed: config.seed,
        parallel_depth: 0,
    };
    let mut refined = vec![0u32; sub.verts.len()];
    bisect(sub, &mut refined, &cfg, 0, cfg.seed);

    // Write the refined local order back into the working set's positions.
    let mut order = layout.order().to_vec();
    let mut moved = 0usize;
    let mut touched_blocks: Vec<u32> = Vec::new();
    for (i, &p) in positions.iter().enumerate() {
        let v = refined[i];
        if order[p] != v {
            touched_blocks.push((p / cap) as u32);
        }
        if layout.block_of(v) != (p / cap) as u32 {
            moved += 1;
        }
        order[p] = v;
    }
    touched_blocks.dedup();
    Refinement { order, moved, touched_blocks }
}

/// Recursively bisects `sub`, writing the final vertex order into `out`.
fn bisect(sub: Sub, out: &mut [u32], cfg: &ShpConfig, depth: u32, salt: u64) {
    let n = sub.verts.len();
    debug_assert_eq!(n, out.len());
    if n <= cfg.block_capacity {
        out.copy_from_slice(&sub.verts);
        return;
    }

    // Left side gets a whole number of blocks so only the final block of the
    // table can be partially filled.
    let cap = cfg.block_capacity;
    let num_blocks = n.div_ceil(cap);
    let left_blocks = num_blocks.div_ceil(2);
    let left = (left_blocks * cap).min(n - 1);

    // Initial balanced split: a seeded shuffle of local ids.
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = ChaCha12Rng::seed_from_u64(salt ^ 0xB15E_C710);
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    // side[v] = true when v is on the left (side A).
    let mut side = vec![false; n];
    for &v in &order[..left] {
        side[v as usize] = true;
    }

    refine_bisection(&sub, &mut side, left, cfg.iterations, salt);

    // Split vertices and edges by side, preserving relative order.
    let mut left_verts = Vec::with_capacity(left);
    let mut right_verts = Vec::with_capacity(n - left);
    // new_local[v] = index within its side.
    let mut new_local = vec![0u32; n];
    for (v, &s) in side.iter().enumerate() {
        if s {
            new_local[v] = left_verts.len() as u32;
            left_verts.push(sub.verts[v]);
        } else {
            new_local[v] = right_verts.len() as u32;
            right_verts.push(sub.verts[v]);
        }
    }

    let mut l_off = vec![0usize];
    let mut l_mem: Vec<u32> = Vec::new();
    let mut r_off = vec![0usize];
    let mut r_mem: Vec<u32> = Vec::new();
    for e in 0..sub.num_edges() {
        let members = &sub.edge_mem[sub.edge_off[e]..sub.edge_off[e + 1]];
        let la = l_mem.len();
        let ra = r_mem.len();
        for &v in members {
            if side[v as usize] {
                l_mem.push(new_local[v as usize]);
            } else {
                r_mem.push(new_local[v as usize]);
            }
        }
        // Keep only sub-edges that can still influence placement.
        if l_mem.len() - la >= 2 {
            l_off.push(l_mem.len());
        } else {
            l_mem.truncate(la);
        }
        if r_mem.len() - ra >= 2 {
            r_off.push(r_mem.len());
        } else {
            r_mem.truncate(ra);
        }
    }

    let left_sub = Sub { verts: left_verts, edge_off: l_off, edge_mem: l_mem };
    let right_sub = Sub { verts: right_verts, edge_off: r_off, edge_mem: r_mem };
    let (out_l, out_r) = out.split_at_mut(left);

    if depth < cfg.parallel_depth {
        std::thread::scope(|s| {
            s.spawn(|| bisect(left_sub, out_l, cfg, depth + 1, splitmix(salt, 1)));
            bisect(right_sub, out_r, cfg, depth + 1, splitmix(salt, 2));
        });
    } else {
        bisect(left_sub, out_l, cfg, depth + 1, splitmix(salt, 1));
        bisect(right_sub, out_r, cfg, depth + 1, splitmix(salt, 2));
    }
}

/// Gain-driven pairwise-swap refinement, preserving the A-side size exactly.
///
/// The move gain combines the discrete fanout gain (paper equation 3) with a
/// *pair-togetherness* surrogate — the change in the number of co-located
/// edge pairs — which provides gradient on the plateaus where the discrete
/// gain is zero (e.g. an edge split exactly in half). A small seeded jitter
/// stands in for the original SHP's probabilistic swap acceptance, breaking
/// symmetric ties differently in each iteration so the refinement cannot
/// oscillate forever between equivalent configurations.
fn refine_bisection(sub: &Sub, side: &mut [bool], left_size: usize, iterations: u32, salt: u64) {
    let n = side.len();
    if sub.num_edges() == 0 {
        return;
    }
    // Local vertex -> incident edges CSR, built once per bisection.
    let mut degree = vec![0u32; n];
    for &v in &sub.edge_mem {
        degree[v as usize] += 1;
    }
    let mut v_off = vec![0usize; n + 1];
    for i in 0..n {
        v_off[i + 1] = v_off[i] + degree[i] as usize;
    }
    let mut cursor = v_off.clone();
    let mut v_edges = vec![0u32; sub.edge_mem.len()];
    for e in 0..sub.num_edges() {
        for &v in &sub.edge_mem[sub.edge_off[e]..sub.edge_off[e + 1]] {
            v_edges[cursor[v as usize]] = e as u32;
            cursor[v as usize] += 1;
        }
    }

    // Gain scaling: fanout gains dominate, pair gains order within a fanout
    // tier, jitter (0..JITTER, priority only) breaks exact ties.
    const FANOUT_UNIT: i64 = 1 << 40;
    const PAIR_UNIT: i64 = 1 << 10;
    const JITTER: u64 = 1 << 10;

    // Live per-edge side counts, maintained incrementally.
    let mut a_count = vec![0u32; sub.num_edges()];
    let mut b_count = vec![0u32; sub.num_edges()];
    for e in 0..sub.num_edges() {
        for &v in &sub.edge_mem[sub.edge_off[e]..sub.edge_off[e + 1]] {
            if side[v as usize] {
                a_count[e] += 1;
            } else {
                b_count[e] += 1;
            }
        }
    }
    let mut a_size = side.iter().filter(|&&s| s).count();

    // Gain of moving v to the other side, against the live counts.
    //
    // Fanout term: each edge where v is its side's sole member stops
    // spanning that side (+1); each edge with no member on the target side
    // starts spanning it (-1).
    //
    // Pair term: co-located edge pairs change by (other - own + 1) when v
    // moves from a side with `own` members (including v) to one with
    // `other` — this supplies gradient on the plateaus where the discrete
    // fanout gain is zero (e.g. an edge split exactly in half).
    let live_gain = |v: usize, side: &[bool], a_count: &[u32], b_count: &[u32]| -> i64 {
        let mut fan = 0i64;
        let mut pair = 0i64;
        for &e in &v_edges[v_off[v]..v_off[v + 1]] {
            let (own, other) = if side[v] {
                (a_count[e as usize], b_count[e as usize])
            } else {
                (b_count[e as usize], a_count[e as usize])
            };
            if own == 1 {
                fan += 1;
            }
            if other == 0 {
                fan -= 1;
            }
            pair += other as i64 - own as i64 + 1;
        }
        fan * FANOUT_UNIT + pair * PAIR_UNIT
    };

    let apply = |v: usize, side: &mut [bool], a_count: &mut [u32], b_count: &mut [u32]| {
        let was_a = side[v];
        for &e in &v_edges[v_off[v]..v_off[v + 1]] {
            if was_a {
                a_count[e as usize] -= 1;
                b_count[e as usize] += 1;
            } else {
                b_count[e as usize] -= 1;
                a_count[e as usize] += 1;
            }
        }
        side[v] = !was_a;
    };

    // FM-style refinement: single moves validated against live counts, with
    // a bounded balance slack. Every applied move strictly increases the
    // surrogate objective, so a sweep cannot oscillate. Sweeps alternate
    // with exact rebalancing: refinement can drift to a slack boundary and
    // park positive-gain vertices behind the balance constraint, and the
    // rebalance itself exposes new profitable moves, so a few
    // (sweep, rebalance) rounds are required to reach a balanced local
    // optimum.
    let slack = (n / 8).max(1);
    let rounds = if iterations == 0 { 1 } else { 3u32.min(iterations) };
    let sweeps_per_round = iterations / rounds;
    for round in 0..rounds {
        for sweep in 0..sweeps_per_round {
            // Priority order from a snapshot of gains (jitter varies per
            // sweep, standing in for SHP's probabilistic swap acceptance).
            let iter = round * sweeps_per_round + sweep;
            let mut order: Vec<(i64, u32)> = (0..n)
                .map(|v| {
                    let jitter = (splitmix(salt ^ ((iter as u64) << 32), v as u64) % JITTER) as i64;
                    (live_gain(v, side, &a_count, &b_count) + jitter, v as u32)
                })
                .collect();
            order.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));

            let mut moved = 0usize;
            for &(_, v) in &order {
                let v = v as usize;
                if live_gain(v, side, &a_count, &b_count) <= 0 {
                    continue;
                }
                // Keep |A| within the slack band around the target size.
                if side[v] {
                    if a_size <= left_size.saturating_sub(slack) {
                        continue;
                    }
                    a_size -= 1;
                } else {
                    if a_size >= left_size + slack {
                        continue;
                    }
                    a_size += 1;
                }
                apply(v, side, &mut a_count, &mut b_count);
                moved += 1;
            }
            if moved == 0 {
                break;
            }
        }

        // Restore exact balance: move the cheapest vertices until |A| is
        // exactly the target size.
        while a_size != left_size {
            let from_a = a_size > left_size;
            let mut best: Option<(i64, usize)> = None;
            for v in 0..n {
                if side[v] != from_a {
                    continue;
                }
                let g = live_gain(v, side, &a_count, &b_count);
                if best.is_none_or(|(bg, _)| g > bg) {
                    best = Some((g, v));
                }
            }
            let (_, v) = best.expect("side cannot be empty while unbalanced");
            apply(v, side, &mut a_count, &mut b_count);
            if from_a {
                a_size -= 1;
            } else {
                a_size += 1;
            }
        }
    }
    debug_assert_eq!(side.iter().filter(|&&s| s).count(), left_size);
}

/// Cheap deterministic seed derivation for sub-problems.
fn splitmix(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_permutation(order: &[u32], n: u32) {
        let mut sorted = order.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "not a permutation of 0..{n}");
    }

    fn block_of(order: &[u32], cap: usize, v: u32) -> usize {
        order.iter().position(|&x| x == v).unwrap() / cap
    }

    #[test]
    fn output_is_always_a_permutation() {
        for n in [1u32, 2, 5, 31, 32, 33, 100, 257] {
            let queries: Vec<Vec<u32>> =
                (0..50).map(|i| vec![i % n, (i * 7 + 1) % n, (i * 13 + 2) % n]).collect();
            let cfg = ShpConfig { block_capacity: 8, iterations: 4, seed: 3, parallel_depth: 1 };
            let order = social_hash_partition(n, queries.iter().map(|q| q.as_slice()), &cfg);
            assert_permutation(&order, n);
        }
    }

    #[test]
    fn perfectly_clustered_queries_are_separated() {
        // 4 groups of 8 vectors, each group always co-accessed.
        let mut queries: Vec<Vec<u32>> = Vec::new();
        for _ in 0..30 {
            for g in 0..4u32 {
                queries.push((g * 8..(g + 1) * 8).collect());
            }
        }
        let cfg = ShpConfig { block_capacity: 8, iterations: 16, seed: 1, parallel_depth: 0 };
        let order = social_hash_partition(32, queries.iter().map(|q| q.as_slice()), &cfg);
        assert_permutation(&order, 32);
        // Every group should land in exactly one block.
        for g in 0..4u32 {
            let blocks: std::collections::HashSet<usize> =
                (g * 8..(g + 1) * 8).map(|v| block_of(&order, 8, v)).collect();
            assert_eq!(blocks.len(), 1, "group {g} spread over blocks {blocks:?}");
        }
    }

    #[test]
    fn shp_beats_random_layout_on_average_fanout() {
        use crate::fanout::average_fanout;
        use crate::layout::BlockLayout;
        // Co-access groups of 16 over 256 vectors with some noise.
        let mut queries: Vec<Vec<u32>> = Vec::new();
        let mut x = 99u64;
        let mut rnd = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u32
        };
        for _ in 0..400 {
            let g = rnd() % 16;
            let q: Vec<u32> = (0..6).map(|_| g * 16 + rnd() % 16).collect();
            queries.push(q);
        }
        let cfg = ShpConfig { block_capacity: 8, iterations: 16, seed: 5, parallel_depth: 0 };
        let order = social_hash_partition(256, queries.iter().map(|q| q.as_slice()), &cfg);
        let shp_layout = BlockLayout::from_order(order, 8);
        let random_layout = BlockLayout::random(256, 8, 7);
        let f_shp = average_fanout(&shp_layout, queries.iter().map(|q| q.as_slice()));
        let f_rnd = average_fanout(&random_layout, queries.iter().map(|q| q.as_slice()));
        assert!(f_shp < f_rnd, "SHP fanout {f_shp} should beat random {f_rnd}");
    }

    #[test]
    fn deterministic_across_runs_and_parallelism() {
        let queries: Vec<Vec<u32>> =
            (0..100).map(|i| vec![i % 64, (i * 3) % 64, (i * 11) % 64]).collect();
        let mk = |par| {
            let cfg = ShpConfig { block_capacity: 4, iterations: 8, seed: 42, parallel_depth: par };
            social_hash_partition(64, queries.iter().map(|q| q.as_slice()), &cfg)
        };
        assert_eq!(mk(0), mk(0));
        assert_eq!(mk(0), mk(3), "parallel recursion must not change the result");
    }

    #[test]
    fn handles_no_queries() {
        let cfg = ShpConfig::default();
        let order = social_hash_partition(100, std::iter::empty(), &cfg);
        assert_permutation(&order, 100);
    }

    #[test]
    fn handles_single_vertex() {
        let cfg = ShpConfig::default();
        let order = social_hash_partition(1, std::iter::empty(), &cfg);
        assert_eq!(order, vec![0]);
    }

    #[test]
    #[should_panic(expected = "cannot partition zero vertices")]
    fn zero_vertices_rejected() {
        let _ = social_hash_partition(0, std::iter::empty(), &ShpConfig::default());
    }

    #[test]
    fn non_multiple_sizes_fill_all_but_last_block() {
        // 70 vertices at capacity 32: blocks of 32, 32, 6.
        let queries: Vec<Vec<u32>> = (0..80).map(|i| vec![i % 70, (i + 1) % 70]).collect();
        let cfg = ShpConfig { block_capacity: 32, iterations: 4, seed: 0, parallel_depth: 0 };
        let order = social_hash_partition(70, queries.iter().map(|q| q.as_slice()), &cfg);
        assert_permutation(&order, 70);
    }

    #[test]
    fn refine_regroups_a_drifted_hot_set() {
        use crate::fanout::average_fanout;
        // Build-time layout clusters groups of 8; drifted traffic co-accesses
        // vectors straddling the first four blocks.
        let layout = BlockLayout::identity(64, 8);
        let mut queries: Vec<Vec<u32>> = Vec::new();
        for _ in 0..40 {
            for g in 0..4u32 {
                // New group g = {g, g+8, g+16, g+24, ...}: one vector per hot
                // block, maximal fanout under the identity layout.
                queries.push((0..4).map(|b| b * 8 + g * 2).collect());
                queries.push((0..4).map(|b| b * 8 + g * 2 + 1).collect());
            }
        }
        let refined = refine(
            &layout,
            &[0, 1, 2, 3],
            queries.iter().map(|q| q.as_slice()),
            &RefineConfig { iterations: 16, seed: 9 },
        );
        assert_permutation(&refined.order, 64);
        assert!(refined.moved > 0, "drifted traffic should move vectors");
        assert!(refined.touched_blocks.iter().all(|&b| b < 4), "cold blocks rewritten");
        // Cold positions are byte-identical to the input layout.
        assert_eq!(&refined.order[32..], &layout.order()[32..]);
        let new_layout = BlockLayout::from_order(refined.order.clone(), 8);
        let before = average_fanout(&layout, queries.iter().map(|q| q.as_slice()));
        let after = average_fanout(&new_layout, queries.iter().map(|q| q.as_slice()));
        assert!(after < before, "refine should cut fanout: {after} !< {before}");
        // Each drifted group now fits in one block.
        assert!(after < 1.5, "drifted groups should re-cluster, got fanout {after}");
    }

    #[test]
    fn refine_is_deterministic() {
        let layout = BlockLayout::random(96, 8, 3);
        let queries: Vec<Vec<u32>> =
            (0..200).map(|i| vec![i % 96, (i * 5 + 2) % 96, (i * 11 + 7) % 96]).collect();
        let cfg = RefineConfig { iterations: 8, seed: 77 };
        let a = refine(&layout, &[0, 3, 5, 9], queries.iter().map(|q| q.as_slice()), &cfg);
        let b = refine(&layout, &[0, 3, 5, 9], queries.iter().map(|q| q.as_slice()), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn refine_without_evidence_is_a_noop() {
        let layout = BlockLayout::random(64, 8, 1);
        // Fewer than two hot blocks: nothing to trade between.
        let r = refine(&layout, &[2], std::iter::empty(), &RefineConfig::default());
        assert_eq!(r.order, layout.order());
        assert_eq!(r.moved, 0);
        assert!(r.touched_blocks.is_empty());
        // No restricted edge survives: all queries live outside the hot set.
        let layout = BlockLayout::identity(64, 8);
        let cold: Vec<Vec<u32>> = (0..20).map(|i| vec![32 + i % 32, 32 + (i + 3) % 32]).collect();
        let r =
            refine(&layout, &[0, 1], cold.iter().map(|q| q.as_slice()), &RefineConfig::default());
        assert_eq!(r.order, layout.order());
        assert!(r.touched_blocks.is_empty());
    }

    #[test]
    fn refine_handles_partial_last_block() {
        // 70 vectors at capacity 8: last block holds 6.
        let layout = BlockLayout::identity(70, 8);
        let queries: Vec<Vec<u32>> = (0..60).map(|i| vec![i % 70, (i * 7 + 3) % 70]).collect();
        let blocks: Vec<u32> = (0..9).collect();
        let r = refine(
            &layout,
            &blocks,
            queries.iter().map(|q| q.as_slice()),
            &RefineConfig { iterations: 8, seed: 4 },
        );
        assert_permutation(&r.order, 70);
        let new_layout = BlockLayout::from_order(r.order, 8);
        assert_eq!(new_layout.num_blocks(), layout.num_blocks(), "block count grew");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn refine_rejects_out_of_range_block() {
        let layout = BlockLayout::identity(64, 8);
        let _ = refine(&layout, &[0, 99], std::iter::empty(), &RefineConfig::default());
    }

    #[test]
    fn splitmix_spreads_seeds() {
        let a = splitmix(1, 1);
        let b = splitmix(1, 2);
        let c = splitmix(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
