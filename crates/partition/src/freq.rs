//! Per-vector access frequencies from the SHP training run.
//!
//! Paper §4.3.2: while running SHP, Bandana records how many training
//! queries contained each vector. At serving time, a prefetched vector is
//! admitted to the DRAM cache only if its training-time count exceeds a
//! threshold `t` — SHP had enough evidence to place it well. This module is
//! that statistics collector.

use serde::{Deserialize, Serialize};

/// Access counts per vector id, collected over a training query stream.
///
/// Counts are per *query*, not per lookup: duplicate ids within one query
/// count once, matching "how many queries contained each vector" (§4.3.2).
///
/// # Example
///
/// ```
/// use bandana_partition::AccessFrequency;
///
/// let queries: Vec<Vec<u32>> = vec![vec![0, 1, 1], vec![1, 2]];
/// let freq = AccessFrequency::from_queries(3, queries.iter().map(|q| q.as_slice()));
/// assert_eq!(freq.count(0), 1);
/// assert_eq!(freq.count(1), 2); // the duplicate inside query 0 counts once
/// assert_eq!(freq.count(2), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessFrequency {
    counts: Vec<u32>,
}

impl AccessFrequency {
    /// Collects query-level access counts for `num_vectors` ids.
    ///
    /// # Panics
    ///
    /// Panics if a query references an id `>= num_vectors`.
    pub fn from_queries<'a, I>(num_vectors: u32, queries: I) -> Self
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        let mut counts = vec![0u32; num_vectors as usize];
        let mut scratch: Vec<u32> = Vec::new();
        for q in queries {
            scratch.clear();
            scratch.extend_from_slice(q);
            scratch.sort_unstable();
            scratch.dedup();
            for &v in &scratch {
                counts[v as usize] = counts[v as usize].saturating_add(1);
            }
        }
        AccessFrequency { counts }
    }

    /// An all-zero frequency table (no training data).
    pub fn zeros(num_vectors: u32) -> Self {
        AccessFrequency { counts: vec![0; num_vectors as usize] }
    }

    /// Training-time query count of vector `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn count(&self, v: u32) -> u32 {
        self.counts[v as usize]
    }

    /// Number of vectors tracked.
    pub fn num_vectors(&self) -> u32 {
        self.counts.len() as u32
    }

    /// Whether vector `v` passes an admission threshold (`count > t`,
    /// strictly, as in §4.3.2: "accessed > t times during the SHP run").
    pub fn passes_threshold(&self, v: u32, t: u32) -> bool {
        self.count(v) > t
    }

    /// Fraction of vectors whose count exceeds `t` — useful for picking
    /// candidate thresholds.
    pub fn fraction_above(&self, t: u32) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().filter(|&&c| c > t).count() as f64 / self.counts.len() as f64
    }

    /// The raw counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_queries_not_lookups() {
        let queries: Vec<Vec<u32>> = vec![vec![5, 5, 5, 5], vec![5, 2]];
        let f = AccessFrequency::from_queries(8, queries.iter().map(|q| q.as_slice()));
        assert_eq!(f.count(5), 2);
        assert_eq!(f.count(2), 1);
        assert_eq!(f.count(0), 0);
    }

    #[test]
    fn threshold_is_strict() {
        let queries: Vec<Vec<u32>> = vec![vec![0, 1], vec![0, 1], vec![0, 2]];
        let f = AccessFrequency::from_queries(3, queries.iter().map(|q| q.as_slice()));
        assert!(f.passes_threshold(0, 2)); // count 3 > 2
        assert!(!f.passes_threshold(1, 2)); // count 2 is not > 2
        assert!(f.passes_threshold(1, 1));
    }

    #[test]
    fn fraction_above() {
        let queries: Vec<Vec<u32>> = vec![vec![0, 1], vec![0, 2], vec![0, 3]];
        let f = AccessFrequency::from_queries(4, queries.iter().map(|q| q.as_slice()));
        assert!((f.fraction_above(0) - 1.0).abs() < 1e-12); // all counted once+
        assert!((f.fraction_above(1) - 0.25).abs() < 1e-12); // only vector 0
        assert_eq!(f.fraction_above(100), 0.0);
    }

    #[test]
    fn zeros_and_empty() {
        let f = AccessFrequency::zeros(4);
        assert_eq!(f.num_vectors(), 4);
        assert_eq!(f.count(3), 0);
        assert!(!f.passes_threshold(3, 0));
        let empty = AccessFrequency::from_queries(0, std::iter::empty());
        assert_eq!(empty.fraction_above(0), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_query_panics() {
        let queries: Vec<Vec<u32>> = vec![vec![9]];
        let _ = AccessFrequency::from_queries(3, queries.iter().map(|q| q.as_slice()));
    }
}
