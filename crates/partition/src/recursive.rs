//! Two-stage (recursive) K-means, paper §4.2.1.
//!
//! Flat K-means runtime explodes with the number of clusters (Figure 7a), so
//! Bandana approximates it by clustering into a small number of first-stage
//! clusters (256 in the paper) and recursively sub-clustering each one.
//! Figure 8 shows this matches flat K-means' effective bandwidth while
//! Figure 7b shows the runtime stays nearly flat in the total sub-cluster
//! count.

use crate::kmeans::{kmeans, KMeansConfig};
use serde::{Deserialize, Serialize};

/// Configuration for [`two_stage_kmeans`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoStageConfig {
    /// First-stage cluster count (paper: 256).
    pub first_stage_k: usize,
    /// Total sub-clusters across the whole table (Figure 8 sweeps
    /// 256–65 536). Sub-cluster counts per first-stage cluster are allocated
    /// proportionally to cluster size.
    pub total_subclusters: usize,
    /// Lloyd iterations for both stages.
    pub iterations: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TwoStageConfig {
    fn default() -> Self {
        TwoStageConfig { first_stage_k: 256, total_subclusters: 8192, iterations: 20, seed: 0 }
    }
}

/// Runs two-stage K-means over row-major `data` and returns the placement
/// order (`order[position] = vector id`) with sub-clusters contiguous.
///
/// # Example
///
/// ```
/// use bandana_partition::{two_stage_kmeans, TwoStageConfig};
///
/// let data: Vec<f32> = (0..64).map(|i| (i / 8) as f32 * 10.0).collect();
/// let cfg = TwoStageConfig { first_stage_k: 4, total_subclusters: 8, iterations: 10, seed: 1 };
/// let order = two_stage_kmeans(&data, 1, &cfg);
/// let mut sorted = order.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
/// ```
///
/// # Panics
///
/// Panics on empty/misshaped data or zero cluster counts (see [`kmeans`]).
pub fn two_stage_kmeans(data: &[f32], dim: usize, config: &TwoStageConfig) -> Vec<u32> {
    assert!(config.total_subclusters > 0, "total subclusters must be non-zero");
    assert!(config.first_stage_k > 0, "first-stage k must be non-zero");
    let n = data.len() / dim;

    let first = kmeans(
        data,
        dim,
        &KMeansConfig { k: config.first_stage_k, iterations: config.iterations, seed: config.seed },
    );

    // Group point ids by first-stage cluster.
    let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); first.k];
    for (i, &c) in first.assignments.iter().enumerate() {
        clusters[c as usize].push(i as u32);
    }

    let mut order: Vec<u32> = Vec::with_capacity(n);
    for (ci, members) in clusters.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        // Proportional sub-cluster budget, at least 1.
        let sub_k = ((members.len() * config.total_subclusters) / n).max(1);
        if sub_k <= 1 || members.len() <= 2 {
            order.extend_from_slice(members);
            continue;
        }
        // Gather this cluster's rows and sub-cluster them.
        let mut sub_data = Vec::with_capacity(members.len() * dim);
        for &v in members {
            sub_data.extend_from_slice(&data[v as usize * dim..(v as usize + 1) * dim]);
        }
        let sub = kmeans(
            &sub_data,
            dim,
            &KMeansConfig {
                k: sub_k,
                iterations: config.iterations,
                seed: config.seed.wrapping_add(ci as u64 + 1),
            },
        );
        // Emit members sorted by (sub-cluster, id).
        let mut local: Vec<u32> = (0..members.len() as u32).collect();
        local.sort_by_key(|&i| (sub.assignments[i as usize], members[i as usize]));
        order.extend(local.iter().map(|&i| members[i as usize]));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(groups: usize, per_group: usize) -> Vec<f32> {
        (0..groups)
            .flat_map(|g| (0..per_group).map(move |i| g as f32 * 100.0 + (i % 7) as f32 * 0.5))
            .collect()
    }

    #[test]
    fn output_is_permutation() {
        let data = blob_data(4, 32);
        let cfg =
            TwoStageConfig { first_stage_k: 4, total_subclusters: 16, iterations: 8, seed: 2 };
        let order = two_stage_kmeans(&data, 1, &cfg);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..128).collect::<Vec<u32>>());
    }

    #[test]
    fn first_stage_blobs_stay_contiguous() {
        let data = blob_data(4, 32);
        let cfg =
            TwoStageConfig { first_stage_k: 4, total_subclusters: 16, iterations: 10, seed: 3 };
        let order = two_stage_kmeans(&data, 1, &cfg);
        // Each blob's members occupy one contiguous range of the order.
        for g in 0..4u32 {
            let positions: Vec<usize> =
                order.iter().enumerate().filter(|(_, &v)| v / 32 == g).map(|(p, _)| p).collect();
            let min = *positions.iter().min().unwrap();
            let max = *positions.iter().max().unwrap();
            assert_eq!(max - min + 1, positions.len(), "blob {g} fragmented");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blob_data(3, 20);
        let cfg = TwoStageConfig { first_stage_k: 3, total_subclusters: 9, iterations: 5, seed: 5 };
        assert_eq!(two_stage_kmeans(&data, 1, &cfg), two_stage_kmeans(&data, 1, &cfg));
    }

    #[test]
    fn single_subcluster_degenerates_to_first_stage() {
        let data = blob_data(2, 16);
        let cfg = TwoStageConfig { first_stage_k: 2, total_subclusters: 1, iterations: 5, seed: 1 };
        let order = two_stage_kmeans(&data, 1, &cfg);
        assert_eq!(order.len(), 32);
    }

    #[test]
    fn handles_more_subclusters_than_points() {
        let data = blob_data(2, 4);
        let cfg =
            TwoStageConfig { first_stage_k: 2, total_subclusters: 100, iterations: 5, seed: 1 };
        let order = two_stage_kmeans(&data, 1, &cfg);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<u32>>());
    }
}
