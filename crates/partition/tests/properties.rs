//! Property-based tests for the placement algorithms.

use bandana_partition::{
    average_fanout, kmeans, order_from_assignments, social_hash_partition, two_stage_kmeans,
    AccessFrequency, BlockLayout, Hypergraph, KMeansConfig, ShpConfig, TwoStageConfig,
};
use proptest::prelude::*;

fn queries_strategy(n: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0..n, 1..8), 0..60)
}

proptest! {
    /// SHP output is always a permutation, for any query set, size, block
    /// capacity, and seed.
    #[test]
    fn shp_is_a_permutation(
        n in 1u32..200,
        cap in 1usize..16,
        seed in any::<u64>(),
        raw_queries in queries_strategy(200)
    ) {
        let queries: Vec<Vec<u32>> = raw_queries
            .into_iter()
            .map(|q| q.into_iter().map(|v| v % n).collect())
            .collect();
        let cfg = ShpConfig { block_capacity: cap, iterations: 4, seed, parallel_depth: 1 };
        let order = social_hash_partition(n, queries.iter().map(|q| q.as_slice()), &cfg);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// SHP never increases average fanout relative to a random layout (it
    /// may tie on structureless inputs).
    #[test]
    fn shp_not_worse_than_random(
        seed in any::<u64>(),
        raw_queries in proptest::collection::vec(proptest::collection::vec(0u32..64, 2..6), 5..40)
    ) {
        let n = 64u32;
        let queries: Vec<Vec<u32>> = raw_queries;
        let cfg = ShpConfig { block_capacity: 8, iterations: 8, seed, parallel_depth: 0 };
        let order = social_hash_partition(n, queries.iter().map(|q| q.as_slice()), &cfg);
        let shp = BlockLayout::from_order(order, 8);
        let random = BlockLayout::random(n, 8, seed);
        let f_shp = average_fanout(&shp, queries.iter().map(|q| q.as_slice()));
        let f_rnd = average_fanout(&random, queries.iter().map(|q| q.as_slice()));
        prop_assert!(f_shp <= f_rnd + 0.35, "SHP fanout {f_shp} vs random {f_rnd}");
    }

    /// Layout round trip: position_of and vector_at are inverse bijections.
    #[test]
    fn layout_bijection(n in 1u32..300, cap in 1usize..40, seed in any::<u64>()) {
        let layout = BlockLayout::random(n, cap, seed);
        for v in 0..n {
            prop_assert_eq!(layout.vector_at(layout.position_of(v)), v);
        }
        let mut seen = 0u32;
        for b in 0..layout.num_blocks() {
            let members = layout.vectors_in_block(b);
            prop_assert!(members.len() <= cap);
            for &v in members {
                prop_assert_eq!(layout.block_of(v), b);
                seen += 1;
            }
        }
        prop_assert_eq!(seen, n);
    }

    /// K-means assignments are valid and the derived order is a permutation
    /// with contiguous clusters.
    #[test]
    fn kmeans_order_is_contiguous_permutation(
        n in 2usize..60,
        dim in 1usize..5,
        k in 1usize..10,
        seed in any::<u64>()
    ) {
        let data: Vec<f32> = (0..n * dim).map(|i| ((i * 37) % 101) as f32 / 10.0).collect();
        let result = kmeans(&data, dim, &KMeansConfig { k, iterations: 5, seed });
        prop_assert_eq!(result.assignments.len(), n);
        prop_assert!(result.assignments.iter().all(|&a| (a as usize) < result.k));
        let order = order_from_assignments(&result.assignments);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
        // Clusters occupy contiguous ranges.
        let clusters: Vec<u32> = order.iter().map(|&v| result.assignments[v as usize]).collect();
        let mut deduped = clusters.clone();
        deduped.dedup();
        let mut unique = deduped.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(deduped.len(), unique.len(), "cluster ranges fragmented");
    }

    /// Two-stage K-means is a permutation for any shape.
    #[test]
    fn two_stage_is_permutation(
        n in 2usize..60,
        first in 1usize..6,
        total in 1usize..24,
        seed in any::<u64>()
    ) {
        let data: Vec<f32> = (0..n * 2).map(|i| ((i * 13) % 97) as f32).collect();
        let cfg = TwoStageConfig { first_stage_k: first, total_subclusters: total, iterations: 4, seed };
        let order = two_stage_kmeans(&data, 2, &cfg);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }

    /// Hypergraph CSR transpose is exact: vertex-edge incidence matches the
    /// forward edge lists, pin for pin.
    #[test]
    fn hypergraph_transpose_consistent(raw_queries in queries_strategy(50)) {
        let h = Hypergraph::from_queries(50, raw_queries.iter().map(|q| q.as_slice()));
        let mut pins_forward = 0usize;
        for e in 0..h.num_edges() {
            for &v in h.edge(e) {
                prop_assert!(h.edges_of(v).contains(&(e as u32)));
                pins_forward += 1;
            }
        }
        prop_assert_eq!(pins_forward, h.num_pins());
    }

    /// Access frequencies count each query at most once per vector.
    #[test]
    fn freq_bounded_by_query_count(raw_queries in queries_strategy(40)) {
        let nq = raw_queries.len() as u32;
        let freq = AccessFrequency::from_queries(40, raw_queries.iter().map(|q| q.as_slice()));
        for v in 0..40 {
            prop_assert!(freq.count(v) <= nq);
        }
    }
}
