//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never instantiates a serializer in this offline environment (artifact
//! output is hand-rendered text/JSON). The traits here are satisfied by
//! every type via blanket impls, and the re-exported derives expand to
//! nothing, so `#[derive(Serialize, Deserialize)]` stays a no-op marker.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
