//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided, implemented over
//! `std::thread::scope`. One semantic difference from upstream crossbeam:
//! a panicking child propagates the panic out of `scope` (std behaviour)
//! instead of surfacing it through the returned `Result`, so callers'
//! `.expect("worker thread panicked")` still reports the failure.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with crossbeam's `spawn(|scope| ...)` signature.

    /// A handle for spawning threads scoped to a `scope` call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_see_borrowed_state() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
