//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros — and
//! actually runs the closures, printing per-benchmark mean wall-clock
//! times. No statistics, plots, or baselines: just honest timings so
//! `cargo bench` works offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the compiler fence against over-optimisation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Work-per-iteration annotation (printed alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measures one benchmark routine.
pub struct Bencher {
    samples: usize,
    /// (total duration, iterations) accumulated by the routine.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then the measured batch.
        black_box(routine());
        let iters = self.samples as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// cost from the mean only in the trivial per-iteration sense (setup is
    /// re-run per iteration and subtracted by measuring around the routine
    /// alone).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let iters = self.samples as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.measured = Some((total, iters));
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let Some((total, iters)) = bencher.measured else {
        println!("{name:<40} (no measurement recorded)");
        return;
    };
    let mean = total.as_secs_f64() / iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!("{name:<40} {:>12.3} ms/iter{rate}", mean * 1e3);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    fn samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.samples(), measured: None };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.samples(), measured: None };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, measured: None };
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, throughput: None, sample_size: None }
    }
}

/// Declares a group-runner function, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 3);
    }

    #[test]
    fn groups_run_batched_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10)).sample_size(2);
        group.bench_with_input(BenchmarkId::new("x", 1), &5usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
