//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API the workspace uses: the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`/`choose`). Streams
//! are deterministic per seed; the workspace never depends on
//! bit-compatibility with upstream rand.

#![forbid(unsafe_code)]

pub use rand_core::{RngCore, SeedableRng};

/// Types sampleable uniformly from their "standard" distribution
/// (`rng.gen::<T>()`): floats in `[0, 1)`, integers over their full range.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Unbiased-enough uniform sampling below a bound (fixed-point multiply).
#[inline]
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        (rng.next_u64() as u128 * bound) >> 64
    } else {
        // Bound up to 2^65 (full-range inclusive ranges): take 128 bits.
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        wide % bound
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Standard generators.

    use rand_core::chacha::ChaCha12Rng;
    use rand_core::{RngCore, SeedableRng};

    /// The default deterministic generator (ChaCha12, as in upstream rand).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(ChaCha12Rng);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            StdRng(ChaCha12Rng::from_seed(seed))
        }
    }
}

pub mod seq {
    //! Sequence helpers: shuffling and random element choice.

    use super::Rng;
    use rand_core::RngCore;

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 9;
            let y = rng.gen_range(0u32..=5);
            assert!(y <= 5);
        }
        assert!(seen_lo && seen_hi, "range endpoints never sampled");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
