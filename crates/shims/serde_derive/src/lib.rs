//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! marker (no serializer is ever instantiated offline), so these derives
//! expand to nothing. The blanket impls in the sibling `serde` shim make
//! every type satisfy the trait bounds.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
