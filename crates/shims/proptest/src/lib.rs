//! Offline stand-in for the `proptest` crate.
//!
//! Covers the API surface the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, [`prop_oneof!`],
//! [`arbitrary::any`], range and tuple strategies, [`Strategy::prop_map`],
//! and [`collection::vec`]. Cases are generated from a deterministic
//! per-test seed; there is **no shrinking** — a failing case panics with
//! the assertion message, and the deterministic seeding makes the failure
//! reproducible by re-running the test.
//!
//! The case count defaults to 64 and can be overridden with the
//! `PROPTEST_CASES` environment variable, like upstream proptest.

#![forbid(unsafe_code)]

use rand_core::chacha::ChaCha12Rng;
use rand_core::{RngCore, SeedableRng};

/// The RNG handed to strategies during generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: ChaCha12Rng,
}

impl TestRng {
    fn for_case(test_seed: u64, case: u64) -> Self {
        TestRng {
            inner: ChaCha12Rng::seed_from_u64(test_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value below `bound` (which must be positive).
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        if bound <= u64::MAX as u128 {
            (self.next_u64() as u128 * bound) >> 64
        } else {
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
///
/// Unlike upstream proptest there is no shrinking tree; a strategy simply
/// produces values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// A uniform choice between type-erased strategies (built by
/// [`prop_oneof!`]).
pub struct Union<V> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates the union.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty.
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.variants.len() as u128) as usize;
        self.variants[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

pub mod arbitrary {
    //! The `any::<T>()` strategy.

    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy returned by [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u128;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Drives one property: generates `PROPTEST_CASES` (default 64) inputs
/// from a deterministic per-test seed and runs the body on each.
pub fn run_cases<F: FnMut(&mut TestRng)>(test_name: &str, mut body: F) {
    let cases: u64 =
        std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64);
    // FNV-1a over the test name: stable across runs and processes.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..cases {
        let mut rng = TestRng::for_case(seed, case);
        body(&mut rng);
    }
}

/// Declares property tests: each function's arguments are drawn from the
/// strategies after `in`, and the body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                    $body
                });
            }
        )+
    };
}

/// Asserts inside a property body (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

pub mod prelude {
    //! The glob import used by property-test files.

    pub use crate::arbitrary::any;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Strategy, TestRng, Union};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Generated values respect their strategies' bounds.
        #[test]
        fn ranges_and_vecs_in_bounds(
            x in 3u64..10,
            y in 0u32..=5,
            v in crate::collection::vec(0usize..7, 2..9),
            (a, b) in (0u8..4, 0.0f64..1.0),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 7));
            prop_assert!(a < 4);
            prop_assert!((0.0..1.0).contains(&b));
        }

        /// prop_oneof + prop_map compose.
        #[test]
        fn oneof_and_map(which in prop_oneof![(0u64..5).prop_map(|x| x * 2), (10u64..12).prop_map(|x| x)]) {
            prop_assert!(which < 12);
            prop_assert!(which % 2 == 0 || which >= 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        crate::run_cases("determinism", |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        crate::run_cases("determinism", |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }
}
