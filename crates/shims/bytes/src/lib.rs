//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, reference-counted byte buffer with
//! O(1) `clone` and zero-copy `slice`, covering the API surface the
//! workspace uses (`From<Vec<u8>>`, `slice`, `as_ref`, `len`, `Deref`,
//! `from_owner`).
//!
//! Storage is an `Arc<Vec<u8>>` rather than an `Arc<[u8]>`: converting an
//! owned `Vec` never copies the payload bytes, and an already-shared
//! buffer (e.g. one handed out by `nvm_sim::BlockBufPool`) becomes a
//! `Bytes` through [`Bytes::from_owner`] with a refcount bump only — no
//! allocation at all.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable view into shared byte storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::new(Vec::new()), start: 0, end: 0 }
    }

    /// Wraps an already-shared buffer without copying or allocating: the
    /// view covers the whole `Vec` and shares ownership with every other
    /// `Arc` clone (the real `bytes` crate's `from_owner`).
    ///
    /// Holders of other clones must treat the contents as frozen for as
    /// long as any `Bytes` view is alive; `nvm_sim::BlockBufPool` relies
    /// on the refcount returning to one before it reuses a buffer.
    pub fn from_owner(owner: Arc<Vec<u8>>) -> Self {
        let end = owner.len();
        Bytes { data: owner, start: 0, end }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range reversed: {begin}..{end}");
        assert!(end <= len, "slice range {begin}..{end} out of bounds for length {len}");
        Bytes { data: Arc::clone(&self.data), start: self.start + begin, end: self.start + end }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_owner(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_clone_share_storage() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(s2.as_ref(), &[3, 4]);
        assert_eq!(b.len(), 6);
        assert_eq!(b.clone(), b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_slice_panics() {
        let b = Bytes::from(vec![1u8, 2]);
        let _ = b.slice(0..3);
    }

    #[test]
    fn from_owner_shares_without_copying() {
        let owner = Arc::new(vec![5u8, 6, 7]);
        let b = Bytes::from_owner(Arc::clone(&owner));
        assert_eq!(b.as_ref(), &[5, 6, 7]);
        // The view shares the exact storage: owner + b = 2 references.
        assert_eq!(Arc::strong_count(&owner), 2);
        let s = b.slice(1..);
        assert_eq!(Arc::strong_count(&owner), 3);
        drop((b, s));
        assert_eq!(Arc::strong_count(&owner), 1);
    }
}
