//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-`Result` API:
//! `lock()`/`read()`/`write()` return guards directly, treating poisoning
//! as recoverable (the data is still returned, as parking_lot — which has
//! no poisoning — would).

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the lock.
    pub fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(l.into_inner(), 8);
    }
}
