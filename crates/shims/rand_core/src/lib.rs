//! Offline stand-in for the `rand_core` crate.
//!
//! This workspace builds in an environment without a crates.io mirror, so
//! the external RNG crates are replaced by small local implementations that
//! cover exactly the API surface the workspace uses: [`RngCore`],
//! [`SeedableRng`], and the ChaCha generators (in [`chacha`]).
//!
//! The ChaCha block function is the real RFC 8439 permutation; streams are
//! deterministic per seed, which is all the workspace relies on (it never
//! assumes bit-compatibility with the upstream crates).

#![forbid(unsafe_code)]

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 like the
    /// upstream crate does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod chacha {
    //! ChaCha stream-cipher RNGs (RFC 8439 permutation, 64-bit counter).

    use super::{RngCore, SeedableRng};

    #[inline(always)]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// One ChaCha keystream generator with `R` double-rounds (ChaCha12 has
    /// `R = 6`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ChaChaRng<const R: usize> {
        key: [u32; 8],
        counter: u64,
        buf: [u32; 16],
        /// Next unread word in `buf`; 16 means "refill needed".
        idx: usize,
    }

    impl<const R: usize> ChaChaRng<R> {
        fn refill(&mut self) {
            let mut state = [0u32; 16];
            state[0] = 0x6170_7865;
            state[1] = 0x3320_646e;
            state[2] = 0x7962_2d32;
            state[3] = 0x6b20_6574;
            state[4..12].copy_from_slice(&self.key);
            state[12] = self.counter as u32;
            state[13] = (self.counter >> 32) as u32;
            state[14] = 0;
            state[15] = 0;
            let initial = state;
            for _ in 0..R {
                // Column round.
                quarter_round(&mut state, 0, 4, 8, 12);
                quarter_round(&mut state, 1, 5, 9, 13);
                quarter_round(&mut state, 2, 6, 10, 14);
                quarter_round(&mut state, 3, 7, 11, 15);
                // Diagonal round.
                quarter_round(&mut state, 0, 5, 10, 15);
                quarter_round(&mut state, 1, 6, 11, 12);
                quarter_round(&mut state, 2, 7, 8, 13);
                quarter_round(&mut state, 3, 4, 9, 14);
            }
            for (word, init) in state.iter_mut().zip(initial.iter()) {
                *word = word.wrapping_add(*init);
            }
            self.buf = state;
            self.counter = self.counter.wrapping_add(1);
            self.idx = 0;
        }
    }

    impl<const R: usize> RngCore for ChaChaRng<R> {
        fn next_u32(&mut self) -> u32 {
            if self.idx >= 16 {
                self.refill();
            }
            let w = self.buf[self.idx];
            self.idx += 1;
            w
        }

        fn next_u64(&mut self) -> u64 {
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            lo | (hi << 32)
        }
    }

    impl<const R: usize> SeedableRng for ChaChaRng<R> {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks_exact(4).enumerate() {
                key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            ChaChaRng { key, counter: 0, buf: [0; 16], idx: 16 }
        }
    }

    /// ChaCha with 8 rounds.
    pub type ChaCha8Rng = ChaChaRng<4>;
    /// ChaCha with 12 rounds (the `StdRng` algorithm).
    pub type ChaCha12Rng = ChaChaRng<6>;
    /// ChaCha with 20 rounds.
    pub type ChaCha20Rng = ChaChaRng<10>;
}

#[cfg(test)]
mod tests {
    use super::chacha::ChaCha12Rng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        let mut c = ChaCha12Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_are_roughly_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let n = 100_000;
        let mut ones = 0u64;
        for _ in 0..n {
            ones += rng.next_u64().count_ones() as u64;
        }
        let mean_bits = ones as f64 / n as f64;
        assert!((mean_bits - 32.0).abs() < 0.1, "mean set bits {mean_bits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
