//! Offline stand-in for the `rand_chacha` crate: re-exports the ChaCha
//! generators implemented in the local `rand_core` shim.

#![forbid(unsafe_code)]

pub use rand_core;

pub use rand_core::chacha::{ChaCha12Rng, ChaCha20Rng, ChaCha8Rng};
