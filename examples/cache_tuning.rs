//! Walkthrough of Bandana's cache-tuning machinery (paper §4.3): why blind
//! prefetching fails, how threshold admission fixes it, and how miniature
//! caches pick the threshold automatically.
//!
//! ```text
//! cargo run --release --example cache_tuning
//! ```

use bandana::cache::{AdmissionPolicy, MiniatureCacheSet, PrefetchCacheSim};
use bandana::partition::{social_hash_partition, AccessFrequency, BlockLayout, ShpConfig};
use bandana::prelude::*;

fn main() {
    // One hot table, like the paper's table 2.
    let spec = ModelSpec::paper_scaled(10_000);
    let table = 1usize;
    let n = spec.tables[table].num_vectors;
    let mut generator = TraceGenerator::new(&spec, 77);
    let train = generator.generate_requests(800);
    let eval = generator.generate_requests(400);

    // SHP placement from the training queries.
    let order = social_hash_partition(
        n,
        train.table_queries(table),
        &ShpConfig { block_capacity: 32, iterations: 12, seed: 1, parallel_depth: 2 },
    );
    let layout = BlockLayout::from_order(order, 32);
    let freq = AccessFrequency::from_queries(n, train.table_queries(table));
    let stream = eval.table_stream(table);
    let cache_size = 100usize;

    let run = |policy: AdmissionPolicy| {
        let mut sim = PrefetchCacheSim::new(&layout, cache_size, policy, freq.clone());
        for &v in &stream {
            sim.lookup(v);
        }
        *sim.metrics()
    };

    println!(
        "table 2 analogue: {n} vectors, cache {cache_size} vectors, {} lookups\n",
        stream.len()
    );

    let baseline = run(AdmissionPolicy::None);
    println!("no prefetching (baseline):   {} block reads", baseline.block_reads);

    // §4.3 step 1: treat prefetches like demand reads — thrashing.
    let all = run(AdmissionPolicy::All { position: 0.0 });
    println!(
        "prefetch-all at queue top:   {} block reads ({:+.1}%)",
        all.block_reads,
        (baseline.block_reads as f64 / all.block_reads as f64 - 1.0) * 100.0
    );

    // §4.3.1: lower insertion position and shadow-cache filtering.
    let lower = run(AdmissionPolicy::All { position: 0.7 });
    println!(
        "prefetch-all at position .7: {} block reads ({:+.1}%)",
        lower.block_reads,
        (baseline.block_reads as f64 / lower.block_reads as f64 - 1.0) * 100.0
    );
    let shadow = run(AdmissionPolicy::Shadow);
    println!(
        "shadow-cache admission:      {} block reads ({:+.1}%)",
        shadow.block_reads,
        (baseline.block_reads as f64 / shadow.block_reads as f64 - 1.0) * 100.0
    );

    // §4.3.2: frequency-threshold admission — sweep t.
    println!("\nthreshold sweep:");
    for t in [1u32, 2, 4, 8, 16] {
        let m = run(AdmissionPolicy::Threshold { t });
        println!(
            "  t = {t:>2}: {} block reads ({:+.1}%), prefetch usefulness {:.0}%",
            m.block_reads,
            (baseline.block_reads as f64 / m.block_reads as f64 - 1.0) * 100.0,
            m.prefetch_usefulness() * 100.0
        );
    }

    // §4.3.3: let miniature caches pick t from a sampled stream.
    let candidates = [1u32, 2, 4, 8, 16];
    for rate in [1.0f64, 0.25, 0.1] {
        let mut minis = MiniatureCacheSet::new(&layout, &freq, cache_size, rate, &candidates, 3);
        for &v in &stream {
            minis.observe(v);
        }
        println!(
            "\nminiature caches @ {:>4.0}% sampling chose t = {} (estimated gains: {:?})",
            rate * 100.0,
            minis.best_threshold(),
            minis
                .estimated_gains()
                .iter()
                .map(|(t, g)| format!("t{t}:{:+.0}%", g * 100.0))
                .collect::<Vec<_>>()
        );
    }
}
