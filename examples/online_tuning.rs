//! The serving engine's control plane under workload drift: online
//! threshold re-tuning and per-tenant SLO enforcement in one loop.
//!
//! The paper runs its miniature caches continuously against production
//! traffic (§4.3.3). In the engine that loop is the **metrics bus**: a
//! background thread that rotates per-tenant recent-latency windows,
//! snapshots the engine, and runs the registered `Controller`s — here
//! the online tuner (admission-threshold hot-swaps from sampled
//! lookups), the cache budget controller (per-table DRAM shares
//! re-solved online from sampled accesses, applied live to the shard
//! caches), and the `SloController` (a tenant blowing its recent-window
//! p99 budget is shed at admission before its backlog can poison the
//! other tenants' lanes).
//!
//! This example drives a drifting workload through a two-tenant engine:
//! a latency-sensitive `ranking` tenant with an SLO, and a `backfill`
//! flood that oversubscribes the engine. Watch the breaker trip the
//! flood (its sheds land in the `slo` bucket), the ranking tenant's
//! recent-window p99 stay under its budget, and the tuner keep swapping
//! thresholds as the hot set rotates — then read it all back the way an
//! operator would, over the HTTP admin plane (`GET /metrics`,
//! `GET /trace`; see `docs/OPERATIONS.md`).
//!
//! ```text
//! cargo run --release --example online_tuning
//! ```

use bandana::prelude::*;
use bandana::serve::net::http_request;
use bandana::serve::{
    render_audit_log, render_tenant_table, run_open_loop_with, AdminServer, CacheBudgetSettings,
    ControlConfig, LoadGenConfig, OnlineTunerSettings, ServeConfig, ShardedEngine,
    SloControllerConfig, TraceConfig,
};
use std::sync::Arc;
use std::time::Duration;

const RANKING: TenantId = TenantId(1);
const BACKFILL: TenantId = TenantId(2);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ModelSpec::paper_scaled(10_000);

    // Train placement and admission on an undrifted window, exactly like
    // a production snapshot taken before traffic shifted.
    let drift = DriftConfig { requests_per_epoch: 3_000, rotate_fraction: 0.25 };
    let mut generator = DriftingTraceGenerator::new(&spec, 31337, drift);
    let train = generator.generate_requests(600);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let store = BandanaStore::build(
        &spec,
        &embeddings,
        &train,
        BandanaConfig::default().with_cache_vectors(1_000),
    )?;

    // The engine: ranking carries a 50 ms recent-window p99 budget;
    // backfill gets most of the DRR weight, so without the SLO breaker
    // its flood would starve ranking outright. The control plane runs
    // the tuner and the SLO controller on a 5 ms bus tick.
    let engine = Arc::new(ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(2)
            .with_queue_capacity(64)
            .with_shed_policy(ShedPolicy::DropNewest)
            .with_batch_window(Duration::from_micros(200))
            .with_max_batch(16)
            .with_device_queue(4)
            .with_control(ControlConfig {
                tick: Duration::from_millis(5),
                window_slot: Duration::from_millis(50),
                window_slots: 8,
            })
            .with_tenant(RANKING, TenantSpec::new(1).with_slo_p99(Duration::from_millis(50)))
            .with_tenant(BACKFILL, TenantSpec::new(9).with_slo_p99(Duration::from_millis(10)))
            .with_tuner(OnlineTunerSettings {
                epoch_lookups: 10_000,
                sample_every: 8,
                ..Default::default()
            })
            // Close the paper's DRAM-division loop online too: per-table
            // hit-rate curves from sampled accesses, the fixed 1,000-vector
            // budget re-solved as the hot sets rotate. A low hysteresis
            // lets the drift run's modest re-divisions through.
            .with_cache_budget(CacheBudgetSettings {
                window_lookups: 8_192,
                sample_every: 4,
                hysteresis: 0.02,
                ..Default::default()
            })
            .with_slo_controller(SloControllerConfig {
                // A tenant that refloods the moment it is released earns
                // 8× longer holds: the breaker converges to keeping a
                // sustained offender shed instead of duty-cycling it.
                base_hold: Duration::from_secs(1),
                backoff: 8,
                ..Default::default()
            })
            // Flight-record one request in 64 so the drift run leaves a
            // Perfetto-loadable trace behind.
            .with_trace(TraceConfig::sampled(64)),
    )?);

    // The build-time DRAM division, before any traffic: the budget
    // controller will re-solve this split online as the hot sets rotate.
    let partition_before = engine.metrics().cache_partition;

    // The operator's window into the run: the HTTP admin plane serves
    // metrics, the audit log, and traces while traffic flows (the
    // docs/OPERATIONS.md workflow, minus curl).
    let admin = AdminServer::start(Arc::clone(&engine), "127.0.0.1:0")?;

    // Offer a drifting flood, open-loop: one ranking request per seven
    // backfill requests, at several times what the engine can serve. One
    // reactor thread is plenty (and right on a single-core host).
    println!("offering a drifting 2-tenant flood for ~3 seconds...");
    let trace = generator.generate_requests(30_000);
    let mut slots = vec![BACKFILL; 8];
    slots[0] = RANKING;
    let report = run_open_loop_with(
        &engine,
        &slots,
        &trace,
        &ArrivalProcess::Poisson { rate_rps: 10_000.0 },
        7,
        LoadGenConfig { reactors: 1 },
    );
    println!(
        "offered {} requests in {:.1}s: {} completed, {} shed\n",
        report.submitted, report.wall_s, report.completed, report.shed
    );

    // What the controllers saw and did.
    let snapshot = engine.snapshot();
    println!(
        "metrics bus: tick {} (recent window {:?}), {} queued right now",
        snapshot.tick,
        snapshot.window_span,
        snapshot.queued()
    );
    // The same numbers an external scraper would see: GET /metrics
    // serves render_prometheus verbatim over HTTP.
    let (status, metrics) = http_request(admin.local_addr(), "GET", "/metrics", None)?;
    let slo_line = metrics
        .lines()
        .find(|l| l.starts_with("bandana_tenant_shed_reason_total") && l.contains("slo"))
        .unwrap_or("bandana_tenant_shed_reason_total{reason=\"slo\"} <missing>");
    println!("GET /metrics → {status}, the breaker's sheds as a scraper sees them:\n  {slo_line}");
    // Flight recorder: fetch the sampled request lifecycles as Chrome
    // trace JSON over the admin plane — the same bytes `curl
    // host:port/trace > trace.json` would capture — and save them for
    // Perfetto or chrome://tracing.
    let trace_path = "trace_online_tuning.json";
    let (_, trace_json) = http_request(admin.local_addr(), "GET", "/trace", None)?;
    std::fs::write(trace_path, trace_json)?;
    println!(
        "wrote a flight-recorder trace of {} sampled requests to {trace_path} (via GET /trace)",
        engine.request_traces().len()
    );
    admin.shutdown();
    let m = Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("the admin plane dropped its engine reference"))
        .shutdown();
    println!(
        "control plane: {} bus ticks, {} actions applied, {} tuner hot-swaps\n",
        m.control_ticks, m.control_actions, m.tuner_swaps
    );
    print!(
        "{}",
        render_tenant_table(&m.per_tenant, |id| match id {
            RANKING => "ranking".into(),
            BACKFILL => "backfill".into(),
            _ => "default".into(),
        })
    );
    // The DRAM division the budget controller converged on, next to the
    // build-time split it started from.
    println!(
        "\ncache budget controller: {} re-division solves, {} SetCachePartition moves applied",
        m.rebudget_solves, m.rebudget_applied
    );
    println!("  table   entries before   entries after   target");
    for after in &m.cache_partition {
        let before = partition_before
            .iter()
            .find(|p| p.table == after.table)
            .map_or(0, |p| p.capacity_entries);
        println!(
            "  {:>5}   {:>14}   {:>13}   {:>6}",
            after.table, before, after.capacity_entries, after.target_entries
        );
    }
    let rebudget_moves =
        m.audit.iter().filter(|e| e.controller == "cache-budget").collect::<Vec<_>>();
    println!("\nrebudget audit entries ({} retained):", rebudget_moves.len());
    for e in &rebudget_moves {
        println!("  tick {:>6}  {}  — {}", e.tick, e.action, e.cause);
    }

    println!("\ncontrol-plane audit log ({} retained decisions):", m.audit.len());
    print!("{}", render_audit_log(&m.audit));

    let ranking = m.per_tenant.iter().find(|t| t.id == RANKING).expect("ranking registered");
    let backfill = m.per_tenant.iter().find(|t| t.id == BACKFILL).expect("backfill registered");
    println!(
        "\nthe breaker shed the backfill flood {} times at admission;\n\
         ranking's recent-window p99 {} vs its {} budget",
        backfill.shed_reasons.slo,
        bandana::serve::fmt_secs(ranking.recent.p99_s),
        bandana::serve::fmt_secs(ranking.slo_p99.map(|d| d.as_secs_f64()).unwrap_or_default()),
    );
    Ok(())
}
