//! Online threshold re-tuning under workload drift.
//!
//! The paper runs its miniature caches continuously against production
//! traffic (§4.3.3). This example simulates a day in which a table's
//! traffic shifts between epochs — from broad cold scans to concentrated
//! hot-set traffic — and shows the `OnlineTuner` adapting the admission
//! threshold, plus the trace being persisted and reloaded byte-for-byte.
//!
//! ```text
//! cargo run --release --example online_tuning
//! ```

use bandana::core::online::{OnlineTuner, OnlineTunerConfig};
use bandana::partition::{social_hash_partition, AccessFrequency, BlockLayout, ShpConfig};
use bandana::prelude::*;
use bandana::trace::{read_trace, write_trace};

fn main() -> std::io::Result<()> {
    let spec = ModelSpec::paper_scaled(10_000);
    let table = 1usize;
    let n = spec.tables[table].num_vectors;
    let mut generator = TraceGenerator::new(&spec, 31337);
    let train = generator.generate_requests(600);

    // Persist the training trace and reload it — consumers downstream see
    // identical placement inputs (id multisets per query are preserved).
    let mut buf = Vec::new();
    write_trace(&mut buf, &train)?;
    let train = read_trace(&mut buf.as_slice())?;
    println!("training trace: {} requests, {} bytes on disk", train.requests.len(), buf.len());

    let order = social_hash_partition(
        n,
        train.table_queries(table),
        &ShpConfig { block_capacity: 32, iterations: 12, seed: 9, parallel_depth: 2 },
    );
    let layout = BlockLayout::from_order(order, 32);
    let freq = AccessFrequency::from_queries(n, train.table_queries(table));

    let config = OnlineTunerConfig {
        cache_capacity: 100,
        sampling_rate: 0.5,
        candidate_thresholds: vec![1, 2, 4, 8, 1_000_000],
        epoch_lookups: 20_000,
        salt: 17,
    };
    let mut tuner = OnlineTuner::new(&layout, &freq, config);

    // Phase 1: normal traffic (reuses the trained distribution).
    println!("\nphase 1: trained traffic distribution");
    let normal = generator.generate_requests(600);
    for ids in normal.table_queries(table) {
        for &v in ids {
            if let Some(d) = tuner.observe(v) {
                println!(
                    "  epoch {:>2}: threshold -> {:<8} (estimated gain {:+.1}%)",
                    d.epoch,
                    d.threshold,
                    d.estimated_gain * 100.0
                );
            }
        }
    }

    // Phase 2: drift — traffic becomes a cold uniform scan (prefetching
    // can no longer pay; the tuner should move to a blocking threshold).
    println!("\nphase 2: drift to cold uniform scans");
    let mut v = 0u32;
    for _ in 0..60_000 {
        v = (v + 1) % n;
        if let Some(d) = tuner.observe(v) {
            println!(
                "  epoch {:>2}: threshold -> {:<8} (estimated gain {:+.1}%)",
                d.epoch,
                d.threshold,
                d.estimated_gain * 100.0
            );
        }
    }

    println!(
        "\ncompleted {} tuning epochs; current policy: {:?}",
        tuner.epochs(),
        tuner.current_policy()
    );
    Ok(())
}
