//! Multi-tenant QoS: weighted tenants sharing one serving engine.
//!
//! Two tenants flood a deliberately small engine — a ranking service at
//! DRR weight 9 and a batch backfill at weight 1 — plus a High-class
//! health probe capped by an admission quota. Under overload the shards'
//! weighted queues (strict priority across classes, deficit round-robin
//! within a class) divide completions by the registered weights, the
//! probe cuts through the backlog, and the quota sheds the probe's
//! over-eager burst — all visible in `EngineMetrics::per_tenant`.
//!
//! The ranking tenant drives the ticket API the way a production caller
//! would: one thread keeps a pipeline of `ResponseTicket`s in flight and
//! collects typed responses out of order. The floods submit with
//! `ShedPolicy::Block`, so a full lane parks the submitter instead of
//! burning CPU — the overload lives in the queues, not in the scheduler.
//!
//! After the flood, the same engine goes on the wire: a fourth tenant is
//! registered *live* through the HTTP admin plane (`POST /tenants`) and
//! served over the binary TCP protocol (`docs/PROTOCOL.md`) with
//! pipelined, out-of-order completion.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use bandana::prelude::*;
use bandana::serve::net::http_request;
use bandana::serve::{
    render_audit_log, render_tenant_table, ServeConfig, ServeError, ShardedEngine, TraceConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const RANKING: TenantId = TenantId(1);
const BACKFILL: TenantId = TenantId(2);
const PROBE: TenantId = TenantId(3);
/// Registered *live* over the admin plane, then served over TCP.
const WIRE: TenantId = TenantId(4);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ModelSpec::test_small();
    let mut generator = TraceGenerator::new(&spec, 42);
    let training = generator.generate_requests(500);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let store = BandanaStore::build(
        &spec,
        &embeddings,
        &training,
        BandanaConfig::default().with_cache_vectors(512),
    )?;

    // A small engine that overloads visibly: one shard, short lanes,
    // block reads charged through the NVM queue model. Arc'd so the
    // network front-end can share it after the in-process flood.
    let engine = Arc::new(ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(1)
            .with_queue_capacity(16)
            .with_device_queue(2)
            .with_tenant(RANKING, TenantSpec::new(9))
            .with_tenant(BACKFILL, TenantSpec::new(1))
            .with_tenant(PROBE, TenantSpec::new(1).with_class(PriorityClass::High).with_quota(1))
            // Flight-record one request in 16: the trace shows the probe's
            // batches interleaving with both floods on the single shard.
            .with_trace(TraceConfig::sampled(16)),
    )?);

    let trace = generator.generate_requests(128);
    println!("flooding 1 shard from two weighted tenants for 400 ms...\n");

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Ranking (weight 9): a single reactor thread pipelines tickets
        // and reaps completions out of order.
        let ranking = engine.client(RANKING).expect("ranking tenant");
        let stop_ref = &stop;
        let requests = &trace.requests;
        scope.spawn(move || {
            let mut pending = std::collections::VecDeque::new();
            let mut i = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                if let Ok(ticket) = ranking.submit(&requests[i % requests.len()]) {
                    pending.push_back(ticket);
                }
                i += 1;
                while let Some(front) = pending.front_mut() {
                    match front.try_take() {
                        Ok(Some(_)) => {
                            pending.pop_front();
                        }
                        _ => break,
                    }
                }
            }
            for mut ticket in pending {
                let _ = ticket.wait();
            }
        });

        // Backfill (weight 1): fire-and-forget flood.
        let backfill = engine.client(BACKFILL).expect("backfill tenant");
        scope.spawn(move || {
            let mut i = 0usize;
            while !stop_ref.load(Ordering::Relaxed) {
                let _ = backfill.submit(&requests[i % requests.len()]);
                i += 1;
            }
        });

        // The probe (High class, quota 1) cuts through the overload: it
        // is scheduled before both Normal-class floods.
        let probe = engine.client(PROBE).expect("probe tenant");
        let mut probe_latency = Duration::ZERO;
        let mut probes = 0u32;
        let started = Instant::now();
        while started.elapsed() < Duration::from_millis(400) {
            let response = probe
                .request()
                .keys(0, &[1, 2, 3])
                .deadline(Duration::from_secs(1))
                .call()
                .expect("probe call");
            assert!(response.status.is_ok());
            probe_latency += response.e2e;
            probes += 1;
            std::thread::sleep(Duration::from_millis(10));
        }

        // An over-eager probe burst: quota 1 + one ticket already in
        // flight ⇒ every extra submission sheds at admission.
        let held = probe.submit(&trace.requests[0]).expect("probe ticket");
        let mut quota_sheds = 0u32;
        for _ in 0..5 {
            if matches!(probe.submit(&trace.requests[0]), Err(ServeError::QuotaExceeded)) {
                quota_sheds += 1;
            }
        }
        drop(held);
        stop.store(true, Ordering::Relaxed);
        println!(
            "probe (High class): {probes} calls, mean e2e {:.1} µs — unharmed by the flood; \
             quota shed {quota_sheds}/5 burst submissions",
            probe_latency.as_secs_f64() / f64::from(probes.max(1)) * 1e6
        );
    });
    engine.drain();

    // ---- The same engine, over the wire ---------------------------------
    // Stand up the TCP front-end and the HTTP admin plane, register a
    // fourth tenant *live* (lanes appear on every shard queue, no
    // restart), and serve it over the socket protocol with pipelined
    // out-of-order reaping — the flow docs/PROTOCOL.md specifies.
    let server = bandana::serve::NetServer::start(
        Arc::clone(&engine),
        bandana::serve::NetServerConfig::default(),
    )?;
    let admin = bandana::serve::AdminServer::start(Arc::clone(&engine), "127.0.0.1:0")?;
    let (status, body) =
        http_request(admin.local_addr(), "POST", "/tenants", Some("id=4&weight=2&class=high"))?;
    println!("\nPOST /tenants → {status} {}", body.trim());

    let wire = bandana::serve::NetClient::connect(server.local_addr(), WIRE, 32)?;
    let mut tickets: Vec<bandana::serve::NetTicket> = trace.requests[..16]
        .iter()
        .map(|request| wire.submit(request))
        .collect::<std::io::Result<_>>()?;
    for ticket in tickets.iter_mut().rev() {
        assert!(ticket.wait()?.is_ok(), "wire lookups complete");
    }
    println!(
        "served 16 pipelined lookups over TCP for the live-registered tenant \
         (reaped in reverse completion order; granted in-flight cap {})",
        wire.granted_in_flight()
    );
    let (status, metrics) = http_request(admin.local_addr(), "GET", "/metrics", None)?;
    // The schema names are frozen (ROADMAP "Observability metric-name
    // schema"); the bench-smoke CI job runs this example, so a rename
    // that slips past the unit tests still fails here, over real HTTP.
    for name in [
        "bandana_requests_completed_total",
        "bandana_latency_seconds",
        "bandana_tenant_shed_reason_total",
        "bandana_shard_queue_depth_peak",
        "bandana_control_ticks_total",
        "bandana_uptime_seconds",
    ] {
        assert!(metrics.contains(name), "frozen metric name {name} missing from GET /metrics");
    }
    let completed_line = metrics
        .lines()
        .find(|l| l.starts_with("bandana_requests_completed_total"))
        .unwrap_or("bandana_requests_completed_total <missing>");
    println!("GET /metrics → {status}, frozen schema names served, e.g.: {completed_line}");
    wire.close()?;
    admin.shutdown();
    server.shutdown();

    // Dump the flight recorder before shutdown consumes the engine; load
    // the file in Perfetto or chrome://tracing to see the lifecycles.
    let trace_path = "trace_multi_tenant.json";
    std::fs::write(trace_path, engine.dump_trace())?;
    println!(
        "\nwrote a flight-recorder trace of {} sampled requests to {trace_path}",
        engine.request_traces().len()
    );

    let m = Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("all front-end references dropped"))
        .shutdown();
    println!();
    print!(
        "{}",
        render_tenant_table(&m.per_tenant, |id| match id {
            RANKING => "ranking".into(),
            BACKFILL => "backfill".into(),
            PROBE => "probe".into(),
            WIRE => "wire".into(),
            other => other.to_string(),
        })
    );
    println!("\ncontrol-plane audit log ({} retained decisions):", m.audit.len());
    print!("{}", render_audit_log(&m.audit));

    let ranking_m = m.per_tenant.iter().find(|t| t.id == RANKING).expect("ranking");
    let backfill_m = m.per_tenant.iter().find(|t| t.id == BACKFILL).expect("backfill");
    let total = ranking_m.completed + backfill_m.completed;
    println!(
        "\nranking completed {:.1}% of flood traffic (registered weight share: 90%)",
        ranking_m.completed as f64 / total.max(1) as f64 * 100.0
    );
    println!(
        "deficit round-robin holds the share near the weights while strict priority \
         keeps the High-class probe's tail flat — the ROADMAP's multi-tenant QoS \
         contract, visible in `EngineMetrics::per_tenant`."
    );
    Ok(())
}
