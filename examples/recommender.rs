//! A toy post-ranking service on top of Bandana, mirroring the paper's §2.1
//! deployment: user embeddings live on NVM behind a small DRAM cache, and
//! each ranking request gathers the user's feature vectors, averages them,
//! and scores candidate posts by dot product.
//!
//! ```text
//! cargo run --release --example recommender
//! ```

use bandana::prelude::*;

/// Decodes a little-endian f32 payload (as stored on the device).
fn decode(bytes: &[u8]) -> Vec<f32> {
    bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn main() -> Result<(), BandanaError> {
    let spec = ModelSpec::paper_scaled(10_000);
    let dim = spec.dim;
    let mut generator = TraceGenerator::new(&spec, 1234);
    let training = generator.generate_requests(800);

    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                100 + t as u64,
            )
        })
        .collect();

    let config = BandanaConfig::default().with_cache_vectors(2_000).with_seed(9);
    let mut store = BandanaStore::build(&spec, &embeddings, &training, config)?;

    // "Post embeddings" stay in DRAM in the paper (they are read 20x more
    // often); model them as a plain in-memory list of candidates.
    let num_posts = 64usize;
    let posts: Vec<Vec<f32>> = (0..num_posts)
        .map(|p| (0..dim).map(|d| ((p * 31 + d * 7) % 13) as f32 / 13.0 - 0.5).collect())
        .collect();

    // Rank posts for a stream of users.
    let user_requests = generator.generate_requests(200);
    let mut served = 0usize;
    let mut top_post_histogram = vec![0usize; num_posts];
    for request in &user_requests.requests {
        // Gather the user's embedding vectors from every table and average
        // them into a single user vector (a stand-in for the paper's NN).
        let mut user_vec = vec![0f32; dim];
        let mut count = 0usize;
        for q in &request.queries {
            for &v in &q.ids {
                let payload = store.lookup(q.table, v)?;
                for (acc, x) in user_vec.iter_mut().zip(decode(&payload)) {
                    *acc += x;
                }
                count += 1;
            }
        }
        for x in &mut user_vec {
            *x /= count.max(1) as f32;
        }
        // Score candidates.
        let best = posts
            .iter()
            .enumerate()
            .max_by(|a, b| dot(&user_vec, a.1).partial_cmp(&dot(&user_vec, b.1)).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        top_post_histogram[best] += 1;
        served += 1;
    }

    let m = store.total_metrics();
    println!("ranked posts for {served} users ({} embedding lookups)", m.lookups);
    println!("DRAM hit rate: {:.1}%", m.hit_rate() * 100.0);
    println!("NVM block reads: {} ({} bytes)", m.block_reads, store.device_counters().bytes_read);

    // Convert block reads into time on the calibrated device at QD8 and
    // report the effective-bandwidth view of the run.
    let model = nvm_sim::QueueModel::optane();
    let seconds = m.block_reads as f64 * model.mean_latency(8) / 8.0;
    let app_bytes = m.lookups as f64 * spec.vector_bytes() as f64;
    let dev_bytes = store.device_counters().bytes_read as f64;
    println!(
        "device time at QD8: {:.1} ms; effective bandwidth: {:.1}% of raw",
        seconds * 1e3,
        100.0 * app_bytes.min(dev_bytes) / dev_bytes.max(1.0),
    );

    let favourites = top_post_histogram.iter().filter(|&&c| c > 0).count();
    println!("distinct top posts across users: {favourites}/{num_posts}");
    Ok(())
}
