//! Fault tolerance: what happens when the NVM device misbehaves.
//!
//! Wraps a file-backed block device in a [`FaultInjector`] and drives one
//! embedding table through three failure regimes:
//!
//! 1. a flaky device (5% of reads fail) — lookups surface errors on misses
//!    but keep serving cached vectors;
//! 2. a fully dead device — the DRAM cache still answers for its working
//!    set;
//! 3. endurance exhaustion — retraining writes fail with `WornOut`,
//!    bounding how often embeddings can be refreshed (§2.2).
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use bandana::nvm::FaultPlan;
use bandana::partition::{AccessFrequency, BlockLayout};
use bandana::prelude::*;
use bandana::trace::spec::TableSpec;
use bandana::trace::TopicModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_vectors = 4_096u32;
    let vector_bytes = 128usize;
    let vectors_per_block = 4096 / vector_bytes;
    let spec = TableSpec::test_small(num_vectors);
    let topics = TopicModel::new(&spec, 1);
    let embeddings = EmbeddingTable::synthesize(num_vectors, 32, &topics, 2);
    let layout = BlockLayout::identity(num_vectors, vectors_per_block);

    // A real file on disk backs the blocks.
    let path = std::env::temp_dir().join(format!("bandana-faults-{}.blocks", std::process::id()));
    let file_dev = FileNvmDevice::create(&path, 4096, layout.num_blocks() as u64)?;

    // Regime 1: 5% of reads fail.
    let plan = FaultPlan::new(99).with_read_error_rate(0.05);
    let mut device = FaultInjector::new(file_dev, plan);

    let mut table = TableStore::new(
        0,
        layout,
        AccessFrequency::zeros(num_vectors),
        AdmissionPolicy::All { position: 0.0 },
        512,
        1.5,
        0,
        vector_bytes,
    );
    table.write_embeddings(&mut device, &embeddings)?;

    let mut served = 0u64;
    let mut failed = 0u64;
    for i in 0..4_000u32 {
        // A skewed stream: half the traffic hits a hot 512-vector set (all
        // cached), the rest sweeps the full table and keeps missing.
        let v = if i % 2 == 0 { (i / 2) % 512 } else { (i * i * 7 + i) % num_vectors };
        match table.lookup(&mut device, v) {
            Ok(_) => served += 1,
            Err(_) => failed += 1,
        }
    }
    println!("flaky device (5% read faults): {served} served, {failed} failed");
    println!(
        "  cache hit rate {:.1}% — hits never touch the faulty device",
        table.metrics().hit_rate() * 100.0
    );
    assert!(served > failed * 10, "the DRAM cache should absorb most traffic");

    // Regime 2: device goes fully dark; the cached working set survives.
    let survivors = {
        let dead_plan = FaultPlan::new(7).with_read_error_rate(1.0);
        let mut dead = FaultInjector::new(device.into_inner(), dead_plan);
        let mut ok = 0;
        for v in 0..512u32 {
            if table.lookup(&mut dead, v).is_ok() {
                ok += 1;
            }
        }
        device = dead; // keep for regime 3
        ok
    };
    println!("\ndead device: {survivors}/512 hot vectors still served from DRAM");

    // Regime 3: endurance exhaustion caps retraining.
    let budget_bytes = 4096u64 * 40; // 40 block-writes before wear-out
    let worn_plan = FaultPlan::new(3).with_wear_out_after_bytes(budget_bytes);
    let mut worn = FaultInjector::new(device.into_inner(), worn_plan);
    let retrained = EmbeddingTable::synthesize(num_vectors, 32, &topics, 3);
    match table.write_embeddings(&mut worn, &retrained) {
        Ok(()) => println!("\nretraining fit inside the endurance budget"),
        Err(e) => println!("\nretraining rejected: {e}"),
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
