//! MRC explorer: three ways to estimate a table's hit-rate curve, compared.
//!
//! Bandana tunes per-table DRAM budgets from hit-rate curves (§4.3.3). The
//! exact Mattson computation tracks every key; SHARDS samples a fraction of
//! them; AET needs only reuse times. This example builds all three for the
//! paper's hottest table and prints the curves side by side with their
//! mean absolute error and memory footprint.
//!
//! ```text
//! cargo run --release --example mrc_explorer
//! ```

use bandana::prelude::*;
use bandana::trace::{mean_absolute_error, StackDistances};

fn main() {
    let spec = ModelSpec::paper_scaled(1_000);
    let mut generator = TraceGenerator::new(&spec, 42);
    let trace = generator.generate_requests(4_000);
    let table = 1; // the paper's table 2: hottest, most cacheable
    let stream: Vec<u64> = trace.table_stream(table).iter().map(|&v| v as u64).collect();
    println!(
        "table {} stream: {} lookups over {} vectors\n",
        table + 1,
        stream.len(),
        spec.tables[table].num_vectors
    );

    let caps: Vec<usize> = [500usize, 1_000, 2_000, 4_000, 8_000, 16_000].to_vec();

    // Exact Mattson stack distances.
    let mut exact = StackDistances::with_capacity(stream.len());
    exact.access_all(stream.iter().copied());
    let exact_curve = exact.hit_rate_curve(&caps);

    // SHARDS at 10% and a fixed 512-key budget.
    let mut shards10 = Shards::new(0.1, 7);
    shards10.access_all(stream.iter().copied());
    let mut shards_max = Shards::fixed_size(512, 7);
    shards_max.access_all(stream.iter().copied());

    // AET from reuse times only.
    let mut aet = AetModel::new();
    aet.access_all(stream.iter().copied());

    println!(
        "{:>10}  {:>8}  {:>11}  {:>11}  {:>8}",
        "cache", "exact", "SHARDS 10%", "SHARDS 512", "AET"
    );
    for &c in &caps {
        println!(
            "{:>10}  {:>7.1}%  {:>10.1}%  {:>10.1}%  {:>7.1}%",
            c,
            exact.hit_rate_at(c) * 100.0,
            shards10.hit_rate_at(c) * 100.0,
            shards_max.hit_rate_at(c) * 100.0,
            aet.hit_rate_at(c) * 100.0,
        );
    }

    let mae = |curve: Vec<(usize, f64)>| mean_absolute_error(&exact_curve, &curve);
    println!("\nmean absolute error vs exact:");
    println!(
        "  SHARDS 10%:  {:.4} ({} keys tracked)",
        mae(shards10.hit_rate_curve(&caps)),
        shards10.tracked_keys()
    );
    println!(
        "  SHARDS 512:  {:.4} ({} keys tracked)",
        mae(shards_max.hit_rate_curve(&caps)),
        shards_max.tracked_keys()
    );
    println!("  AET:         {:.4}", mae(aet.hit_rate_curve(&caps)));
    println!(
        "\nThe sampled estimators track the exact curve to within a few \
         points at a fraction of the state — this is why Bandana can keep \
         re-estimating curves online."
    );
}
