//! End-to-end serving-latency benchmark: closed-loop capacity, then
//! open-loop load below and above saturation.
//!
//! Builds the paper-shaped 8-table model, wraps it in the sharded serving
//! engine with the background threshold tuner enabled, and reports the
//! numbers a production deployment is judged on: achieved QPS and the
//! p50/p99/p999 latency tail, plus shed/timeout counters once the offered
//! load exceeds what the shards can serve.
//!
//! Run with: `cargo run --release --example latency_bench`

use bandana::prelude::*;
use bandana::serve::{
    fmt_secs, run_closed_loop, run_open_loop, OnlineTunerSettings, ServeConfig, ShardedEngine,
    ShedPolicy,
};
use bandana::trace::ArrivalProcess;

fn build_engine(shards: usize, queue_capacity: usize) -> Result<ShardedEngine, BandanaError> {
    let spec = ModelSpec::paper_scaled(10_000);
    let mut generator = TraceGenerator::new(&spec, 7);
    let training = generator.generate_requests(600);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let store = BandanaStore::build(
        &spec,
        &embeddings,
        &training,
        BandanaConfig::default().with_cache_vectors(2_000).with_seed(7),
    )?;
    ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(shards)
            .with_queue_capacity(queue_capacity)
            .with_shed_policy(ShedPolicy::DropNewest)
            .with_tuner(OnlineTunerSettings { epoch_lookups: 5_000, ..Default::default() }),
    )
}

fn main() -> Result<(), BandanaError> {
    let shards = 4;
    let spec = ModelSpec::paper_scaled(10_000);
    let mut generator = TraceGenerator::new(&spec, 7);
    generator.generate_requests(600); // skip the training prefix
    let serving = generator.generate_requests(500);

    // --- Closed loop: capacity. ---
    let engine = build_engine(shards, 1024)?;
    println!("shards: {}", engine.num_shards());
    for (shard, tables) in engine.shard_tables().iter().enumerate() {
        println!("  shard {shard}: tables {tables:?}");
    }
    let capacity = run_closed_loop(&engine, &serving, shards).expect("closed-loop replay");
    println!(
        "\nclosed-loop ({} callers): {:.0} qps, {:.0} lookups/s",
        capacity.concurrency, capacity.achieved_qps, capacity.lookups_per_second
    );
    println!(
        "  latency: p50 {}  p99 {}  p999 {}",
        fmt_secs(capacity.latency.p50_s),
        fmt_secs(capacity.latency.p99_s),
        fmt_secs(capacity.latency.p999_s)
    );
    // The tuner runs asynchronously on sampled traffic; give it a moment
    // to absorb the burst before reading its swap counter.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while engine.metrics().tuner_swaps == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let m = engine.metrics();
    println!("  cache hit rate {:.1}%  tuner swaps {}", m.cache.hit_rate() * 100.0, m.tuner_swaps);
    drop(engine);

    // --- Open loop, below saturation. ---
    let engine = build_engine(shards, 1024)?;
    let below = ArrivalProcess::Poisson { rate_rps: capacity.achieved_qps * 0.6 };
    let r = run_open_loop(&engine, &serving, &below, 11);
    println!(
        "\nopen-loop @ {:.0} qps (60% of capacity): achieved {:.0} qps, \
         completed {} shed {} timed-out {}",
        r.offered_qps, r.achieved_qps, r.completed, r.shed, r.timed_out
    );
    println!(
        "  latency: p50 {}  p99 {}  p999 {}",
        fmt_secs(r.latency.p50_s),
        fmt_secs(r.latency.p99_s),
        fmt_secs(r.latency.p999_s)
    );
    drop(engine);

    // --- Open loop, far past saturation: bounded queues shed. ---
    let engine = build_engine(shards, 32)?;
    let above = ArrivalProcess::Poisson { rate_rps: (capacity.achieved_qps * 20.0).max(50_000.0) };
    let r = run_open_loop(&engine, &serving, &above, 13);
    println!(
        "\nopen-loop @ {:.0} qps (saturating, queue 32): achieved {:.0} qps, \
         completed {} shed {} timed-out {}",
        r.offered_qps, r.achieved_qps, r.completed, r.shed, r.timed_out
    );
    println!(
        "  latency (accepted requests): p50 {}  p99 {}  p999 {}",
        fmt_secs(r.latency.p50_s),
        fmt_secs(r.latency.p99_s),
        fmt_secs(r.latency.p999_s)
    );
    assert!(r.shed > 0, "a saturating open-loop run must shed");
    assert_eq!(r.completed + r.shed + r.timed_out + r.failed, r.submitted);
    println!("\nall requests accounted for: {} submitted", r.submitted);
    Ok(())
}
