//! Quickstart: build a Bandana store and measure what the paper measures —
//! hit rate and effective bandwidth against the single-vector baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bandana::prelude::*;

fn main() -> Result<(), BandanaError> {
    // The paper's 8-table user-embedding model, 10 000x smaller.
    let spec = ModelSpec::paper_scaled(10_000);
    let mut generator = TraceGenerator::new(&spec, 42);

    println!("model: {} tables, {} B vectors", spec.num_tables(), spec.vector_bytes());

    // A training trace drives everything supervised: SHP placement,
    // per-vector access frequencies, and threshold tuning.
    let training = generator.generate_requests(1_000);
    println!(
        "training trace: {} requests / {} lookups",
        training.requests.len(),
        training.total_lookups()
    );

    // Embedding values (synthetic here; in production these come from the
    // trained model).
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();

    // Build with SHP placement and tuned thresholds (the paper's shipping
    // configuration), with a DRAM budget of 2 000 vectors across tables.
    let config = BandanaConfig::default().with_cache_vectors(2_000).with_seed(7);
    let mut store = BandanaStore::build(&spec, &embeddings, &training, config)?;

    // Serve an evaluation trace.
    let eval = generator.generate_requests(500);
    store.serve_trace(&eval)?;

    let m = store.total_metrics();
    println!("\nserved {} lookups", m.lookups);
    println!("hit rate:          {:.1}%", m.hit_rate() * 100.0);
    println!("NVM block reads:   {}", m.block_reads);
    println!("prefetches used:   {:.1}%", m.prefetch_usefulness() * 100.0);

    // Compare against a baseline store: same budget, no prefetching, no
    // locality-aware placement.
    let base_cfg = BandanaConfig::default()
        .with_cache_vectors(2_000)
        .with_partitioner(PartitionerKind::Identity)
        .with_admission(AdmissionPolicy::None)
        .with_seed(7);
    let mut baseline = BandanaStore::build(&spec, &embeddings, &training, base_cfg)?;
    baseline.serve_trace(&eval)?;
    let b = baseline.total_metrics();

    let gain = b.block_reads as f64 / m.block_reads as f64 - 1.0;
    println!("\nbaseline block reads: {}", b.block_reads);
    println!("effective bandwidth increase: {:+.1}%", gain * 100.0);

    // Retraining endurance check (§2.2 of the paper): full-table rewrites
    // 10-20x/day must stay under the device's 30 DWPD budget.
    for (t, emb) in embeddings.iter().enumerate() {
        store.retrain(t, emb)?;
    }
    println!(
        "\nafter one full retrain: {:.4} drive writes (30/day budget: {})",
        store.endurance().drive_writes(),
        if store.endurance().within_budget(1.0) { "OK" } else { "EXCEEDED" }
    );
    Ok(())
}
