//! Compare placement strategies (paper §4.2): random vs identity vs
//! K-means vs two-stage K-means vs SHP, by average query fanout and
//! unlimited-cache effective bandwidth.
//!
//! ```text
//! cargo run --release --example partition_explorer
//! ```

use bandana::partition::{
    fanout_report, kmeans, order_from_assignments, social_hash_partition, two_stage_kmeans,
    BlockLayout, KMeansConfig, ShpConfig, TwoStageConfig,
};
use bandana::prelude::*;

fn main() {
    let spec = ModelSpec::paper_scaled(10_000);
    let table = 0usize; // paper table 1: cacheable, strong topic structure
    let n = spec.tables[table].num_vectors;
    let mut generator = TraceGenerator::new(&spec, 2024);
    let train = generator.generate_requests(1_000);
    let eval = generator.generate_requests(500);
    let embeddings = EmbeddingTable::synthesize(n, spec.dim, generator.topic_model(table), 55);

    let report = |name: &str, layout: &BlockLayout| {
        let r = fanout_report(layout, eval.table_queries(table));
        println!(
            "{name:<22} avg fanout {:>6.2}   unique vectors {:>6}   blocks touched {:>6}   eff-BW gain {:>+7.1}%",
            r.average_fanout,
            r.unique_vectors,
            r.unique_blocks,
            r.unlimited_cache_gain() * 100.0
        );
    };

    println!("table 1 analogue: {n} vectors, 32 vectors per 4 KB block\n");

    report("random order", &BlockLayout::random(n, 32, 3));
    report("original (identity)", &BlockLayout::identity(n, 32));

    let km = kmeans(embeddings.data(), spec.dim, &KMeansConfig { k: 64, iterations: 15, seed: 4 });
    report("k-means (k=64)", &BlockLayout::from_order(order_from_assignments(&km.assignments), 32));

    let two_stage = two_stage_kmeans(
        embeddings.data(),
        spec.dim,
        &TwoStageConfig { first_stage_k: 16, total_subclusters: 64, iterations: 15, seed: 4 },
    );
    report("two-stage k-means", &BlockLayout::from_order(two_stage, 32));

    let shp = social_hash_partition(
        n,
        train.table_queries(table),
        &ShpConfig { block_capacity: 32, iterations: 16, seed: 4, parallel_depth: 2 },
    );
    report("SHP (supervised)", &BlockLayout::from_order(shp, 32));

    println!(
        "\nThe paper's ordering should hold: SHP > K-means variants > identity/random.\n\
         SHP learns co-access directly from queries; K-means only sees geometry."
    );
}
