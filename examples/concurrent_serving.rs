//! Concurrent serving: the production shape of the system — many ranking
//! threads hitting the same embedding store at once.
//!
//! Builds the paper's 8-table model, wraps the store in the lock-sharded
//! [`ConcurrentStore`], and serves the same trace with 1, 2, 4, and 8
//! worker threads, printing throughput and confirming the cache metrics
//! are identical in aggregate.
//!
//! ```text
//! cargo run --release --example concurrent_serving
//! ```

use bandana::prelude::*;

fn build_store(
    spec: &ModelSpec,
    generator: &mut TraceGenerator,
    training: &Trace,
) -> Result<ConcurrentStore, BandanaError> {
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let config = BandanaConfig::default().with_cache_vectors(2_000).with_seed(7);
    Ok(BandanaStore::build(spec, &embeddings, training, config)?.into_concurrent())
}

fn main() -> Result<(), BandanaError> {
    let spec = ModelSpec::paper_scaled(10_000);
    let mut generator = TraceGenerator::new(&spec, 42);
    let training = generator.generate_requests(1_000);
    let serving = generator.generate_requests(800);

    println!(
        "serving {} requests / {} lookups across {} tables\n",
        serving.requests.len(),
        serving.total_lookups(),
        spec.num_tables()
    );
    println!("{:>8}  {:>12}  {:>10}  {:>10}", "threads", "lookups/s", "hit rate", "blk reads");

    for threads in [1usize, 2, 4, 8] {
        // Fresh store per run so each thread count starts cold.
        let store = build_store(&spec, &mut TraceGenerator::new(&spec, 42), &training)?;
        let report = store.serve_trace_parallel(&serving, threads)?;
        let m = store.total_metrics();
        println!(
            "{:>8}  {:>12.0}  {:>9.1}%  {:>10}",
            report.threads,
            report.lookups_per_second(),
            m.hit_rate() * 100.0,
            m.block_reads
        );
        assert_eq!(m.lookups, serving.total_lookups() as u64);
    }

    println!(
        "\nHit rates and block reads stay (nearly) constant across thread counts: \
         the shards only change *who* serves a lookup, not what is cached. \
         Throughput is bounded by the device lock on misses — exactly the \
         NVM-bandwidth bottleneck the paper optimizes."
    );
    let _ = generator; // keep the original generator's stream position unused
    Ok(())
}
