//! Integration tests spanning crates: MRC estimators on the paper
//! workload, allocation policies end-to-end, and online re-tuning under
//! popularity drift.

use bandana::cache::{allocate_with, AllocationPolicy, HitRateCurve};
use bandana::core::online::{OnlineTuner, OnlineTunerConfig};
use bandana::partition::{social_hash_partition, AccessFrequency, BlockLayout, ShpConfig};
use bandana::prelude::*;
use bandana::trace::{mean_absolute_error, StackDistances};

const SEED: u64 = 0xE57;

fn paper_stream(table: usize, requests: usize) -> (ModelSpec, Vec<u64>) {
    let spec = ModelSpec::paper_scaled(10_000);
    let mut generator = TraceGenerator::new(&spec, SEED);
    let trace = generator.generate_requests(requests);
    let stream = trace.table_stream(table).iter().map(|&v| v as u64).collect();
    (spec, stream)
}

#[test]
fn shards_and_aet_agree_with_exact_on_paper_workload() {
    // Not a synthetic toy stream: the actual Table-1-shaped workload the
    // whole harness runs on.
    let (_, stream) = paper_stream(1, 2_000);
    let caps = [50usize, 100, 200, 400, 800, 1600];

    let mut exact = StackDistances::with_capacity(stream.len());
    exact.access_all(stream.iter().copied());
    let exact_curve = exact.hit_rate_curve(&caps);

    let mut shards = Shards::new(0.2, 3);
    shards.access_all(stream.iter().copied());
    let mae_shards = mean_absolute_error(&exact_curve, &shards.hit_rate_curve(&caps));
    // 20% spatial sampling on a ~60k-lookup stream: the paper reports
    // percent-level MRC error at these rates; allow a little slack for the
    // sampling-noise realization.
    assert!(mae_shards < 0.08, "SHARDS MAE {mae_shards}");

    let mut aet = AetModel::new();
    aet.access_all(stream.iter().copied());
    let mae_aet = mean_absolute_error(&exact_curve, &aet.hit_rate_curve(&caps));
    assert!(mae_aet < 0.06, "AET MAE {mae_aet}");
}

#[test]
fn shards_curves_can_drive_dram_allocation() {
    // Allocating from sampled curves must produce nearly the same division
    // as allocating from exact curves — the practical payoff of SHARDS.
    let spec = ModelSpec::paper_scaled(10_000);
    let mut generator = TraceGenerator::new(&spec, SEED + 1);
    let trace = generator.generate_requests(1_500);
    let caps: Vec<usize> = vec![25, 50, 100, 200, 400, 800];
    let tables = spec.num_tables();

    let weights: Vec<f64> = (0..tables)
        .map(|t| trace.table_lookups(t) as f64 / trace.total_lookups().max(1) as f64)
        .collect();

    let exact_curves: Vec<HitRateCurve> = (0..tables)
        .map(|t| {
            let stream = trace.table_stream(t);
            let mut sd = StackDistances::with_capacity(stream.len().max(1));
            sd.access_all(stream.iter().map(|&v| v as u64));
            HitRateCurve::new(sd.hit_rate_curve(&caps))
        })
        .collect();
    let sampled_curves: Vec<HitRateCurve> = (0..tables)
        .map(|t| {
            let mut s = Shards::new(0.25, 7 + t as u64);
            s.access_all(trace.table_stream(t).iter().map(|&v| v as u64));
            HitRateCurve::new(s.hit_rate_curve(&caps))
        })
        .collect();

    let total = 800usize;
    let from_exact =
        allocate_with(AllocationPolicy::GreedyMarginal, total, &exact_curves, &weights, 50);
    let from_sampled =
        allocate_with(AllocationPolicy::GreedyMarginal, total, &sampled_curves, &weights, 50);

    // Compare achieved (exact-curve) hit rates, not the allocations
    // themselves — several near-ties are acceptable.
    let score = |alloc: &[usize]| {
        alloc
            .iter()
            .zip(&exact_curves)
            .zip(&weights)
            .map(|((&a, c), &w)| w * c.hit_rate_at(a))
            .sum::<f64>()
    };
    let loss = score(&from_exact) - score(&from_sampled);
    assert!(loss < 0.03, "sampled-curve allocation loses {loss:.4} hit rate vs exact");
}

#[test]
fn online_tuner_adapts_across_drift_epochs() {
    // A drifting workload: the tuner must keep producing decisions whose
    // estimated gain stays positive, and it must not freeze on epoch 0.
    let spec = ModelSpec::paper_scaled(10_000);
    let table = 1;
    let num_vectors = spec.tables[table].num_vectors;
    let mut generator = DriftingTraceGenerator::new(
        &spec,
        SEED + 2,
        DriftConfig { requests_per_epoch: 300, rotate_fraction: 0.3 },
    );
    let training = generator.generate_requests(300);

    let cfg = ShpConfig { block_capacity: 32, iterations: 8, seed: SEED, parallel_depth: 2 };
    let order = social_hash_partition(num_vectors, training.table_queries(table), &cfg);
    let layout = BlockLayout::from_order(order, 32);
    let freq = AccessFrequency::from_queries(num_vectors, training.table_queries(table));

    let mut tuner = OnlineTuner::new(
        &layout,
        &freq,
        OnlineTunerConfig {
            cache_capacity: 100,
            sampling_rate: 1.0,
            candidate_thresholds: vec![1, 2, 5, 10],
            epoch_lookups: 3_000,
            salt: 11,
        },
    );

    let live = generator.generate_requests(1_200); // several drift epochs
    let mut decisions = Vec::new();
    for q in live.table_queries(table) {
        for &v in q {
            if let Some(d) = tuner.observe(v) {
                decisions.push(d);
            }
        }
    }
    assert!(decisions.len() >= 3, "expected several tuning epochs, got {}", decisions.len());
    for d in &decisions {
        assert!(
            tuner.current_policy().is_some(),
            "a decision must install a policy (epoch {})",
            d.epoch
        );
    }
}

#[test]
fn drift_erodes_static_gain_end_to_end() {
    // Build a full store trained on epoch 0 and serve drifting epochs:
    // hit rate must fall relative to serving the training-distribution.
    let spec = ModelSpec::test_small();
    let mut generator = DriftingTraceGenerator::new(
        &spec,
        SEED + 3,
        DriftConfig { requests_per_epoch: 400, rotate_fraction: 0.45 },
    );
    let training = generator.generate_requests(400); // epoch 0
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                TraceGenerator::new(&spec, SEED + 3).topic_model(t),
                t as u64,
            )
        })
        .collect();
    // Prefetch aggressively: the drift remap erodes exactly the co-access
    // alignment that makes prefetches useful, so an admit-all policy makes
    // the decay visible in the hit rate (a tuned threshold can suppress
    // prefetching entirely, leaving only the drift-invariant LRU part).
    let build = || {
        BandanaStore::build(
            &spec,
            &embeddings,
            &training,
            BandanaConfig::default()
                .with_cache_vectors(400)
                .with_admission(AdmissionPolicy::All { position: 0.0 }),
        )
        .expect("build")
    };

    // Arm 1: the same epoch-0 distribution — the *same* generator seed as
    // the training epoch (so the topic models match exactly), advanced
    // past the training prefix for fresh requests without drift.
    let mut same_dist = TraceGenerator::new(&spec, SEED + 3);
    same_dist.generate_requests(400); // discard: identical to the training epoch
    let epoch0_like = same_dist.generate_requests(400);
    let mut store = build();
    store.serve_trace(&epoch0_like).expect("serve");
    let fresh_hit = store.total_metrics().hit_rate();

    // Arm 2: three epochs further into the drift.
    generator.generate_requests(800); // advance epochs
    let drifted = generator.generate_requests(400);
    let mut store = build();
    store.serve_trace(&drifted).expect("serve");
    let drifted_hit = store.total_metrics().hit_rate();

    assert!(
        drifted_hit < fresh_hit,
        "drift should hurt the trained store: fresh {fresh_hit:.3} vs drifted {drifted_hit:.3}"
    );
}
