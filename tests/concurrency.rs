//! Integration tests: the concurrent store serves correct bytes and
//! consistent metrics under parallel load.

use bandana::prelude::*;
use std::sync::Arc;

fn build(
    seed: u64,
    cache: usize,
) -> (ConcurrentStore, Vec<EmbeddingTable>, TraceGenerator, ModelSpec) {
    let spec = ModelSpec::test_small();
    let mut generator = TraceGenerator::new(&spec, seed);
    let training = generator.generate_requests(300);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let store = BandanaStore::build(
        &spec,
        &embeddings,
        &training,
        BandanaConfig::default().with_cache_vectors(cache),
    )
    .expect("build store")
    .into_concurrent();
    (store, embeddings, generator, spec)
}

#[test]
fn parallel_lookups_return_correct_bytes() {
    let (store, embeddings, _, spec) = build(1, 512);
    let store = Arc::new(store);
    let mut handles = Vec::new();
    for worker in 0..4u32 {
        let store = Arc::clone(&store);
        let embeddings = embeddings.clone();
        let spec = spec.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..2_000u32 {
                let t = ((i + worker) % spec.num_tables() as u32) as usize;
                let v = (i * 31 + worker * 7) % spec.tables[t].num_vectors;
                let got = store.lookup(t, v).expect("lookup");
                assert_eq!(
                    got.as_ref(),
                    embeddings[t].vector_as_bytes(v).as_slice(),
                    "worker {worker}: table {t} vector {v} corrupted"
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    let m = store.total_metrics();
    assert_eq!(m.lookups, 4 * 2_000);
    assert_eq!(m.hits + m.misses, m.lookups);
}

#[test]
fn metrics_are_internally_consistent_after_parallel_trace() {
    let (store, _, mut generator, _) = build(2, 256);
    let serving = generator.generate_requests(300);
    store.serve_trace_parallel(&serving, 4).expect("serve");
    let m = store.total_metrics();
    assert_eq!(m.lookups, serving.total_lookups() as u64);
    assert_eq!(m.hits + m.misses, m.lookups);
    assert_eq!(m.block_reads, m.misses, "every miss costs exactly one block read");
    // Device counters agree with cache accounting.
    assert_eq!(store.device_counters().reads, m.block_reads);
}

#[test]
fn thread_count_does_not_change_workload_totals() {
    let (_, _, mut generator, _) = build(3, 256);
    let serving = generator.generate_requests(300);
    let mut block_reads = Vec::new();
    for threads in [1usize, 2, 8] {
        let (store, _, _, _) = build(3, 256);
        store.serve_trace_parallel(&serving, threads).expect("serve");
        block_reads.push(store.total_metrics().block_reads);
    }
    // Interleaving shifts which lookup misses, but the totals must agree
    // closely — the caches see the same requests.
    let max = *block_reads.iter().max().expect("non-empty") as f64;
    let min = *block_reads.iter().min().expect("non-empty") as f64;
    assert!(max / min < 1.15, "block reads vary too much across thread counts: {block_reads:?}");
}

#[test]
fn reset_metrics_clears_counters_but_keeps_cache() {
    // A cache big enough (6144 ≥ both tables' id spaces) that the whole
    // working set survives the first pass.
    let (store, _, mut generator, _) = build(4, 6144);
    let serving = generator.generate_requests(100);
    store.serve_trace_parallel(&serving, 2).expect("serve");
    let cold_hit_rate = store.total_metrics().hit_rate();
    store.reset_metrics();
    assert_eq!(store.total_metrics().lookups, 0);
    assert_eq!(store.device_counters().reads, 0);
    // Replaying the same trace against the warm cache hits ~everything.
    store.serve_trace_parallel(&serving, 2).expect("serve again");
    let warm = store.total_metrics();
    assert!(
        warm.hit_rate() > 0.95 && warm.hit_rate() > cold_hit_rate,
        "warm replay ({:.2}) should beat the cold run ({cold_hit_rate:.2})",
        warm.hit_rate()
    );
}

#[test]
fn per_table_metrics_sum_to_total() {
    let (store, _, mut generator, _) = build(5, 256);
    let serving = generator.generate_requests(200);
    store.serve_trace_parallel(&serving, 4).expect("serve");
    let per_table = store.table_metrics();
    let total = store.total_metrics();
    assert_eq!(per_table.iter().map(|m| m.lookups).sum::<u64>(), total.lookups);
    assert_eq!(per_table.iter().map(|m| m.block_reads).sum::<u64>(), total.block_reads);
}
