//! Integration tests asserting the paper's headline qualitative results
//! hold end-to-end (the per-figure assertions live in `crates/bench`; these
//! cover the cross-cutting claims).

use bandana::cache::{baseline_block_reads, AdmissionPolicy, PrefetchCacheSim};
use bandana::partition::{
    fanout_report, kmeans, order_from_assignments, social_hash_partition, AccessFrequency,
    BlockLayout, KMeansConfig, ShpConfig,
};
use bandana::prelude::*;

fn workload() -> (ModelSpec, TraceGenerator, Trace, Trace) {
    let spec = ModelSpec::paper_scaled(10_000);
    let mut generator = TraceGenerator::new(&spec, 0xFACEB00C);
    let train = generator.generate_requests(800);
    let eval = generator.generate_requests(400);
    (spec, generator, train, eval)
}

/// §4.2: SHP beats K-means beats random, on every cacheable table.
#[test]
fn placement_quality_ordering() {
    let (spec, generator, train, eval) = workload();
    for table in [0usize, 1] {
        let n = spec.tables[table].num_vectors;
        let shp_order = social_hash_partition(
            n,
            train.table_queries(table),
            &ShpConfig { block_capacity: 32, iterations: 10, seed: 1, parallel_depth: 0 },
        );
        let emb = EmbeddingTable::synthesize(n, spec.dim, generator.topic_model(table), 5);
        let km = kmeans(emb.data(), spec.dim, &KMeansConfig { k: 32, iterations: 10, seed: 1 });
        let layouts = [
            ("shp", BlockLayout::from_order(shp_order, 32)),
            ("kmeans", BlockLayout::from_order(order_from_assignments(&km.assignments), 32)),
            ("random", BlockLayout::random(n, 32, 1)),
        ];
        // At this scale the eval trace touches nearly the whole table, so
        // the unlimited-cache gain saturates for every layout; average
        // query fanout (the quantity SHP optimizes, paper eq. 3) still
        // discriminates. Lower is better.
        let fanouts: Vec<(&str, f64)> = layouts
            .iter()
            .map(|(name, l)| (*name, fanout_report(l, eval.table_queries(table)).average_fanout))
            .collect();
        assert!(
            fanouts[0].1 < fanouts[1].1,
            "table {table}: SHP {:?} should beat K-means {:?}",
            fanouts[0],
            fanouts[1]
        );
        assert!(
            fanouts[1].1 < fanouts[2].1,
            "table {table}: K-means {:?} should beat random {:?}",
            fanouts[1],
            fanouts[2]
        );
    }
}

/// §4.1: with a limited cache, blind prefetching loses to no prefetching,
/// and threshold admission wins.
#[test]
fn admission_policy_ordering() {
    let (spec, _generator, train, eval) = workload();
    let table = 1usize;
    let n = spec.tables[table].num_vectors;
    let order = social_hash_partition(
        n,
        train.table_queries(table),
        &ShpConfig { block_capacity: 32, iterations: 10, seed: 2, parallel_depth: 0 },
    );
    let layout = BlockLayout::from_order(order, 32);
    let freq = AccessFrequency::from_queries(n, train.table_queries(table));
    let stream = eval.table_stream(table);
    // Large enough that prefetching helps at all, small enough that
    // admitting cold vectors still pollutes — the regime where threshold
    // admission separates from both extremes (§4.1).
    let cache = 250usize;

    let reads = |policy: AdmissionPolicy| {
        let mut sim = PrefetchCacheSim::new(&layout, cache, policy, freq.clone());
        for &v in &stream {
            sim.lookup(v);
        }
        sim.metrics().block_reads
    };
    let baseline = reads(AdmissionPolicy::None);
    let all = reads(AdmissionPolicy::All { position: 0.0 });
    let threshold = reads(AdmissionPolicy::Threshold { t: 8 });
    assert!(threshold < baseline, "threshold ({threshold}) must beat baseline ({baseline})");
    assert!(threshold < all, "threshold ({threshold}) must beat prefetch-all ({all})");
}

/// §3/Table 1: cacheability varies hugely across tables and the synthetic
/// workload preserves the ordering.
#[test]
fn table_cacheability_spread() {
    let (_spec, _generator, _train, eval) = workload();
    let unique_fraction = |table: usize| {
        let mut ids = eval.table_stream(table);
        let total = ids.len() as f64;
        ids.sort_unstable();
        ids.dedup();
        ids.len() as f64 / total
    };
    // Table 2 reuses heavily; table 8 is nearly one-shot.
    assert!(unique_fraction(1) < 0.3, "table 2 unique fraction {}", unique_fraction(1));
    assert!(unique_fraction(7) > 2.0 * unique_fraction(1));
}

/// The baseline helper and the policy simulator agree on the definition of
/// the baseline (paper §4.1).
#[test]
fn baseline_definitions_agree() {
    let (spec, _generator, train, eval) = workload();
    let table = 2usize;
    let n = spec.tables[table].num_vectors;
    let layout = BlockLayout::identity(n, 32);
    let freq = AccessFrequency::from_queries(n, train.table_queries(table));
    let stream = eval.table_stream(table);
    let mut sim = PrefetchCacheSim::new(&layout, 64, AdmissionPolicy::None, freq);
    for &v in &stream {
        sim.lookup(v);
    }
    let helper = baseline_block_reads(&layout, eval.table_queries(table), 64);
    assert_eq!(sim.metrics().block_reads, helper);
}

/// Effective bandwidth of the baseline policy is ~vector/block of raw
/// bandwidth (the paper's 4% claim for 128 B vectors in 4 KB blocks).
#[test]
fn baseline_effective_bandwidth_fraction() {
    let (spec, _generator, train, eval) = workload();
    // Serve table 1's eval stream through a real store with no prefetching.
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            let g = TraceGenerator::new(&spec, 1);
            EmbeddingTable::synthesize(spec.tables[t].num_vectors, spec.dim, g.topic_model(t), 1)
        })
        .collect();
    let config = BandanaConfig::default()
        .with_cache_vectors(400)
        .with_partitioner(PartitionerKind::Identity)
        .with_admission(AdmissionPolicy::None)
        .with_seed(1);
    let mut store = BandanaStore::build(&spec, &embeddings, &train, config).unwrap();
    store.serve_trace(&eval).unwrap();
    let m = store.total_metrics();
    let useful = m.misses as f64 * spec.vector_bytes() as f64;
    let raw = store.device_counters().bytes_read as f64;
    let fraction = useful / raw;
    // 128/4096 = 3.125%.
    assert!((fraction - 0.03125).abs() < 1e-9, "baseline effective bandwidth fraction {fraction}");
}
