//! Integration tests for the sharded serving engine: histogram merge
//! properties, dispatch accounting, and overload behaviour.

use bandana::prelude::*;
use bandana::serve::{
    run_open_loop, LatencyHistogram, OnlineTunerSettings, ServeConfig, ShardedEngine, ShedPolicy,
};
use bandana::trace::ArrivalProcess;
use proptest::prelude::*;

fn build_store(seed: u64, cache: usize) -> (BandanaStore, TraceGenerator) {
    let spec = ModelSpec::test_small();
    let mut generator = TraceGenerator::new(&spec, seed);
    let training = generator.generate_requests(250);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let store = BandanaStore::build(
        &spec,
        &embeddings,
        &training,
        BandanaConfig::default().with_cache_vectors(cache),
    )
    .expect("build store");
    (store, generator)
}

proptest! {
    /// Histogram merge is associative and order-independent: for any split
    /// of a sample stream across "shards", merging in any grouping yields
    /// identical counts and quantiles.
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(1e-7f64..1.0, 1..200),
        b in proptest::collection::vec(1e-7f64..1.0, 1..200),
        c in proptest::collection::vec(1e-7f64..1.0, 1..200),
    ) {
        let hist_of = |samples: &[f64]| {
            let mut h = LatencyHistogram::new();
            for &s in samples {
                h.record_secs(s);
            }
            h
        };
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);

        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.count() as usize, a.len() + b.len() + c.len());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            prop_assert_eq!(left.quantile(q), right.quantile(q), "quantile {} diverged", q);
        }
    }

    /// Merged quantiles are lossless within the bucket resolution: the
    /// merged p50 stays within ~2 bucket widths (≈7%) of the exact sample
    /// median, exactly as if one recorder had seen every sample.
    #[test]
    fn histogram_merge_is_lossless_in_bounds(
        a in proptest::collection::vec(1e-6f64..1.0, 10..300),
        b in proptest::collection::vec(1e-6f64..1.0, 10..300),
    ) {
        let mut merged = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        for &s in &a { ha.record_secs(s); whole.record_secs(s); }
        for &s in &b { hb.record_secs(s); whole.record_secs(s); }
        merged.merge(&ha);
        merged.merge(&hb);
        // Merging loses nothing relative to a single recorder...
        prop_assert_eq!(merged.quantile(0.5), whole.quantile(0.5));
        // ...and the single recorder is within bucket resolution of exact.
        let mut all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        all.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        let exact = all[(all.len() - 1) / 2];
        let got = merged.quantile(0.5);
        prop_assert!(
            (got - exact).abs() / exact < 0.08,
            "merged p50 {} vs exact median {}", got, exact
        );
    }

    /// Under stationary traffic, the recent-window p99 converges to the
    /// cumulative p99: the window sees an i.i.d. slice of the same
    /// distribution, so once it holds enough samples its tail quantile
    /// matches the lifetime tail quantile up to bucket resolution plus
    /// sampling noise. This is the property the SLO controller relies on
    /// — a windowed budget check is a faithful stand-in for the SLA's
    /// long-run quantile as long as traffic is not shifting.
    #[test]
    fn windowed_p99_converges_to_cumulative_p99_under_stationary_traffic(
        seed in proptest::prelude::any::<u64>(),
        slots in 4usize..12,
    ) {
        use bandana::serve::WindowedHistogram;
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        let mut windowed = WindowedHistogram::new(slots);
        let mut cumulative = LatencyHistogram::new();
        let per_slot = 700usize;
        // 3×slots slots' worth of traffic: the window turns over fully
        // at least twice, so nothing from warmup survives in it.
        for slot in 0..slots * 3 {
            if slot > 0 {
                windowed.rotate();
            }
            for _ in 0..per_slot {
                // A stationary heavy-ish-tailed mixture in (0, ~10ms].
                let u: f64 = rng.gen::<f64>().max(1e-9);
                let s = 1e-4 + 1e-3 * u * u;
                windowed.record_secs(s);
                cumulative.record_secs(s);
            }
        }
        let recent = windowed.recent();
        // The live window holds between (slots-1) and slots slots.
        prop_assert!(recent.count() >= ((slots - 1) * per_slot) as u64);
        prop_assert!(recent.count() <= (slots * per_slot) as u64);
        let (wp99, cp99) = (recent.p99(), cumulative.p99());
        prop_assert!(
            (wp99 - cp99).abs() / cp99 < 0.15,
            "windowed p99 {} diverged from cumulative p99 {}", wp99, cp99
        );
    }
}

proptest! {
    /// Every submitted request completes exactly once — lands in exactly
    /// one of completed/shed/timed_out/failed and leaves nothing
    /// outstanding — under arbitrary micro-batching configurations
    /// (window, max batch, device queue depth, shard count).
    #[test]
    fn every_request_completes_exactly_once_under_batching(
        seed in 100u64..200,
        shards in 1usize..4,
        max_batch in 1usize..9,
        window_us in 0u64..2_000,
        device_queue in 0u32..5,
        requests in 1usize..60,
    ) {
        let (store, mut generator) = build_store(seed, 128);
        let mut config = ServeConfig::default()
            .with_shards(shards)
            .with_batch_window(std::time::Duration::from_micros(window_us))
            .with_max_batch(max_batch);
        if device_queue > 0 {
            config = config.with_device_queue(device_queue);
        }
        let engine = ShardedEngine::new(store, config).expect("engine");
        let trace = generator.generate_requests(requests);
        for r in &trace.requests {
            engine.submit(r).expect("submit");
        }
        engine.drain();
        let m = engine.metrics();
        prop_assert_eq!(m.submitted, requests as u64);
        prop_assert_eq!(m.completed + m.shed + m.timed_out + m.failed, requests as u64);
        prop_assert_eq!(m.completed, requests as u64);
        prop_assert_eq!(m.outstanding, 0);
        prop_assert_eq!(m.lookups as usize, trace.total_lookups());
        prop_assert!(m.batching.largest_batch <= max_batch as u64);
        // Each served request is attributed to exactly one batch per
        // involved shard, so the batched-request count can exceed
        // `completed` (multi-shard requests) but never drops below it.
        prop_assert!(m.batching.batched_requests >= m.completed);
    }
}

#[test]
fn batching_reproduces_single_read_results_and_latencies() {
    // Backward-compat check: the batched pipeline at max_batch 1 / depth 1
    // must reproduce the single-read engine's payloads, read counts, and
    // (modulo scheduling noise) its latency scale.
    let trace = {
        let (_, mut generator) = build_store(40, 256);
        generator.generate_requests(80)
    };
    let serve_all = |config: ServeConfig| {
        let (store, _) = build_store(40, 256);
        let engine = ShardedEngine::new(store, config).expect("engine");
        let payloads: Vec<_> =
            trace.requests.iter().map(|r| engine.serve(r).expect("serve")).collect();
        (payloads, engine.shutdown())
    };
    let (old_payloads, old_metrics) = serve_all(ServeConfig::default().with_shards(2));
    let (new_payloads, new_metrics) = serve_all(
        ServeConfig::default()
            .with_shards(2)
            .with_batch_window(std::time::Duration::from_micros(100))
            .with_max_batch(1)
            .with_device_queue(1),
    );
    assert_eq!(old_payloads, new_payloads, "payloads must be bit-identical");
    assert_eq!(old_metrics.completed, new_metrics.completed);
    assert_eq!(old_metrics.lookups, new_metrics.lookups);
    let old_reads: u64 = old_metrics.per_shard.iter().map(|s| s.device_reads).sum();
    let new_reads: u64 = new_metrics.per_shard.iter().map(|s| s.device_reads).sum();
    assert_eq!(old_reads, new_reads, "max_batch 1 must not change the read pattern");
    // At depth 1 each read is charged exactly the QD1 service time; the
    // extra end-to-end latency over the uncharged engine is bounded by a
    // generous multiple of the total charged device time (scheduling noise
    // dominates below that).
    let model = bandana::nvm::QueueModel::default();
    let expected_busy = new_reads as f64 * model.mean_latency(1);
    assert!(
        (new_metrics.batching.depth.busy_s - expected_busy).abs() < 1e-9,
        "charged {} vs expected {expected_busy}",
        new_metrics.batching.depth.busy_s
    );
    let per_request_device = new_metrics.breakdown.device.mean_s;
    assert!(
        new_metrics.latency.mean_s < old_metrics.latency.mean_s + 20.0 * per_request_device + 2e-3,
        "batched-but-degenerate engine drifted: {} vs {} (+device {})",
        new_metrics.latency.mean_s,
        old_metrics.latency.mean_s,
        per_request_device
    );
}

#[test]
fn cross_shard_batching_keeps_results_in_request_order() {
    let (store, mut generator) = build_store(41, 256);
    let reference = {
        let (store, _) = build_store(41, 256);
        let engine =
            ShardedEngine::new(store, ServeConfig::default().with_shards(2)).expect("engine");
        let trace = generator.generate_requests(60);
        let payloads: Vec<_> =
            trace.requests.iter().map(|r| engine.serve(r).expect("serve")).collect();
        (trace, payloads)
    };
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(2)
            .with_batch_window(std::time::Duration::from_millis(2))
            .with_max_batch(8)
            .with_device_queue(4),
    )
    .expect("engine");
    // Serve concurrently so batches actually form across requests.
    let payloads: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = reference
            .0
            .requests
            .chunks(15)
            .map(|chunk| {
                let engine = &engine;
                scope.spawn(move || {
                    chunk.iter().map(|r| engine.serve(r).expect("serve")).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("caller")).collect()
    });
    assert_eq!(reference.1, payloads, "merged batches must scatter payloads in request order");
    let m = engine.metrics();
    assert_eq!(m.completed, 60);
    assert!(m.batching.depth.peak_depth <= 4);
}

#[test]
fn shard_dispatch_preserves_per_request_lookup_counts() {
    let (store, mut generator) = build_store(21, 256);
    let engine = ShardedEngine::new(store, ServeConfig::default().with_shards(2)).expect("engine");
    let trace = generator.generate_requests(150);
    for request in &trace.requests {
        let results = engine.serve(request).expect("serve");
        // Result shape mirrors the request exactly: one payload per
        // original id position, duplicates included.
        assert_eq!(results.len(), request.queries.len());
        for (q, query) in request.queries.iter().enumerate() {
            assert_eq!(results[q].len(), query.ids.len());
        }
    }
    let m = engine.metrics();
    assert_eq!(m.completed, 150);
    assert_eq!(m.lookups as usize, trace.total_lookups());
    // Every lookup was served by exactly one shard.
    let per_shard: u64 = m.per_shard.iter().map(|s| s.lookups).sum();
    assert_eq!(per_shard, m.lookups);
}

#[test]
fn load_shedding_never_deadlocks_at_saturating_rate() {
    let (store, mut generator) = build_store(22, 128);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(2)
            .with_queue_capacity(2)
            .with_shed_policy(ShedPolicy::DropNewest),
    )
    .expect("engine");
    let trace = generator.generate_requests(1_000);
    // An offered rate no two shards can serve: ~10M qps.
    let process = ArrivalProcess::Uniform { rate_rps: 10_000_000.0 };
    let report = run_open_loop(&engine, &trace, &process, 5);
    assert_eq!(report.submitted, 1_000);
    assert_eq!(
        report.completed + report.shed + report.timed_out + report.failed,
        1_000,
        "every request must land in exactly one outcome bucket"
    );
    assert!(report.shed > 0, "tiny queues at 10M qps must shed");
    assert!(report.completed > 0, "accepted requests must still be served");
    // The engine is idle and still serves new work afterwards.
    let m = engine.metrics();
    assert_eq!(m.outstanding, 0);
    engine.serve(&trace.requests[0]).expect("engine alive after saturation");
}

#[test]
fn background_tuner_hot_swaps_policies_into_shards() {
    let (store, mut generator) = build_store(24, 256);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(2)
            .with_tuner(OnlineTunerSettings { epoch_lookups: 500, ..Default::default() }),
    )
    .expect("engine");
    let trace = generator.generate_requests(400);
    for request in &trace.requests {
        engine.submit(request).expect("submit");
    }
    engine.drain();
    // The tuner absorbs sampled traffic asynchronously; poll with a
    // deadline rather than sleeping a fixed amount.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while engine.metrics().tuner_swaps == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(
        engine.metrics().tuner_swaps > 0,
        "several tuning epochs' worth of lookups must produce at least one swap"
    );
    // The engine still serves correctly after hot swaps.
    engine.serve(&trace.requests[0]).expect("serve after policy swap");
}

#[test]
fn blocking_policy_backpressures_instead_of_shedding() {
    let (store, mut generator) = build_store(23, 128);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(2)
            .with_queue_capacity(2)
            .with_shed_policy(ShedPolicy::Block),
    )
    .expect("engine");
    let trace = generator.generate_requests(300);
    let process = ArrivalProcess::Uniform { rate_rps: 10_000_000.0 };
    let report = run_open_loop(&engine, &trace, &process, 6);
    // Block never sheds: the generator is throttled to engine speed.
    assert_eq!(report.shed, 0);
    assert_eq!(report.completed, 300);
}
