//! Integration tests for the sharded serving engine: histogram merge
//! properties, dispatch accounting, and overload behaviour.

use bandana::prelude::*;
use bandana::serve::{
    run_open_loop, LatencyHistogram, OnlineTunerSettings, ServeConfig, ShardedEngine, ShedPolicy,
};
use bandana::trace::ArrivalProcess;
use proptest::prelude::*;

fn build_store(seed: u64, cache: usize) -> (BandanaStore, TraceGenerator) {
    let spec = ModelSpec::test_small();
    let mut generator = TraceGenerator::new(&spec, seed);
    let training = generator.generate_requests(250);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let store = BandanaStore::build(
        &spec,
        &embeddings,
        &training,
        BandanaConfig::default().with_cache_vectors(cache),
    )
    .expect("build store");
    (store, generator)
}

proptest! {
    /// Histogram merge is associative and order-independent: for any split
    /// of a sample stream across "shards", merging in any grouping yields
    /// identical counts and quantiles.
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(1e-7f64..1.0, 1..200),
        b in proptest::collection::vec(1e-7f64..1.0, 1..200),
        c in proptest::collection::vec(1e-7f64..1.0, 1..200),
    ) {
        let hist_of = |samples: &[f64]| {
            let mut h = LatencyHistogram::new();
            for &s in samples {
                h.record_secs(s);
            }
            h
        };
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);

        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.count() as usize, a.len() + b.len() + c.len());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            prop_assert_eq!(left.quantile(q), right.quantile(q), "quantile {} diverged", q);
        }
    }

    /// Merged quantiles are lossless within the bucket resolution: the
    /// merged p50 stays within ~2 bucket widths (≈7%) of the exact sample
    /// median, exactly as if one recorder had seen every sample.
    #[test]
    fn histogram_merge_is_lossless_in_bounds(
        a in proptest::collection::vec(1e-6f64..1.0, 10..300),
        b in proptest::collection::vec(1e-6f64..1.0, 10..300),
    ) {
        let mut merged = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        for &s in &a { ha.record_secs(s); whole.record_secs(s); }
        for &s in &b { hb.record_secs(s); whole.record_secs(s); }
        merged.merge(&ha);
        merged.merge(&hb);
        // Merging loses nothing relative to a single recorder...
        prop_assert_eq!(merged.quantile(0.5), whole.quantile(0.5));
        // ...and the single recorder is within bucket resolution of exact.
        let mut all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        all.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        let exact = all[(all.len() - 1) / 2];
        let got = merged.quantile(0.5);
        prop_assert!(
            (got - exact).abs() / exact < 0.08,
            "merged p50 {} vs exact median {}", got, exact
        );
    }
}

#[test]
fn shard_dispatch_preserves_per_request_lookup_counts() {
    let (store, mut generator) = build_store(21, 256);
    let engine = ShardedEngine::new(store, ServeConfig::default().with_shards(2)).expect("engine");
    let trace = generator.generate_requests(150);
    for request in &trace.requests {
        let results = engine.serve(request).expect("serve");
        // Result shape mirrors the request exactly: one payload per
        // original id position, duplicates included.
        assert_eq!(results.len(), request.queries.len());
        for (q, query) in request.queries.iter().enumerate() {
            assert_eq!(results[q].len(), query.ids.len());
        }
    }
    let m = engine.metrics();
    assert_eq!(m.completed, 150);
    assert_eq!(m.lookups as usize, trace.total_lookups());
    // Every lookup was served by exactly one shard.
    let per_shard: u64 = m.per_shard.iter().map(|s| s.lookups).sum();
    assert_eq!(per_shard, m.lookups);
}

#[test]
fn load_shedding_never_deadlocks_at_saturating_rate() {
    let (store, mut generator) = build_store(22, 128);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(2)
            .with_queue_capacity(2)
            .with_shed_policy(ShedPolicy::DropNewest),
    )
    .expect("engine");
    let trace = generator.generate_requests(1_000);
    // An offered rate no two shards can serve: ~10M qps.
    let process = ArrivalProcess::Uniform { rate_rps: 10_000_000.0 };
    let report = run_open_loop(&engine, &trace, &process, 5);
    assert_eq!(report.submitted, 1_000);
    assert_eq!(
        report.completed + report.shed + report.timed_out + report.failed,
        1_000,
        "every request must land in exactly one outcome bucket"
    );
    assert!(report.shed > 0, "tiny queues at 10M qps must shed");
    assert!(report.completed > 0, "accepted requests must still be served");
    // The engine is idle and still serves new work afterwards.
    let m = engine.metrics();
    assert_eq!(m.outstanding, 0);
    engine.serve(&trace.requests[0]).expect("engine alive after saturation");
}

#[test]
fn background_tuner_hot_swaps_policies_into_shards() {
    let (store, mut generator) = build_store(24, 256);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(2)
            .with_tuner(OnlineTunerSettings { epoch_lookups: 500, ..Default::default() }),
    )
    .expect("engine");
    let trace = generator.generate_requests(400);
    for request in &trace.requests {
        engine.submit(request).expect("submit");
    }
    engine.drain();
    // The tuner absorbs sampled traffic asynchronously; poll with a
    // deadline rather than sleeping a fixed amount.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while engine.metrics().tuner_swaps == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(
        engine.metrics().tuner_swaps > 0,
        "several tuning epochs' worth of lookups must produce at least one swap"
    );
    // The engine still serves correctly after hot swaps.
    engine.serve(&trace.requests[0]).expect("serve after policy swap");
}

#[test]
fn blocking_policy_backpressures_instead_of_shedding() {
    let (store, mut generator) = build_store(23, 128);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(2)
            .with_queue_capacity(2)
            .with_shed_policy(ShedPolicy::Block),
    )
    .expect("engine");
    let trace = generator.generate_requests(300);
    let process = ArrivalProcess::Uniform { rate_rps: 10_000_000.0 };
    let report = run_open_loop(&engine, &trace, &process, 6);
    // Block never sheds: the generator is throttled to engine speed.
    assert_eq!(report.shed, 0);
    assert_eq!(report.completed, 300);
}
