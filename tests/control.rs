//! Integration tests for the unified control plane: the metrics bus,
//! SLO-budget shedding, shed-reason accounting, and custom controllers
//! driving the engine's knobs.

use bandana::prelude::*;
use bandana::serve::{
    Action, ControlConfig, Controller, EngineSnapshot, ServeConfig, ServeError, ShardedEngine,
    SloControllerConfig,
};
use std::time::{Duration, Instant};

fn build_store(seed: u64) -> (BandanaStore, TraceGenerator) {
    let spec = ModelSpec::test_small();
    let mut generator = TraceGenerator::new(&spec, seed);
    let training = generator.generate_requests(250);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let store = BandanaStore::build(
        &spec,
        &embeddings,
        &training,
        BandanaConfig::default().with_cache_vectors(256),
    )
    .expect("build store");
    (store, generator)
}

/// Polls `predicate` until it holds or the deadline passes.
fn wait_for(what: &str, mut predicate: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !predicate() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A fast bus for tests: short ticks and a short recent window.
fn fast_control() -> ControlConfig {
    ControlConfig {
        tick: Duration::from_millis(2),
        window_slot: Duration::from_millis(25),
        window_slots: 4,
    }
}

#[test]
fn metrics_bus_ticks_and_snapshots_the_engine() {
    let (store, mut generator) = build_store(61);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(2)
            .with_batch_window(Duration::from_micros(200))
            .with_max_batch(4)
            .with_control(fast_control())
            .with_tenant(TenantId(1), TenantSpec::new(3)),
    )
    .expect("engine");
    let trace = generator.generate_requests(50);
    for r in &trace.requests {
        engine.submit(r).expect("submit");
    }
    engine.drain();
    // The bus runs even with no controller registered.
    wait_for("bus ticks", || engine.metrics().control_ticks > 0);
    let snapshot = engine.snapshot();
    assert_eq!(snapshot.shards.len(), 2);
    assert_eq!(snapshot.tenants.len(), 2, "default tenant plus one registered");
    for shard in &snapshot.shards {
        assert_eq!(shard.lane_depths.len(), 2, "one lane per tenant");
    }
    assert_eq!(snapshot.queued(), 0, "drained engine has empty lanes");
    assert_eq!(snapshot.batch_window, Duration::from_micros(200));
    assert!(snapshot.uptime > Duration::ZERO);
    // No controllers: the bus observed but never acted.
    assert_eq!(engine.metrics().control_actions, 0);
}

#[test]
fn recent_window_reports_and_then_decays_tenant_latency() {
    let (store, mut generator) = build_store(62);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default().with_shards(1).with_control(fast_control()),
    )
    .expect("engine");
    let trace = generator.generate_requests(30);
    for r in &trace.requests {
        engine.serve(r).expect("serve");
    }
    let m = engine.metrics();
    let tenant = &m.per_tenant[0];
    assert_eq!(tenant.latency.count, 30);
    assert!(tenant.recent.count > 0, "fresh completions are inside the window");
    assert!(tenant.recent.p99_s > 0.0);
    // Idle long enough for every slot to rotate out: the recent window
    // drains while the cumulative histogram keeps its history.
    wait_for("window decay", || engine.metrics().per_tenant[0].recent.count == 0);
    let m = engine.metrics();
    assert_eq!(m.per_tenant[0].latency.count, 30, "cumulative history is untouched");
}

#[test]
fn slo_controller_sheds_a_blown_tenant_then_releases_it() {
    let (store, mut generator) = build_store(63);
    const TENANT: TenantId = TenantId(7);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(1)
            .with_control(fast_control())
            // A 1 ns budget: any completed request blows it, so the trip
            // is deterministic.
            .with_tenant(TENANT, TenantSpec::new(1).with_slo_p99(Duration::from_nanos(1)))
            .with_slo_controller(SloControllerConfig {
                min_samples: 1,
                base_hold: Duration::from_millis(30),
                backoff: 1,
                max_hold: Duration::from_millis(30),
                ..Default::default()
            }),
    )
    .expect("engine");
    let client = engine.client(TENANT).expect("registered tenant");
    let trace = generator.generate_requests(20);
    // Only the first call is guaranteed to precede the trip: once its
    // completion reaches the bus (2 ms ticks), any later submission may
    // already be shed — how many squeeze through first is host-speed
    // dependent, so the test asserts nothing about them.
    client.call(&trace.requests[0]).expect("pre-trip request serves normally");
    for r in trace.requests.iter().skip(1).take(4) {
        match client.call(r) {
            Ok(_) | Err(ServeError::SloShed) => {}
            Err(e) => panic!("unexpected pre-trip error: {e:?}"),
        }
    }
    // The controller observes the blown recent-window p99 and trips.
    wait_for("SLO trip", || engine.metrics().per_tenant.iter().any(|t| t.slo_shedding));

    // The trip left a matching entry in the control-plane audit log:
    // the SLO controller, naming the offending tenant, shed = true.
    let audit = engine.metrics().audit;
    assert!(
        audit.iter().any(|e| e.controller == "SloController"
            && e.tenant == Some(TENANT)
            && e.action.contains("shed: true")),
        "no audit entry for the SLO trip: {audit:?}"
    );

    // While tripped, submissions are refused up front with the dedicated
    // error and counted in the SLO shed bucket.
    let shed_error = client.submit(&trace.requests[5]).expect_err("tripped tenant is shed");
    assert!(matches!(shed_error, ServeError::SloShed), "{shed_error:?}");
    let m = engine.metrics();
    let t = m.per_tenant.iter().find(|t| t.id == TENANT).expect("tenant metrics");
    assert!(t.slo_shedding);
    assert_eq!(t.slo_p99, Some(Duration::from_nanos(1)));
    assert!(t.shed_reasons.slo > 0, "{:?}", t.shed_reasons);
    assert_eq!(t.shed_reasons.lane_full, 0);
    assert_eq!(t.shed_reasons.total(), t.shed, "breakdown must cover the aggregate");
    // The default tenant is unaffected by its neighbour's breaker.
    engine.serve(&trace.requests[6]).expect("default tenant still serves");

    // With the tenant shed, its window drains; once the hold expires the
    // breaker releases and submissions flow again.
    wait_for("SLO release", || {
        engine.metrics().per_tenant.iter().all(|t| !t.slo_shedding)
            || client.submit(&trace.requests[7]).is_ok()
    });
    // Engine-wide accounting still adds up: every submission landed in
    // exactly one outcome bucket.
    let m = engine.metrics();
    assert_eq!(m.completed + m.shed + m.timed_out + m.failed, m.submitted);
    assert!(m.control_actions > 0, "the trip and release were bus actions");
}

/// A one-shot custom controller: on its first observation it widens the
/// batch window and pinches the default tenant's lanes to one slot.
struct OneShotKnobs {
    fired: bool,
}

impl Controller for OneShotKnobs {
    fn name(&self) -> &str {
        "one-shot-knobs"
    }

    fn observe(&mut self, _snapshot: &EngineSnapshot) -> Vec<Action> {
        if self.fired {
            return Vec::new();
        }
        self.fired = true;
        vec![
            Action::SetBatchWindow { window: Duration::from_millis(100) },
            Action::SetLaneCap { tenant: TenantId::DEFAULT, cap: 1 },
        ]
    }
}

#[test]
fn custom_controllers_drive_batch_window_and_lane_caps() {
    let (store, mut generator) = build_store(64);
    let engine = ShardedEngine::new_with_controllers(
        store,
        ServeConfig::default()
            .with_shards(1)
            .with_max_batch(8)
            .with_shed_policy(ShedPolicy::DropNewest)
            .with_control(fast_control()),
        vec![Box::new(OneShotKnobs { fired: false })],
    )
    .expect("engine");
    // The engine started with no batch window; the controller's retune is
    // visible in the snapshot once applied.
    wait_for("batch window retune", || {
        engine.snapshot().batch_window == Duration::from_millis(100)
    });
    assert!(engine.metrics().control_actions >= 2);

    let trace = generator.generate_requests(40);
    // The pinched one-slot lane sheds under a tight submission loop long
    // before 30 requests (the stock 1024-slot lane would absorb them
    // all) — proof SetLaneCap reached the queues.
    let mut sheds = 0u64;
    for r in trace.requests.iter().take(30) {
        match engine.submit(r) {
            Ok(()) => {}
            Err(ServeError::Rejected) => sheds += 1,
            Err(other) => panic!("unexpected submit error {other:?}"),
        }
    }
    engine.drain();
    let m = engine.metrics();
    assert!(sheds > 0, "a one-slot lane must shed a 30-request burst");
    assert_eq!(m.per_tenant[0].shed_reasons.lane_full, sheds);

    // The widened window now merges paced requests into one micro-batch
    // — proof SetBatchWindow reached the shard worker. Pacing (rather
    // than a tight loop) lets the one-slot lane drain between
    // submissions on a single-core host: the first request opens the
    // 100 ms window and the follow-ups land inside it.
    let batches_before = m.batching.batches;
    for r in trace.requests.iter().skip(30) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match engine.submit(r) {
                Ok(()) => break,
                Err(ServeError::Rejected) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(other) => panic!("paced submit failed: {other:?}"),
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    engine.drain();
    let m = engine.metrics();
    let new_batches = m.batching.batches - batches_before;
    assert!(new_batches > 0);
    assert!(
        m.batching.largest_batch > 1,
        "the retuned window must merge paced requests: {:?}",
        m.batching
    );
}
