//! Cross-crate integration tests: the full Bandana data path from trace
//! generation through placement, tuning, and byte-serving.

use bandana::prelude::*;

/// Builds the standard small fixture: spec, generator, traces, embeddings.
fn fixture(seed: u64) -> (ModelSpec, TraceGenerator, Trace, Trace, Vec<EmbeddingTable>) {
    let spec = ModelSpec::paper_scaled(20_000);
    let mut generator = TraceGenerator::new(&spec, seed);
    let train = generator.generate_requests(400);
    let eval = generator.generate_requests(200);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                seed.wrapping_add(t as u64),
            )
        })
        .collect();
    (spec, generator, train, eval, embeddings)
}

#[test]
fn full_stack_serves_correct_bytes_under_all_partitioners() {
    let (spec, _generator, train, eval, embeddings) = fixture(1);
    for partitioner in [
        PartitionerKind::Identity,
        PartitionerKind::Random,
        PartitionerKind::Shp { iterations: 6 },
        PartitionerKind::KMeans { k: 8, iterations: 5 },
        PartitionerKind::TwoStageKMeans { first_stage_k: 4, total_subclusters: 16, iterations: 5 },
    ] {
        let config = BandanaConfig::default()
            .with_cache_vectors(800)
            .with_partitioner(partitioner)
            .with_seed(3);
        let mut store = BandanaStore::build(&spec, &embeddings, &train, config).unwrap();
        // Every lookup must return the exact embedding bytes regardless of
        // physical placement and caching.
        for request in eval.requests.iter().take(50) {
            for q in &request.queries {
                for &v in &q.ids {
                    let got = store.lookup(q.table, v).unwrap();
                    assert_eq!(
                        got.as_ref(),
                        embeddings[q.table].vector_as_bytes(v).as_slice(),
                        "corrupted vector {v} of table {} under {partitioner:?}",
                        q.table
                    );
                }
            }
        }
    }
}

#[test]
fn shp_store_issues_fewer_block_reads_than_identity_baseline() {
    let (spec, _generator, train, eval, embeddings) = fixture(2);
    let serve = |partitioner: PartitionerKind, admission: Option<AdmissionPolicy>| {
        let mut config = BandanaConfig::default()
            .with_cache_vectors(1_000)
            .with_partitioner(partitioner)
            .with_seed(4);
        if let Some(a) = admission {
            config = config.with_admission(a);
        }
        let mut store = BandanaStore::build(&spec, &embeddings, &train, config).unwrap();
        store.serve_trace(&eval).unwrap();
        store.total_metrics().block_reads
    };
    let bandana = serve(PartitionerKind::Shp { iterations: 8 }, None);
    let baseline = serve(PartitionerKind::Identity, Some(AdmissionPolicy::None));
    assert!(
        bandana < baseline,
        "Bandana ({bandana} reads) should beat the baseline ({baseline} reads)"
    );
}

#[test]
fn store_metrics_reconcile_with_device_counters() {
    let (spec, _generator, train, eval, embeddings) = fixture(3);
    let config = BandanaConfig::default().with_cache_vectors(500).with_seed(5);
    let mut store = BandanaStore::build(&spec, &embeddings, &train, config).unwrap();
    store.serve_trace(&eval).unwrap();
    let m = store.total_metrics();
    assert_eq!(m.lookups as usize, eval.total_lookups());
    assert_eq!(m.hits + m.misses, m.lookups);
    assert_eq!(store.device_counters().reads, m.block_reads);
    assert_eq!(store.device_counters().bytes_read, m.block_reads * 4096);
    // Per-table metrics sum to the total.
    let sum: u64 = store.table_metrics().iter().map(|t| t.lookups).sum();
    assert_eq!(sum, m.lookups);
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let (spec, _generator, train, eval, embeddings) = fixture(7);
        let config = BandanaConfig::default().with_cache_vectors(600).with_seed(7);
        let mut store = BandanaStore::build(&spec, &embeddings, &train, config).unwrap();
        store.serve_trace(&eval).unwrap();
        store.total_metrics()
    };
    assert_eq!(run(), run());
}

#[test]
fn retraining_stays_within_endurance_budget() {
    let (spec, _generator, train, _eval, embeddings) = fixture(8);
    let config = BandanaConfig::default().with_cache_vectors(400).with_seed(8);
    let mut store = BandanaStore::build(&spec, &embeddings, &train, config).unwrap();
    // The paper: tables are retrained 10-20x per day against a 30 DWPD
    // budget. Simulate 20 full retrains of every table in one day.
    // (The build itself already wrote each table once.)
    for _ in 0..20 {
        for (t, emb) in embeddings.iter().enumerate() {
            store.retrain(t, emb).unwrap();
        }
    }
    assert!(
        store.endurance().within_budget(1.0),
        "20 retrains/day must fit the 30 DWPD budget: {:.1} drive writes",
        store.endurance().drive_writes()
    );
    // 40 more pushes past the limit.
    for _ in 0..40 {
        for (t, emb) in embeddings.iter().enumerate() {
            store.retrain(t, emb).unwrap();
        }
    }
    assert!(!store.endurance().within_budget(1.0));
}

#[test]
fn stale_cache_entries_survive_retraining_until_evicted() {
    let (spec, mut generator, train, _eval, embeddings) = fixture(9);
    let config = BandanaConfig::default().with_cache_vectors(400).with_seed(9);
    let mut store = BandanaStore::build(&spec, &embeddings, &train, config).unwrap();
    // Warm one vector into DRAM.
    let warm = store.lookup(0, 3).unwrap();
    // Retrain table 0 with fresh values.
    let fresh = EmbeddingTable::synthesize(
        spec.tables[0].num_vectors,
        spec.dim,
        generator.topic_model(0),
        999,
    );
    store.retrain(0, &fresh).unwrap();
    // Cached lookup still serves the pre-retrain bytes (production
    // semantics, paper §2.1: inference uses vectors without adjustment
    // until the cache turns over).
    let still_cached = store.lookup(0, 3).unwrap();
    assert_eq!(warm, still_cached);
    // An uncached vector reflects the new training.
    let uncached = store.lookup(0, spec.tables[0].num_vectors - 1).unwrap();
    assert_eq!(uncached.as_ref(), fresh.vector_as_bytes(spec.tables[0].num_vectors - 1).as_slice());
    let _ = generator.generate_request();
}

#[test]
fn batched_serving_reduces_device_reads() {
    // Same store, same requests: the batched path must serve identical
    // bytes while issuing no more device reads than one-at-a-time serving
    // (strictly fewer whenever SHP clusters a query's vectors).
    use bandana::prelude::*;
    let spec = ModelSpec::test_small();
    let mut generator = TraceGenerator::new(&spec, 77);
    let training = generator.generate_requests(300);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let serving = generator.generate_requests(200);
    let build = || {
        BandanaStore::build(
            &spec,
            &embeddings,
            &training,
            BandanaConfig::default().with_cache_vectors(512),
        )
        .expect("build")
    };

    let mut sequential = build();
    for r in &serving.requests {
        sequential.serve_request(r).expect("serve");
    }
    let seq_reads = sequential.device_counters().reads;

    let mut batched = build();
    for r in &serving.requests {
        batched.serve_request_batched(r).expect("serve");
    }
    let batch_reads = batched.device_counters().reads;

    assert!(
        batch_reads < seq_reads,
        "batching should coalesce block reads: {batch_reads} vs {seq_reads}"
    );
    // Both served every lookup.
    assert_eq!(batched.total_metrics().lookups, sequential.total_metrics().lookups);

    // Spot-check payload correctness through the batched path.
    let mut store = build();
    for q in &serving.requests[0].queries {
        let got = store.lookup_batch(q.table, &q.ids).expect("batch");
        for (b, &v) in got.iter().zip(&q.ids) {
            assert_eq!(b.as_ref(), embeddings[q.table].vector_as_bytes(v).as_slice());
        }
    }
}
