//! Shard-local dense rebase: behavioural equivalence with the
//! parent-addressed carve.
//!
//! The serving engine used to hand each shard a [`SparseDevice`] carve at
//! parent block addresses; it now rebases the carve onto a dense
//! zero-based [`RebasedDevice`] and moves the shard's tables' base blocks
//! with it. This property test drives the same lookup stream through both
//! shapes and demands byte-identical payloads, identical block-read
//! counts, and identical cache metrics — the rebase must be invisible to
//! everything except capacity/endurance accounting.

use bandana::cache::AdmissionPolicy;
use bandana::core::{BatchScratch, TableStore};
use bandana::nvm::{BlockBufPool, BlockDevice, NvmConfig, NvmDevice, SparseDevice};
use bandana::partition::{AccessFrequency, BlockLayout};
use bandana::trace::{spec::TableSpec, EmbeddingTable, TopicModel};
use proptest::prelude::*;

/// Vectors per table in the fixture.
const VECTORS: u32 = 96;
/// Vectors per block (32 B vectors in 4 KB blocks would give 128; a
/// smaller fan-out spreads each table over several blocks).
const PER_BLOCK: usize = 16;
/// Blocks per table.
const BLOCKS: u64 = (VECTORS as u64).div_ceil(PER_BLOCK as u64);

/// Builds one table twice — identical state — plus the shared parent
/// device holding three tables' regions; the shard under test owns
/// tables 0 and 2, leaving a hole where table 1 lives so the rebase
/// actually moves table 2.
fn fixture(seed: u64) -> (Vec<TableStore>, Vec<TableStore>, NvmDevice, Vec<EmbeddingTable>) {
    let spec = TableSpec::test_small(VECTORS);
    let mut parent = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(3 * BLOCKS));
    let mut carve_tables = Vec::new();
    let mut dense_tables = Vec::new();
    let mut embeddings = Vec::new();
    for (i, &table_id) in [0usize, 2].iter().enumerate() {
        let topics = TopicModel::new(&spec, seed ^ table_id as u64);
        let emb = EmbeddingTable::synthesize(VECTORS, 8, &topics, seed.wrapping_add(i as u64));
        let base_block = table_id as u64 * BLOCKS;
        let build = || {
            TableStore::new(
                table_id,
                BlockLayout::identity(VECTORS, PER_BLOCK),
                AccessFrequency::zeros(VECTORS),
                AdmissionPolicy::All { position: 0.3 },
                24,
                1.5,
                base_block,
                32,
            )
        };
        let mut table = build();
        table.write_embeddings(&mut parent, &emb).unwrap();
        carve_tables.push(table);
        dense_tables.push(build());
        embeddings.push(emb);
    }
    parent.reset_counters();
    (carve_tables, dense_tables, parent, embeddings)
}

proptest! {
    /// Rebased dense shards return byte-identical payloads and identical
    /// block-read counts to the parent-addressed carve, over arbitrary
    /// batched lookup streams.
    #[test]
    fn rebased_shard_serves_identically_to_parent_addressed_carve(
        seed in 0u64..32,
        ops in proptest::collection::vec(
            (0usize..2, proptest::collection::vec(0u32..VECTORS, 1..10)),
            1..30,
        ),
    ) {
        let (mut carve_tables, mut dense_tables, parent, embeddings) = fixture(seed);
        let ranges: Vec<(u64, u64)> =
            carve_tables.iter().map(|t| (t.base_block(), t.num_blocks())).collect();
        let mut carve = SparseDevice::carve(&parent, &ranges).unwrap();
        let mut dense = SparseDevice::carve(&parent, &ranges).unwrap().rebase();
        for t in &mut dense_tables {
            let new_base = dense.remap(t.base_block()).expect("table blocks were carved");
            t.rebase(new_base);
        }
        // The shard's dense capacity is exactly its tables' blocks.
        prop_assert_eq!(dense.capacity_blocks(), 2 * BLOCKS);

        let mut scratch = BatchScratch::new();
        let mut carve_pool = BlockBufPool::default();
        let mut dense_pool = BlockBufPool::default();
        for (ti, ids) in &ops {
            carve_tables[*ti]
                .lookup_batch_with(&mut carve, ids, &mut scratch, &mut carve_pool)
                .unwrap();
            let carve_out: Vec<Vec<u8>> =
                scratch.out().iter().map(|b| b.as_ref().to_vec()).collect();
            dense_tables[*ti]
                .lookup_batch_with(&mut dense, ids, &mut scratch, &mut dense_pool)
                .unwrap();
            prop_assert_eq!(carve_out.len(), scratch.out().len());
            for (i, (c, d)) in carve_out.iter().zip(scratch.out()).enumerate() {
                prop_assert_eq!(c.as_slice(), d.as_ref(), "payload {} diverged", i);
                // And both match the ground-truth embedding bytes.
                prop_assert_eq!(
                    c.as_slice(),
                    embeddings[*ti].vector_as_bytes(ids[i]).as_slice(),
                    "payload {} corrupt", i
                );
            }
        }

        // Identical device traffic and cache behaviour, not just results.
        prop_assert_eq!(carve.counters().reads, dense.counters().reads);
        prop_assert_eq!(carve.counters().bytes_read, dense.counters().bytes_read);
        for (c, d) in carve_tables.iter().zip(&dense_tables) {
            prop_assert_eq!(c.metrics(), d.metrics());
        }
    }
}
