//! Integration tests: the store's data path over file-backed storage and
//! under injected device faults.

use bandana::nvm::FaultPlan;
use bandana::partition::{AccessFrequency, BlockLayout};
use bandana::prelude::*;
use bandana::trace::spec::TableSpec;
use bandana::trace::TopicModel;
use std::path::PathBuf;

const VECTOR_BYTES: usize = 128;
const VECTORS_PER_BLOCK: usize = 4096 / VECTOR_BYTES;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bandana-resilience-{}-{name}", std::process::id()))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn table_fixture(
    num_vectors: u32,
    cache: usize,
    policy: AdmissionPolicy,
) -> (TableStore, EmbeddingTable) {
    let spec = TableSpec::test_small(num_vectors);
    let topics = TopicModel::new(&spec, 1);
    let embeddings = EmbeddingTable::synthesize(num_vectors, 32, &topics, 2);
    let layout = BlockLayout::identity(num_vectors, VECTORS_PER_BLOCK);
    let table = TableStore::new(
        0,
        layout,
        AccessFrequency::zeros(num_vectors),
        policy,
        cache,
        1.5,
        0,
        VECTOR_BYTES,
    );
    (table, embeddings)
}

#[test]
fn file_backed_table_round_trips_every_vector() {
    let path = temp_path("roundtrip");
    let _cleanup = Cleanup(path.clone());
    let (mut table, embeddings) = table_fixture(1024, 64, AdmissionPolicy::None);
    let mut device = FileNvmDevice::create(&path, 4096, table.num_blocks()).expect("create device");
    table.write_embeddings(&mut device, &embeddings).expect("write");

    for v in 0..1024u32 {
        let got = table.lookup(&mut device, v).expect("lookup");
        assert_eq!(
            got.as_ref(),
            embeddings.vector_as_bytes(v).as_slice(),
            "vector {v} corrupted on the file device"
        );
    }
    // Every block was read at least once (cache of 64 can't hold 1024).
    assert!(device.counters().reads >= table.num_blocks());
}

#[test]
fn file_backed_store_survives_reopen() {
    let path = temp_path("reopen");
    let _cleanup = Cleanup(path.clone());
    let (mut table, embeddings) = table_fixture(512, 32, AdmissionPolicy::None);
    {
        let mut device =
            FileNvmDevice::create(&path, 4096, table.num_blocks()).expect("create device");
        table.write_embeddings(&mut device, &embeddings).expect("write");
        device.sync().expect("sync");
    }
    // A new process (simulated by a new handle + fresh cacheless table)
    // reads the same bytes back.
    let (mut fresh, _) = table_fixture(512, 32, AdmissionPolicy::None);
    let mut device = FileNvmDevice::open(&path, 4096).expect("open device");
    for v in [0u32, 100, 511] {
        let got = fresh.lookup(&mut device, v).expect("lookup");
        assert_eq!(got.as_ref(), embeddings.vector_as_bytes(v).as_slice());
    }
}

#[test]
fn read_faults_surface_as_errors_not_garbage() {
    let (mut table, embeddings) = table_fixture(1024, 64, AdmissionPolicy::None);
    let inner = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(table.num_blocks()));
    let mut device = FaultInjector::new(inner, FaultPlan::new(5).with_read_error_rate(0.2));
    table.write_embeddings(&mut device, &embeddings).expect("write");

    let mut errors = 0u64;
    let mut successes = 0u64;
    for i in 0..2_000u32 {
        match table.lookup(&mut device, (i * 37) % 1024) {
            Ok(bytes) => {
                // Anything that *does* come back must be the right bytes.
                assert_eq!(bytes.as_ref(), embeddings.vector_as_bytes((i * 37) % 1024).as_slice());
                successes += 1;
            }
            Err(BandanaError::Nvm(_)) => errors += 1,
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
    assert!(errors > 0, "20% fault rate must surface");
    assert!(successes > errors, "most lookups should still succeed");
}

#[test]
fn cached_vectors_survive_total_device_failure() {
    let (mut table, embeddings) = table_fixture(256, 256, AdmissionPolicy::All { position: 0.0 });
    let inner = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(table.num_blocks()));
    let mut device = FaultInjector::new(inner, FaultPlan::new(1));
    table.write_embeddings(&mut device, &embeddings).expect("write");

    // Warm the whole table (prefetch-all, big cache: everything sticks).
    for v in 0..256u32 {
        table.lookup(&mut device, v).expect("warm");
    }

    // Kill the device entirely.
    let mut dead =
        FaultInjector::new(device.into_inner(), FaultPlan::new(2).with_read_error_rate(1.0));
    for v in 0..256u32 {
        let got = table.lookup(&mut dead, v).expect("hit must not touch device");
        assert_eq!(got.as_ref(), embeddings.vector_as_bytes(v).as_slice());
    }
    assert_eq!(dead.faults_injected(), 0, "no lookup should have reached the dead device");
}

#[test]
fn worn_out_device_rejects_retraining_but_keeps_serving() {
    let (mut table, embeddings) = table_fixture(512, 64, AdmissionPolicy::None);
    let blocks = table.num_blocks();
    let inner = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(blocks));
    // Budget: exactly one full table write.
    let plan = FaultPlan::new(3).with_wear_out_after_bytes(blocks * 4096);
    let mut device = FaultInjector::new(inner, plan);
    table.write_embeddings(&mut device, &embeddings).expect("first write fits");

    let retrained = {
        let spec = TableSpec::test_small(512);
        let topics = TopicModel::new(&spec, 9);
        EmbeddingTable::synthesize(512, 32, &topics, 10)
    };
    let err = table.write_embeddings(&mut device, &retrained).unwrap_err();
    assert!(err.to_string().contains("worn out"), "got: {err}");

    // Reads are unaffected by write exhaustion.
    let got = table.lookup(&mut device, 17).expect("read");
    assert_eq!(got.as_ref(), embeddings.vector_as_bytes(17).as_slice());
}

#[test]
fn bad_block_maps_to_partial_unavailability() {
    let (mut table, embeddings) = table_fixture(1024, 4, AdmissionPolicy::None);
    let inner = NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(table.num_blocks()));
    let mut device = FaultInjector::new(inner, FaultPlan::new(4));
    table.write_embeddings(&mut device, &embeddings).expect("write");

    // Poison block 3 (vectors 96..128 in the identity layout).
    let mut device = FaultInjector::new(device.into_inner(), FaultPlan::new(4).with_bad_block(3));
    assert!(table.lookup(&mut device, 100).is_err(), "vector on the bad block must fail");
    assert!(table.lookup(&mut device, 10).is_ok(), "other blocks must be unaffected");
}
