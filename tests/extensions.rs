//! Integration tests for the extension features: trace serialization and
//! online threshold re-tuning.

use bandana::core::online::{OnlineTuner, OnlineTunerConfig};
use bandana::partition::{social_hash_partition, AccessFrequency, ShpConfig};
use bandana::prelude::*;
use bandana::trace::{read_trace, write_trace};

#[test]
fn serialized_trace_drives_identical_placement() {
    let spec = ModelSpec::paper_scaled(20_000);
    let mut generator = TraceGenerator::new(&spec, 99);
    let train = generator.generate_requests(200);

    let mut buf = Vec::new();
    write_trace(&mut buf, &train).unwrap();
    let reloaded = read_trace(&mut buf.as_slice()).unwrap();

    // SHP consumes queries as id sets; the round trip must produce the
    // exact same placement.
    let cfg = ShpConfig { block_capacity: 32, iterations: 6, seed: 5, parallel_depth: 0 };
    let n = spec.tables[0].num_vectors;
    let a = social_hash_partition(n, train.table_queries(0), &cfg);
    let b = social_hash_partition(n, reloaded.table_queries(0), &cfg);
    assert_eq!(a, b);

    // Frequencies are id-multiset-level identical too.
    let fa = AccessFrequency::from_queries(n, train.table_queries(0));
    let fb = AccessFrequency::from_queries(n, reloaded.table_queries(0));
    assert_eq!(fa, fb);
}

#[test]
fn online_tuner_decisions_apply_to_store_tables() {
    // Wire an OnlineTuner's decision into a real table's policy, as a
    // deployment would.
    let spec = ModelSpec::paper_scaled(20_000);
    let mut generator = TraceGenerator::new(&spec, 7);
    let train = generator.generate_requests(300);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let config = BandanaConfig::default().with_cache_vectors(600).with_seed(2);
    let mut store = BandanaStore::build(&spec, &embeddings, &train, config).unwrap();

    let table = 1usize;
    let layout = store.table(table).unwrap().layout().clone();
    let freq =
        AccessFrequency::from_queries(spec.tables[table].num_vectors, train.table_queries(table));
    let tuner_config = OnlineTunerConfig {
        cache_capacity: 150,
        sampling_rate: 0.5,
        candidate_thresholds: vec![1, 2, 4],
        epoch_lookups: 5_000,
        salt: 3,
    };
    let mut tuner = OnlineTuner::new(&layout, &freq, tuner_config);

    let live = generator.generate_requests(150);
    let mut applied = 0;
    for r in &live.requests {
        store.serve_request(r).unwrap();
        if let Some(q) = r.query_for(table) {
            for &v in &q.ids {
                if tuner.observe(v).is_some() {
                    // An epoch completed: adopt the new policy. (BandanaStore
                    // exposes per-table policy replacement for exactly this.)
                    applied += 1;
                }
            }
        }
    }
    assert!(applied >= 1, "at least one tuning epoch should complete");
    let policy = tuner.current_policy().expect("policy exists after an epoch");
    assert!(matches!(policy, AdmissionPolicy::Threshold { t: 1..=4 }));
}

#[test]
fn serialization_is_stable_across_identical_runs() {
    let spec = ModelSpec::test_small();
    let t1 = TraceGenerator::new(&spec, 42).generate_requests(40);
    let t2 = TraceGenerator::new(&spec, 42).generate_requests(40);
    let mut b1 = Vec::new();
    let mut b2 = Vec::new();
    write_trace(&mut b1, &t1).unwrap();
    write_trace(&mut b2, &t2).unwrap();
    assert_eq!(b1, b2, "same seed must produce byte-identical serializations");
}
