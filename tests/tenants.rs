//! Integration tests for the ticket-based, tenant-aware serving API:
//! ticket semantics (out-of-order collection, timeout, double-take,
//! drop), DRR fairness across weighted tenants, admission quotas, and
//! the legacy single-tenant back-compat contract.

use bandana::prelude::*;
use bandana::serve::{
    queue::{LaneSpec, Pop, WeightedQueue},
    ServeConfig, ServeError, ShardedEngine,
};
use proptest::prelude::*;
use std::time::Duration;

fn build_store(seed: u64, cache: usize) -> (BandanaStore, TraceGenerator) {
    let spec = ModelSpec::test_small();
    let mut generator = TraceGenerator::new(&spec, seed);
    let training = generator.generate_requests(250);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let store = BandanaStore::build(
        &spec,
        &embeddings,
        &training,
        BandanaConfig::default().with_cache_vectors(cache),
    )
    .expect("build store");
    (store, generator)
}

/// The acceptance contract of the ticket API: one thread pipelines
/// hundreds of requests before collecting anything, and every response
/// arrives exactly once with the right payloads, collected out of order.
#[test]
fn single_thread_pipelines_256_requests_and_collects_out_of_order() {
    let (store, mut generator) = build_store(50, 256);
    let mut reference = {
        let (s, _) = build_store(50, 256);
        s
    };
    let engine = ShardedEngine::new(store, ServeConfig::default().with_shards(2)).expect("engine");
    let client = engine.client(TenantId::DEFAULT).expect("default tenant");
    let trace = generator.generate_requests(256);

    // Submit all 256 before touching a single ticket.
    let mut tickets: Vec<_> =
        trace.requests.iter().map(|r| client.submit(r).expect("submit")).collect();

    // Collect in reverse submission order; completion order is whatever
    // the shards produced.
    for (i, ticket) in tickets.iter_mut().enumerate().rev() {
        let response = ticket.wait().expect("first take");
        assert!(response.status.is_ok(), "request {i}: {:?}", response.status);
        let request = &trace.requests[i];
        assert_eq!(response.parts.len(), request.queries.len());
        for (q, query) in request.queries.iter().enumerate() {
            assert_eq!(response.parts[q].len(), query.ids.len());
            for (k, &v) in query.ids.iter().enumerate() {
                let expected = reference.lookup(query.table, v).expect("reference lookup");
                assert_eq!(
                    response.parts[q][k].as_ref(),
                    expected.as_ref(),
                    "request {i} table {} id {v}",
                    query.table
                );
            }
        }
        assert!(response.e2e >= response.queue_wait, "breakdown inside e2e");
    }

    let m = engine.metrics();
    assert_eq!(m.submitted, 256);
    assert_eq!(m.completed, 256, "every request completes exactly once");
    assert_eq!(m.outstanding, 0);
    assert_eq!(m.lookups as usize, trace.total_lookups());
}

#[test]
fn wait_timeout_expires_then_the_ticket_still_delivers() {
    let (store, mut generator) = build_store(51, 256);
    // A 150 ms batch window on a single shard holds the first request's
    // micro-batch open, so its ticket cannot complete immediately.
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(1)
            .with_batch_window(Duration::from_millis(150))
            .with_max_batch(64),
    )
    .expect("engine");
    let client = engine.client(TenantId::DEFAULT).expect("default tenant");
    let trace = generator.generate_requests(1);
    let mut ticket = client.submit(&trace.requests[0]).expect("submit");
    // The window is 30× the poll timeout: the first poll expires.
    match ticket.wait_timeout(Duration::from_millis(5)) {
        Ok(None) => {}
        other => panic!("expected expiry while the batch window is open, got {other:?}"),
    }
    // The ticket stays live: a full wait still delivers the response.
    let response = ticket.wait().expect("take after expiry");
    assert!(response.status.is_ok());
    assert_eq!(engine.metrics().completed, 1);
}

#[test]
fn double_take_is_an_error_and_dropped_tickets_do_not_leak() {
    let (store, mut generator) = build_store(52, 256);
    let engine = ShardedEngine::new(store, ServeConfig::default().with_shards(2)).expect("engine");
    let client = engine.client(TenantId::DEFAULT).expect("default tenant");
    let trace = generator.generate_requests(12);

    // Double take: every take path reports TicketTaken after the first.
    let mut ticket = client.submit(&trace.requests[0]).expect("submit");
    let response = ticket.wait().expect("first take");
    assert!(response.status.is_ok());
    assert!(matches!(ticket.try_take(), Err(ServeError::TicketTaken)));
    assert!(matches!(ticket.wait(), Err(ServeError::TicketTaken)));
    assert!(matches!(ticket.wait_timeout(Duration::from_millis(1)), Err(ServeError::TicketTaken)));

    // Dropped tickets: submit the rest and drop every ticket untaken.
    for request in &trace.requests[1..] {
        drop(client.submit(request).expect("submit"));
    }
    engine.drain();
    let m = engine.metrics();
    assert_eq!(m.completed, 12, "dropped tickets still complete normally");
    assert_eq!(m.outstanding, 0, "no completion state leaks");
    // The engine is fully alive afterwards.
    let response = client.call(&trace.requests[0]).expect("serve after drops");
    assert!(response.status.is_ok());
}

#[test]
fn per_request_deadline_overrides_the_global_timeout() {
    let (store, mut generator) = build_store(53, 256);
    // Generous global timeout; the per-request deadline of zero loses the
    // race every time.
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default().with_shards(1).with_request_timeout(Duration::from_secs(30)),
    )
    .expect("engine");
    let client = engine.client(TenantId::DEFAULT).expect("default tenant");
    let trace = generator.generate_requests(20);
    let mut timed_out = 0u64;
    for request in &trace.requests {
        let response = client
            .submit_with_deadline(request, Some(Duration::ZERO))
            .expect("submit")
            .wait()
            .expect("take");
        if response.status == ResponseStatus::TimedOut {
            timed_out += 1;
        }
    }
    assert!(timed_out > 0, "a zero per-request deadline must time out");
    let m = engine.metrics();
    assert_eq!(m.timed_out, timed_out);
    assert_eq!(m.completed + m.timed_out, 20);
}

#[test]
fn admission_quota_sheds_before_the_shard_queues() {
    let (store, mut generator) = build_store(54, 256);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(2)
            .with_tenant(TenantId(7), TenantSpec::new(1).with_quota(0)),
    )
    .expect("engine");
    let capped = engine.client(TenantId(7)).expect("capped tenant");
    let trace = generator.generate_requests(10);
    for request in &trace.requests {
        assert!(matches!(capped.submit(request), Err(ServeError::QuotaExceeded)));
    }
    let m = engine.metrics();
    let t = m.per_tenant.iter().find(|t| t.id == TenantId(7)).expect("tenant registered");
    assert_eq!(t.submitted, 10);
    assert_eq!(t.shed, 10);
    assert_eq!(t.completed, 0);
    assert_eq!(m.shed, 10);
    assert_eq!(m.submitted, 10);
    // Unknown tenants are rejected up front.
    assert!(matches!(engine.client(TenantId(99)), Err(ServeError::UnknownTenant(TenantId(99)))));
}

/// Regression: the in-flight quota slot is released *before* the
/// ticket's waiter wakes, so a quota-1 tenant running a sequential
/// closed loop never sees a phantom `QuotaExceeded`.
#[test]
fn sequential_quota_one_caller_is_never_spuriously_shed() {
    let (store, mut generator) = build_store(58, 256);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(2)
            .with_tenant(TenantId(9), TenantSpec::new(1).with_quota(1)),
    )
    .expect("engine");
    let client = engine.client(TenantId(9)).expect("quota tenant");
    let trace = generator.generate_requests(200);
    for (i, request) in trace.requests.iter().enumerate() {
        let response = client
            .call(request)
            .unwrap_or_else(|e| panic!("sequential call {i} shed by its own quota: {e}"));
        assert!(response.status.is_ok());
    }
    let m = engine.metrics();
    let t = m.per_tenant.iter().find(|t| t.id == TenantId(9)).expect("tenant");
    assert_eq!(t.completed, 200);
    assert_eq!(t.shed, 0);
}

/// Satellite back-compat pin: for a single-tenant config the legacy
/// `serve()` path and the ticket path produce identical payloads, read
/// counts, and metrics.
#[test]
fn legacy_serve_matches_ticket_path_for_single_tenant_configs() {
    let trace = {
        let (_, mut generator) = build_store(55, 256);
        generator.generate_requests(80)
    };
    let run = |use_tickets: bool| {
        let (store, _) = build_store(55, 256);
        let engine =
            ShardedEngine::new(store, ServeConfig::default().with_shards(2)).expect("engine");
        let results: Vec<_> = if use_tickets {
            let client = engine.client(TenantId::DEFAULT).expect("default tenant");
            trace
                .requests
                .iter()
                .map(|r| client.call(r).expect("call").into_parts().expect("ok response"))
                .collect()
        } else {
            trace.requests.iter().map(|r| engine.serve(r).expect("serve")).collect()
        };
        (results, engine.shutdown())
    };
    let (legacy_payloads, legacy_metrics) = run(false);
    let (ticket_payloads, ticket_metrics) = run(true);
    assert_eq!(legacy_payloads, ticket_payloads, "payloads must be byte-identical");
    assert_eq!(legacy_metrics.completed, ticket_metrics.completed);
    assert_eq!(legacy_metrics.lookups, ticket_metrics.lookups);
    assert_eq!(legacy_metrics.shed, ticket_metrics.shed);
    assert_eq!(legacy_metrics.failed, ticket_metrics.failed);
    let legacy_reads: u64 = legacy_metrics.per_shard.iter().map(|s| s.device_reads).sum();
    let ticket_reads: u64 = ticket_metrics.per_shard.iter().map(|s| s.device_reads).sum();
    assert_eq!(legacy_reads, ticket_reads, "read pattern must not change");
    // The legacy path is charged to the default tenant: its per-tenant
    // slice mirrors the engine-wide counters exactly.
    for m in [&legacy_metrics, &ticket_metrics] {
        assert_eq!(m.per_tenant.len(), 1);
        let t = &m.per_tenant[0];
        assert_eq!(t.id, TenantId::DEFAULT);
        assert_eq!(t.submitted, m.submitted);
        assert_eq!(t.completed, m.completed);
        assert_eq!(t.latency.count, m.latency.count);
    }
}

proptest! {
    /// DRR fairness at the scheduling layer: with two tenants at 9:1
    /// weights both permanently backlogged, popped shares track the
    /// weights within ±10% for any batch size, and the starved-tenant
    /// invariant holds — every nonempty tenant lane is visited each
    /// scheduling round (never more than 9 heavy pops between
    /// consecutive light pops).
    #[test]
    fn drr_fairness_under_overload(batch in 1usize..24, backlog in 16usize..128) {
        let q: WeightedQueue<usize> = WeightedQueue::new(
            &[LaneSpec { weight: 9, class: 0 }, LaneSpec { weight: 1, class: 0 }],
            4096,
        );
        let mut flat: Vec<usize> = Vec::new();
        while flat.len() < 800 {
            for lane in 0..2 {
                while q.lane_len(lane) < backlog {
                    q.push(lane, lane, ShedPolicy::DropNewest);
                }
            }
            match q.pop_batch(Duration::ZERO, Duration::ZERO, batch) {
                Pop::Item(items) => flat.extend(items),
                other => prop_assert!(false, "backlogged queue must pop, got {other:?}"),
            }
        }
        let heavy = flat.iter().filter(|&&l| l == 0).count() as f64;
        let share = heavy / flat.len() as f64;
        prop_assert!(
            (share - 0.9).abs() <= 0.1,
            "heavy completion share {share} outside ±10% of the 9:1 weights (batch {batch})"
        );
        // Starved-tenant invariant.
        let mut gap = 0usize;
        for &lane in &flat {
            if lane == 1 {
                gap = 0;
            } else {
                gap += 1;
                prop_assert!(gap <= 9, "light tenant skipped a scheduling round (gap {gap})");
            }
        }
    }

    /// Generalized weighted shares: random weights, shares within ±10%
    /// of the weight fractions.
    #[test]
    fn drr_shares_generalize_to_arbitrary_weights(wa in 1u64..12, wb in 1u64..12) {
        let q: WeightedQueue<usize> = WeightedQueue::new(
            &[LaneSpec { weight: wa, class: 0 }, LaneSpec { weight: wb, class: 0 }],
            4096,
        );
        let mut counts = [0u64; 2];
        let mut total = 0u64;
        while total < 600 {
            for lane in 0..2 {
                while q.lane_len(lane) < 64 {
                    q.push(lane, lane, ShedPolicy::DropNewest);
                }
            }
            match q.pop_batch(Duration::ZERO, Duration::ZERO, 8) {
                Pop::Item(items) => {
                    for lane in items {
                        counts[lane] += 1;
                        total += 1;
                    }
                }
                other => prop_assert!(false, "backlogged queue must pop, got {other:?}"),
            }
        }
        let expected = wa as f64 / (wa + wb) as f64;
        let share = counts[0] as f64 / total as f64;
        prop_assert!(
            (share - expected).abs() <= 0.1,
            "share {share} vs weight fraction {expected} (weights {wa}:{wb})"
        );
    }
}

/// End-to-end DRR fairness: two tenants at 9:1 weights flooding a
/// single-shard engine complete within ±10% of their weight shares.
///
/// The floods use [`ShedPolicy::Block`], so the submitter threads sleep
/// on the lane condvars instead of burning CPU — both lanes stay
/// backlogged by construction, which keeps the measurement meaningful
/// even on a single-core machine. Shares are measured as the completion
/// delta between two mid-run snapshots, when both lanes are guaranteed
/// saturated.
#[test]
fn weighted_tenants_divide_completions_under_engine_overload() {
    let (store, mut generator) = build_store(56, 256);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(1)
            .with_queue_capacity(16)
            .with_shed_policy(ShedPolicy::Block)
            .with_device_queue(2)
            .with_tenant(TenantId(1), TenantSpec::new(9))
            .with_tenant(TenantId(2), TenantSpec::new(1)),
    )
    .expect("engine");
    let trace = generator.generate_requests(64);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let completed_of = |m: &bandana::serve::EngineMetrics, id: TenantId| {
        m.per_tenant.iter().find(|t| t.id == id).expect("registered tenant").completed
    };
    let (heavy_delta, light_delta) = std::thread::scope(|scope| {
        for id in [TenantId(1), TenantId(2)] {
            let client = engine.client(id).expect("registered tenant");
            let stop = &stop;
            let requests = &trace.requests;
            scope.spawn(move || {
                let mut i = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    // Tickets dropped on purpose: fire-and-forget flood;
                    // a full lane blocks the submitter until space frees.
                    let _ = client.submit(&requests[i % requests.len()]);
                    i += 1;
                }
            });
        }
        // Let the floods saturate their lanes, then measure a window.
        let warm = loop {
            let m = engine.metrics();
            if m.completed >= 200 {
                break m;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        let end = loop {
            let m = engine.metrics();
            if m.completed >= warm.completed + 800 {
                break m;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        (
            completed_of(&end, TenantId(1)) - completed_of(&warm, TenantId(1)),
            completed_of(&end, TenantId(2)) - completed_of(&warm, TenantId(2)),
        )
    });
    engine.drain();
    let total = heavy_delta + light_delta;
    assert!(total >= 800, "measurement window too short: {total} completions");
    let share = heavy_delta as f64 / total as f64;
    assert!(
        (share - 0.9).abs() <= 0.1,
        "heavy tenant completed {share:.3} of the overload window, expected 0.9 ± 0.1 \
         (heavy {heavy_delta}, light {light_delta})"
    );
    // Every submitted request landed in exactly one bucket, per tenant.
    let m = engine.metrics();
    for id in [TenantId(1), TenantId(2)] {
        let t = m.per_tenant.iter().find(|t| t.id == id).expect("tenant");
        assert_eq!(t.submitted, t.completed + t.shed + t.timed_out + t.failed, "{t:?}");
    }
}

/// Strict priority end-to-end: a High-class tenant's requests never shed
/// while a Low-class tenant floods the same single shard. The flood uses
/// [`ShedPolicy::Block`] so the flooding thread parks instead of burning
/// CPU (single-core friendly); the High tenant's lane is never full, so
/// its closed-loop calls are admitted and scheduled first.
#[test]
fn high_priority_tenant_is_served_ahead_of_a_flooding_low_tenant() {
    let (store, mut generator) = build_store(57, 128);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(1)
            .with_queue_capacity(4)
            .with_shed_policy(ShedPolicy::Block)
            .with_tenant(TenantId(1), TenantSpec::new(1).with_class(PriorityClass::High))
            .with_tenant(TenantId(2), TenantSpec::new(1).with_class(PriorityClass::Low)),
    )
    .expect("engine");
    let trace = generator.generate_requests(32);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let high_served = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        let low = engine.client(TenantId(2)).expect("low tenant");
        let stop_ref = &stop;
        let requests = &trace.requests;
        scope.spawn(move || {
            let mut i = 0usize;
            while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = low.submit(&requests[i % requests.len()]);
                i += 1;
            }
        });
        // The interactive tenant calls closed-loop through the flood; its
        // lane is drained first at every scheduling decision, so calls
        // succeed promptly.
        let high = engine.client(TenantId(1)).expect("high tenant");
        for request in &trace.requests {
            let response = high.call(request).expect("high-priority call");
            assert!(response.status.is_ok());
            high_served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    engine.drain();
    let m = engine.metrics();
    let high = m.per_tenant.iter().find(|t| t.id == TenantId(1)).expect("high tenant");
    assert_eq!(high.completed, 32);
    assert_eq!(high.shed, 0, "the high-class closed-loop caller must never shed");
}
