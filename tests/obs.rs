//! Integration tests for the observability subsystem against a live
//! engine: exported Chrome traces validated with the bench crate's own
//! JSON reader, flight-recorder lifecycle invariants, the Prometheus
//! exposition, and the control-plane audit log.

use bandana::prelude::*;
use bandana::serve::{render_prometheus, ServeConfig, ShardedEngine, TraceConfig, TraceEventKind};
use bandana_bench::parse_document;
use proptest::proptest;
use std::time::Duration;

fn build_store(seed: u64) -> (BandanaStore, TraceGenerator) {
    let spec = ModelSpec::test_small();
    let mut generator = TraceGenerator::new(&spec, seed);
    let training = generator.generate_requests(250);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    let store = BandanaStore::build(
        &spec,
        &embeddings,
        &training,
        BandanaConfig::default().with_cache_vectors(256),
    )
    .expect("build store");
    (store, generator)
}

/// Serves `requests` through a trace-enabled engine and returns it
/// (undrained metrics settled by `serve`'s synchronous completion).
fn traced_engine(seed: u64, sample_every: u64, requests: usize) -> ShardedEngine {
    let (store, mut generator) = build_store(seed);
    let engine = ShardedEngine::new(
        store,
        ServeConfig::default()
            .with_shards(2)
            .with_batch_window(Duration::from_micros(100))
            .with_max_batch(4)
            .with_device_queue(2)
            .with_trace(TraceConfig::sampled(sample_every)),
    )
    .expect("engine");
    let trace = generator.generate_requests(requests);
    for r in &trace.requests {
        engine.serve(r).expect("serve");
    }
    engine
}

/// The exported Chrome trace is real JSON: the bench crate's own mini
/// JSON reader — the same one `repro check-bench` trusts — parses it
/// without error, both as raw syntax and re-wrapped as a bench document
/// whose numeric row fields (ts/dur/pid/tid) are then checked.
#[test]
fn chrome_trace_export_parses_with_the_bench_json_reader() {
    let engine = traced_engine(71, 2, 60);
    let dump = engine.dump_trace();
    assert!(dump.starts_with("{\"traceEvents\":["), "unexpected prefix: {dump:.40}");

    // Raw syntax: the document must parse cleanly end to end.
    parse_document(&dump).expect("the Chrome trace export is valid JSON");

    // Re-wrap the event array as a bench document to get per-event
    // numeric fields out of the same parser.
    let body = dump
        .trim_end()
        .strip_prefix("{\"traceEvents\":")
        .and_then(|s| s.strip_suffix('}'))
        .expect("trace export shape");
    let doc = parse_document(&format!("{{\"experiment\":\"trace\",\"rows\":{body}}}"))
        .expect("re-wrapped trace events parse");
    assert_eq!(doc.experiment, "trace");
    assert!(!doc.rows.is_empty(), "sampling 1-in-2 over 60 requests must record events");
    for row in &doc.rows {
        let field = |k: &str| row.get(k).copied().unwrap_or(f64::NAN);
        assert!(field("ts") >= 0.0, "{row:?}");
        assert!(field("dur") >= 0.0, "{row:?}");
        // pid carries the shard id; this engine has two shards.
        assert!((0.0..2.0).contains(&field("pid")), "{row:?}");
        assert!(field("tid") >= 0.0, "{row:?}");
    }

    // The structured view agrees with the export: same event count.
    let events: usize = engine.request_traces().iter().map(|t| t.events.len()).sum();
    assert_eq!(doc.rows.len(), events);
}

/// Sampling every request, every trace follows the lifecycle contract:
/// it opens with `Admitted` and carries exactly one terminal event.
#[test]
fn every_sampled_request_opens_admitted_and_terminates_once() {
    let engine = traced_engine(72, 1, 50);
    let traces = engine.request_traces();
    assert_eq!(traces.len(), 50, "1-in-1 sampling traces every request");
    for t in &traces {
        assert_eq!(t.events.first().map(|e| e.kind), Some(TraceEventKind::Admitted), "{t:?}");
        assert_eq!(t.terminal_count(), 1, "{t:?}");
        assert_eq!(t.terminal(), Some(TraceEventKind::Completed), "{t:?}");
    }
}

/// The Prometheus exposition rendered from a live engine is well-formed
/// line-by-line and carries the engine's actual counters.
#[test]
fn prometheus_exposition_from_a_live_engine_is_well_formed() {
    let engine = traced_engine(73, 4, 40);
    let text = render_prometheus(&engine.metrics(), &engine.snapshot());
    assert!(text.contains("bandana_requests_completed_total 40"), "{text}");
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line.split_once(' ').expect("metric lines are `name value`");
        let series = name.split('{').next().expect("series name");
        assert!(series.starts_with("bandana_"), "unprefixed series: {line}");
        assert!(value.parse::<f64>().is_ok(), "non-numeric sample: {line}");
    }
}

proptest! {
    /// Exactly one terminal event per sampled request, under arbitrary
    /// pipeline shapes and sampling rates — the engine-level version of
    /// the recorder's unit invariant, exercised through real shard
    /// workers, batch draining, and device charging.
    #[test]
    fn sampled_requests_terminate_exactly_once_under_batching(
        seed in 300u64..320,
        sample_every in 1u64..5,
        shards in 1usize..3,
        max_batch in 1usize..6,
        window_us in 0u64..500,
        requests in 1usize..40,
    ) {
        let (store, mut generator) = build_store(seed);
        let engine = ShardedEngine::new(
            store,
            ServeConfig::default()
                .with_shards(shards)
                .with_batch_window(Duration::from_micros(window_us))
                .with_max_batch(max_batch)
                .with_trace(TraceConfig::sampled(sample_every)),
        )
        .expect("engine");
        let trace = generator.generate_requests(requests);
        for r in &trace.requests {
            engine.submit(r).expect("submit");
        }
        engine.drain();
        let traces = engine.request_traces();
        // Deterministic sampling: every sample_every-th admission.
        assert_eq!(traces.len(), requests.div_ceil(sample_every as usize));
        for t in &traces {
            assert_eq!(t.terminal_count(), 1, "{t:?}");
        }
        let m = engine.metrics();
        assert_eq!(m.completed, requests as u64);
    }
}
