//! Integration tests for crash-safe durability and warm restart: the
//! WAL + snapshot recovery path, the crash-point fault-injection
//! matrix, bit-flip corruption, and the net-layer contract that a
//! restarted server still serves a live-registered tenant.

use bandana::persist::{flip_bit, CrashPoint, FaultPlan};
use bandana::prelude::*;
use bandana::serve::{
    AdminServer, NetClient, NetServer, NetServerConfig, ServeConfig, ServeError, ShardedEngine,
    TenantId, TenantSpec,
};
use std::path::PathBuf;
use std::sync::Arc;

const SHARDS: usize = 2;
const CACHE_VECTORS: usize = 256;
/// The table retrained to generate real drive writes.
const RETRAIN_TABLE: usize = 0;

fn temp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bandana-recovery-{}-{name}", std::process::id()))
}

/// Removes the persist directory when the test ends, pass or fail.
struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A deterministic workload: same seed → byte-identical stores, so the
/// only difference between a fresh build and a recovered engine is what
/// recovery restored.
struct Fixture {
    spec: ModelSpec,
    embeddings: Vec<EmbeddingTable>,
    train: Trace,
    eval: Trace,
}

fn fixture(seed: u64) -> Fixture {
    let spec = ModelSpec::test_small();
    let mut generator = TraceGenerator::new(&spec, seed);
    let train = generator.generate_requests(200);
    let eval = generator.generate_requests(120);
    let embeddings: Vec<EmbeddingTable> = (0..spec.num_tables())
        .map(|t| {
            EmbeddingTable::synthesize(
                spec.tables[t].num_vectors,
                spec.dim,
                generator.topic_model(t),
                t as u64,
            )
        })
        .collect();
    Fixture { spec, embeddings, train, eval }
}

fn build_store(f: &Fixture) -> BandanaStore {
    BandanaStore::build(
        &f.spec,
        &f.embeddings,
        &f.train,
        BandanaConfig::default().with_cache_vectors(CACHE_VECTORS),
    )
    .expect("store builds")
}

fn persist_config(dir: &std::path::Path, faults: &Arc<FaultPlan>) -> PersistConfig {
    // fsync every append and no periodic snapshots: every durability
    // action in these tests is explicit, so the on-disk state at each
    // crash point is exactly known.
    PersistConfig::new(dir)
        .with_fsync_every(1)
        .with_snapshot_every_ticks(0)
        .with_faults(Arc::clone(faults))
}

fn serve_config(dir: &std::path::Path, faults: &Arc<FaultPlan>) -> ServeConfig {
    ServeConfig::default().with_shards(SHARDS).with_persist(persist_config(dir, faults))
}

fn serve_all(engine: &ShardedEngine, trace: &Trace) {
    for request in &trace.requests {
        engine.serve(request).expect("request serves");
    }
}

fn bytes_written(engine: &ShardedEngine) -> u64 {
    engine.metrics().per_shard.iter().map(|s| s.bytes_written).sum()
}

/// Warm restart end-to-end: the recovered engine rehydrates the shard
/// caches, restores the endurance counters, reports it all through
/// `RecoveryMetrics`, and keeps serving correct payloads.
#[test]
fn warm_restart_rehydrates_cache_counters_and_serves() {
    let dir = temp_dir("warm");
    let _cleanup = Cleanup(dir.clone());
    let _ = std::fs::remove_dir_all(&dir);
    let f = fixture(11);
    let faults = FaultPlan::none();

    // Prime: serve (warms the caches), retrain (generates drive
    // writes), snapshot, shut down.
    let engine = ShardedEngine::new(build_store(&f), serve_config(&dir, &faults))
        .expect("primed engine builds");
    serve_all(&engine, &f.eval);
    engine.retrain(RETRAIN_TABLE, &f.embeddings[RETRAIN_TABLE]).expect("retrain");
    let bytes_pre = bytes_written(&engine);
    assert!(bytes_pre > 0, "retrain must generate drive writes");
    engine.snapshot_now().expect("snapshot installs");
    drop(engine);

    // Recover on an identical fresh store.
    let recovered = ShardedEngine::recover(build_store(&f), serve_config(&dir, &faults))
        .expect("recovery succeeds");
    let m = recovered.metrics();
    assert!(m.recovery.replayed_records > 0, "the WAL catalog replays");
    assert!(m.recovery.rehydrated_keys > 0, "the snapshot rehydrates cache keys");
    assert!(m.recovery.snapshot_age_seconds >= 0.0, "a snapshot exists: {m:?}");
    assert_eq!(bytes_written(&recovered), bytes_pre, "drive-write accounting survives the restart");
    // The rehydrated cache is *correct*, not just populated: every
    // payload matches the embeddings the store was built from.
    for request in f.eval.requests.iter().take(30) {
        let responses = recovered.serve(request).expect("recovered engine serves");
        for (query, parts) in request.queries.iter().zip(&responses) {
            for (&id, part) in query.ids.iter().zip(parts) {
                assert_eq!(
                    part.as_ref(),
                    f.embeddings[query.table].vector_as_bytes(id).as_slice(),
                    "table {} vector {id} corrupted across restart",
                    query.table
                );
            }
        }
    }
    // A hot first window: the rehydrated cache absorbs misses a cold
    // engine would pay. Hit rate, not raw device reads — cold misses
    // concentrate on hot blocks and coalesce into fewer distinct block
    // reads, so read counts can cross even when the warm cache works.
    // (Recovery leaves the cache counters at zero, so these rates cover
    // exactly the 30 requests each engine served.)
    let hit_rate =
        |m: &bandana::serve::EngineMetrics| m.cache.hits as f64 / m.cache.lookups.max(1) as f64;
    let warm_rate = hit_rate(&recovered.metrics());
    let cold = ShardedEngine::new(build_store(&f), ServeConfig::default().with_shards(SHARDS))
        .expect("cold engine builds");
    for request in f.eval.requests.iter().take(30) {
        cold.serve(request).expect("cold engine serves");
    }
    let cold_rate = hit_rate(&cold.metrics());
    assert!(
        warm_rate > cold_rate,
        "rehydrated cache must absorb misses: warm hit rate {warm_rate:.4} vs cold {cold_rate:.4}"
    );
}

/// The crash matrix: every [`CrashPoint`] fires mid-operation, and
/// recovery from the resulting directory restores a consistent state —
/// catalog intact, acknowledged tenants present, unacknowledged ones
/// absent, endurance counters matching the last installed snapshot,
/// and the engine serving correct data.
#[test]
fn crash_matrix_recovers_to_consistent_state() {
    let f = fixture(13);
    for point in CrashPoint::ALL {
        let dir = temp_dir(&format!("crash-{point}"));
        let _cleanup = Cleanup(dir.clone());
        let _ = std::fs::remove_dir_all(&dir);
        let faults = FaultPlan::none();

        // A healthy prime first: warm, retrain, snapshot, and one
        // acknowledged live registration — state recovery must keep.
        let engine = ShardedEngine::new(build_store(&f), serve_config(&dir, &faults))
            .expect("primed engine builds");
        serve_all(&engine, &f.eval);
        engine.retrain(RETRAIN_TABLE, &f.embeddings[RETRAIN_TABLE]).expect("retrain");
        let bytes_pre = bytes_written(&engine);
        engine.snapshot_now().expect("baseline snapshot installs");
        engine.register_tenant(TenantId(7), TenantSpec::new(3)).expect("acknowledged registration");

        // Arm the crash point and drive the operation into it.
        faults.arm(point);
        match point {
            CrashPoint::WalMidAppend => {
                let err = engine
                    .register_tenant(TenantId(8), TenantSpec::new(2))
                    .expect_err("torn append must fail the registration");
                assert!(
                    matches!(err, ServeError::Persist(_)),
                    "registration fails as a persist error, got {err:?}"
                );
                // The failed registration was not applied in memory
                // either: fail-closed, no acknowledged-but-lost state.
                assert!(
                    !engine.tenants().iter().any(|(id, _)| *id == TenantId(8)),
                    "unjournaled tenant must not be registered"
                );
            }
            CrashPoint::SnapshotMidWrite | CrashPoint::SnapshotBeforeRename => {
                engine.snapshot_now().expect_err("injected snapshot crash must surface");
            }
        }
        drop(engine);

        // Recovery: the torn tail heals, orphaned temp files are
        // ignored, and the state is exactly the acknowledged one.
        let clean = FaultPlan::none();
        let recovered = ShardedEngine::recover(build_store(&f), serve_config(&dir, &clean))
            .unwrap_or_else(|e| panic!("recovery after {point} failed: {e}"));
        let m = recovered.metrics();
        assert!(m.recovery.replayed_records > 0, "{point}: catalog replays");
        assert!(m.recovery.rehydrated_keys > 0, "{point}: the baseline snapshot still rehydrates");
        assert_eq!(
            bytes_written(&recovered),
            bytes_pre,
            "{point}: endurance counters match the last installed snapshot"
        );
        let tenants = recovered.tenants();
        assert!(
            tenants.iter().any(|(id, spec)| *id == TenantId(7) && spec.weight == 3),
            "{point}: acknowledged tenant survives the crash"
        );
        assert!(
            !tenants.iter().any(|(id, _)| *id == TenantId(8)),
            "{point}: unacknowledged tenant must not reappear"
        );
        // The recovered engine still serves correct payloads.
        for request in f.eval.requests.iter().take(20) {
            let responses = recovered.serve(request).expect("recovered engine serves");
            for (query, parts) in request.queries.iter().zip(&responses) {
                for (&id, part) in query.ids.iter().zip(parts) {
                    assert_eq!(
                        part.as_ref(),
                        f.embeddings[query.table].vector_as_bytes(id).as_slice(),
                        "{point}: table {} vector {id} corrupted",
                        query.table
                    );
                }
            }
        }
    }
}

/// Silent bit-flip corruption: a flipped bit in the WAL tail drops only
/// the corrupt suffix (acknowledged prefix survives), and a flipped bit
/// in the newest snapshot falls back rather than rehydrating garbage.
#[test]
fn bit_flips_truncate_the_wal_tail_and_fail_snapshots_safely() {
    let f = fixture(17);

    // WAL tail corruption: two live registrations, then a flip inside
    // the last record. Replay must keep tenant 21 and drop tenant 22.
    {
        let dir = temp_dir("flip-wal");
        let _cleanup = Cleanup(dir.clone());
        let _ = std::fs::remove_dir_all(&dir);
        let faults = FaultPlan::none();
        let engine = ShardedEngine::new(build_store(&f), serve_config(&dir, &faults))
            .expect("engine builds");
        engine.register_tenant(TenantId(21), TenantSpec::new(4)).expect("first registration");
        engine.register_tenant(TenantId(22), TenantSpec::new(5)).expect("second registration");
        drop(engine);

        let wal = dir.join("wal.log");
        let len = std::fs::metadata(&wal).expect("wal exists").len();
        flip_bit(&wal, len - 3, 2).expect("flip a bit in the last record");

        let recovered = ShardedEngine::recover(build_store(&f), serve_config(&dir, &faults))
            .expect("recovery heals the corrupt tail");
        let tenants = recovered.tenants();
        assert!(tenants.iter().any(|(id, _)| *id == TenantId(21)), "the intact prefix survives");
        assert!(
            !tenants.iter().any(|(id, _)| *id == TenantId(22)),
            "the corrupt record is dropped, not misread"
        );
        serve_all(&recovered, &f.eval);
    }

    // Snapshot corruption: flip a bit mid-file in the only snapshot.
    // Recovery must refuse it (CRC) and come up cold-cached but
    // serving, instead of rehydrating garbage.
    {
        let dir = temp_dir("flip-snap");
        let _cleanup = Cleanup(dir.clone());
        let _ = std::fs::remove_dir_all(&dir);
        let faults = FaultPlan::none();
        let engine = ShardedEngine::new(build_store(&f), serve_config(&dir, &faults))
            .expect("engine builds");
        serve_all(&engine, &f.eval);
        engine.snapshot_now().expect("snapshot installs");
        drop(engine);

        let snap = dir.join("snapshot-1.bin");
        let len = std::fs::metadata(&snap).expect("snapshot exists").len();
        flip_bit(&snap, len / 2, 0).expect("flip a bit mid-snapshot");

        let recovered = ShardedEngine::recover(build_store(&f), serve_config(&dir, &faults))
            .expect("recovery survives a corrupt snapshot");
        let m = recovered.metrics();
        assert_eq!(m.recovery.rehydrated_keys, 0, "a corrupt snapshot must not rehydrate anything");
        assert!(m.recovery.replayed_records > 0, "the WAL still replays");
        serve_all(&recovered, &f.eval);
    }
}

/// The net-layer restart contract: a tenant registered live over
/// `POST /tenants` is journaled, survives the restart, and a client
/// HELLO naming it on the restarted server is accepted and served.
#[test]
fn restarted_server_still_serves_a_live_registered_tenant() {
    let dir = temp_dir("net");
    let _cleanup = Cleanup(dir.clone());
    let _ = std::fs::remove_dir_all(&dir);
    let f = fixture(19);
    let faults = FaultPlan::none();

    // First life: register tenant 42 over the admin plane and serve it
    // over the wire.
    let engine = Arc::new(
        ShardedEngine::new(build_store(&f), serve_config(&dir, &faults))
            .expect("first engine builds"),
    );
    let admin = AdminServer::start(Arc::clone(&engine), "127.0.0.1:0").expect("admin starts");
    let (status, body) = bandana::serve::net::http_request(
        admin.local_addr(),
        "POST",
        "/tenants",
        Some("id=42&weight=5"),
    )
    .expect("POST /tenants");
    assert_eq!(status, 201, "registration must be acknowledged: {body}");
    let server =
        NetServer::start(Arc::clone(&engine), NetServerConfig::default()).expect("server starts");
    let client =
        NetClient::connect(server.local_addr(), TenantId(42), 8).expect("tenant 42 connects");
    let mut ticket = client.submit(&f.eval.requests[0]).expect("submit");
    assert!(ticket.wait().expect("response arrives").is_ok());
    client.close().expect("client closes");
    server.shutdown();
    admin.shutdown();
    drop(engine);

    // Second life: recover and serve the same tenant over a fresh wire.
    // No ServeConfig tenant list, no re-registration — the WAL is the
    // only place tenant 42 exists.
    let engine = Arc::new(
        ShardedEngine::recover(build_store(&f), serve_config(&dir, &faults))
            .expect("recovery succeeds"),
    );
    assert!(
        engine.tenants().iter().any(|(id, spec)| *id == TenantId(42) && spec.weight == 5),
        "live-registered tenant must be replayed from the WAL"
    );
    let server =
        NetServer::start(Arc::clone(&engine), NetServerConfig::default()).expect("server restarts");
    let client = NetClient::connect(server.local_addr(), TenantId(42), 8)
        .expect("tenant 42 connects to the restarted server");
    let mut ticket = client.submit(&f.eval.requests[1]).expect("submit after restart");
    assert!(ticket.wait().expect("response arrives").is_ok());
    client.close().expect("client closes");
    // The contrast that makes the positive case meaningful: a tenant
    // nobody ever registered is still refused at HELLO.
    assert!(
        NetClient::connect(server.local_addr(), TenantId(99), 8).is_err(),
        "unknown tenants must still be refused after restart"
    );
    server.shutdown();
}

/// Re-replay is idempotent: recovering, shutting down, and recovering
/// again (the WAL re-journals the catalog on every boot) changes
/// nothing — same tenants, same counters, same payloads.
#[test]
fn double_recovery_is_idempotent() {
    let dir = temp_dir("idempotent");
    let _cleanup = Cleanup(dir.clone());
    let _ = std::fs::remove_dir_all(&dir);
    let f = fixture(23);
    let faults = FaultPlan::none();

    let engine =
        ShardedEngine::new(build_store(&f), serve_config(&dir, &faults)).expect("engine builds");
    engine.register_tenant(TenantId(5), TenantSpec::new(2)).expect("register");
    engine.retrain(RETRAIN_TABLE, &f.embeddings[RETRAIN_TABLE]).expect("retrain");
    let bytes_pre = bytes_written(&engine);
    engine.snapshot_now().expect("snapshot");
    drop(engine);

    let first = ShardedEngine::recover(build_store(&f), serve_config(&dir, &faults))
        .expect("first recovery");
    let first_tenants = first.tenants();
    let first_rehydrated = first.metrics().recovery.rehydrated_keys;
    assert_eq!(bytes_written(&first), bytes_pre);
    drop(first);

    let second = ShardedEngine::recover(build_store(&f), serve_config(&dir, &faults))
        .expect("second recovery");
    assert_eq!(second.tenants(), first_tenants, "tenant set is stable across re-replays");
    assert_eq!(
        second.metrics().recovery.rehydrated_keys,
        first_rehydrated,
        "rehydration is stable across re-replays"
    );
    assert_eq!(bytes_written(&second), bytes_pre, "endurance is stable across re-replays");
    serve_all(&second, &f.eval);
}
