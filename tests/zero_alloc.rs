//! Proof of the zero-allocation steady-state read path.
//!
//! This test binary installs a counting global allocator (its own local
//! copy — the library workspace forbids `unsafe`, but a test crate may
//! carry the one narrowly-scoped `unsafe impl`) and asserts that a warmed
//! [`TableStore::lookup_batch_with`] performs **zero** heap allocations:
//! the miss plan lives in the reusable [`BatchScratch`], block reads
//! recycle buffers from a [`BlockBufPool`], and payloads are zero-copy
//! slices of the pooled blocks.
//!
//! The counter is per-thread (const-initialized TLS, safe to touch inside
//! the allocator), so the test harness's other threads cannot pollute the
//! measurement.

use bandana::cache::AdmissionPolicy;
use bandana::core::{BatchScratch, TableStore};
use bandana::nvm::{BlockBufPool, BlockDevice, NvmConfig, NvmDevice};
use bandana::partition::{AccessFrequency, BlockLayout};
use bandana::trace::{spec::TableSpec, EmbeddingTable, TopicModel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

std::thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with`, not `with`: the allocator may run during TLS teardown.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn thread_allocations() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

/// A 256-vector table spread over 16 blocks (16 × 32 B vectors per
/// block), a 64-entry cache, and admit-all prefetching: every pass
/// misses, prefetches, and evicts — the busiest shape the read path has.
fn fixture() -> (TableStore, NvmDevice, EmbeddingTable) {
    let spec = TableSpec::test_small(256);
    let topics = TopicModel::new(&spec, 7);
    let emb = EmbeddingTable::synthesize(256, 8, &topics, 11); // 32 B vectors
    let layout = BlockLayout::identity(256, 16);
    let mut device =
        NvmDevice::new(NvmConfig::optane_375gb().with_capacity_blocks(layout.num_blocks() as u64));
    let mut table = TableStore::new(
        0,
        layout,
        AccessFrequency::zeros(256),
        AdmissionPolicy::All { position: 0.5 },
        64,
        1.5,
        0,
        32,
    );
    table.write_embeddings(&mut device, &emb).unwrap();
    device.reset_counters();
    (table, device, emb)
}

#[test]
fn steady_state_lookup_batch_performs_zero_heap_allocations() {
    let (mut table, mut device, emb) = fixture();
    let mut scratch = BatchScratch::new();
    let mut pool = BlockBufPool::for_cache(table.cache_capacity());

    // One batch per block, with duplicates and a cross-block straggler, so
    // every pass exercises hits, coalesced misses, duplicate demands, and
    // the prefetch sweep. Built before measurement; the ids are reused.
    let batches: Vec<Vec<u32>> = (0..16u32)
        .map(|b| vec![b * 16, b * 16 + 3, b * 16 + 9, b * 16 + 3, (b * 16 + 21) % 256])
        .collect();

    let replay = |table: &mut TableStore,
                  device: &mut NvmDevice,
                  scratch: &mut BatchScratch,
                  pool: &mut BlockBufPool| {
        for ids in &batches {
            table.lookup_batch_with(device, ids, scratch, pool).unwrap();
        }
    };

    // Warm until the scratch, pool, and cache index reach their
    // steady-state shapes.
    for _ in 0..3 {
        replay(&mut table, &mut device, &mut scratch, &mut pool);
    }

    let misses_before = table.metrics().misses;
    let reads_before = device.counters().reads;
    let before = thread_allocations();
    replay(&mut table, &mut device, &mut scratch, &mut pool);
    let after = thread_allocations();

    assert_eq!(
        after - before,
        0,
        "steady-state lookup_batch allocated {} times (pool {:?})",
        after - before,
        pool.stats()
    );
    // The measured pass did real work: device reads happened (this is the
    // miss path, not an all-hit cop-out) and the pool recycled for them.
    assert!(device.counters().reads > reads_before, "measured pass never touched the device");
    assert!(table.metrics().misses > misses_before, "measured pass never missed");
    let stats = pool.stats();
    assert!(stats.reuses > 0, "pool never recycled: {stats:?}");

    // And the payloads are still byte-exact.
    table.lookup_batch_with(&mut device, &[5, 77, 210], &mut scratch, &mut pool).unwrap();
    for (i, &v) in [5u32, 77, 210].iter().enumerate() {
        assert_eq!(scratch.out()[i].as_ref(), emb.vector_as_bytes(v).as_slice(), "vector {v}");
    }
}

#[test]
fn warmup_is_what_buys_the_zero() {
    // Sanity check on the methodology: the *first* pass, with cold
    // scratch and pool, must allocate — otherwise the steady-state
    // assertion above would be vacuous.
    let (mut table, mut device, _) = fixture();
    let mut scratch = BatchScratch::new();
    let mut pool = BlockBufPool::for_cache(table.cache_capacity());
    let before = thread_allocations();
    table.lookup_batch_with(&mut device, &[0, 3, 250], &mut scratch, &mut pool).unwrap();
    assert!(thread_allocations() > before, "a cold first batch must allocate");
}
